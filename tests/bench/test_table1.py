"""Table I reproduction: structure of the 1-byte send decomposition."""

import pytest

from repro.bench import table1


@pytest.fixture(scope="module")
def results():
    # HPI keeps the data transfer nearly free, isolating session costs
    # exactly the way the table's accounting does.
    return table1.run(iterations=60, interface="hpi")


class TestDecomposition:
    def test_every_stage_measured(self, results):
        for label, _start, _end in table1._STAGES:
            assert results[label] >= 0.0

    def test_totals_consistent(self, results):
        assert results["total"] == pytest.approx(
            results["session overhead total"] + results["data transfer total"]
        )

    def test_session_overhead_dominates_one_byte_sends(self, results):
        """The table's point: for 1-byte messages the threading machinery
        is a significant share of the cost (28% in the paper; higher here
        because our HPI data transfer is nearly free)."""
        assert results["session fraction"] > 0.2

    def test_context_switches_are_measurable(self, results):
        switches = (
            results["context switch to protocol thread"]
            + results["context switch to Send Thread"]
        )
        assert switches > 0.5  # microseconds

    def test_formatting_includes_paper_reference(self, results):
        rendered = table1.format_results(results)
        assert "Paper's Table I" in rendered
        assert "session overhead total" in rendered


class TestAmortization:
    def test_session_overhead_amortizes_with_size(self):
        """The corollary the paper draws (and Figure 11 plots): the same
        session overhead is negligible for large messages."""
        import statistics
        import time

        from repro.core import ConnectionConfig, Node, NodeConfig

        node_a = Node(NodeConfig(name="amort-a"))
        node_b = Node(NodeConfig(name="amort-b"))
        try:
            conn = node_a.connect(
                node_b.address,
                ConnectionConfig(interface="hpi", flow_control="none",
                                 error_control="none", sdu_size=65536),
                peer_name="b",
            )
            peer = node_b.accept(timeout=5.0)

            def one_way(size, iterations=30):
                payload = b"x" * size
                samples = []
                for _ in range(iterations):
                    start = time.perf_counter()
                    conn.send(payload)
                    assert peer.recv(timeout=5.0) is not None
                    samples.append(time.perf_counter() - start)
                return statistics.median(samples)

            small = one_way(1)
            large = one_way(65536)
            # 65536x the bytes must NOT cost 65536x the time: the fixed
            # session overhead dominates the small case.
            assert large / small < 1000
        finally:
            node_a.close()
            node_b.close()
