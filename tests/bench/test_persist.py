"""Benchmark persistence and the regression comparator."""

import json
import os

import pytest

from repro.bench.persist import (
    BENCH_DIR_ENV,
    SCHEMA_VERSION,
    BenchResultError,
    bench_filename,
    flatten_numeric,
    load_run,
    make_record,
    persist_run,
    resolve_dir,
)
from repro.tools import bench_compare


class TestResolveDir:
    def test_explicit_directory_wins(self, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, "/somewhere/else")
        assert resolve_dir("/explicit") == "/explicit"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, "/from/env")
        assert resolve_dir() == "/from/env"

    @pytest.mark.parametrize("value", ["off", "none", "0", "disabled", "OFF"])
    def test_env_disable_values(self, monkeypatch, value):
        monkeypatch.setenv(BENCH_DIR_ENV, value)
        assert resolve_dir() is None

    def test_defaults_to_cwd(self, monkeypatch):
        monkeypatch.delenv(BENCH_DIR_ENV, raising=False)
        assert resolve_dir() == os.getcwd()


class TestPersistAndLoad:
    def test_round_trip(self, tmp_path):
        results = {"latency_us": {"p50": 120.5, "p99": 300.0}, "count": 10}
        path = persist_run(
            "t1", results, config={"iterations": 10}, directory=str(tmp_path)
        )
        assert path == str(tmp_path / bench_filename("t1"))
        record = load_run(path)
        assert record["schema"] == SCHEMA_VERSION
        assert record["name"] == "t1"
        assert record["results"] == results
        assert record["config"] == {"iterations": 10}
        assert record["python"]
        assert record["platform"]
        assert "written_at" in record and "git_sha" in record

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        persist_run("t2", {"x": 1}, directory=str(tmp_path))
        assert os.listdir(tmp_path) == [bench_filename("t2")]

    def test_disabled_returns_empty_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, "off")
        assert persist_run("t3", {"x": 1}) == ""

    def test_unwritable_directory_is_silent(self):
        assert persist_run("t4", {"x": 1}, directory="/proc/nope") == ""

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BenchResultError, match="not found"):
            load_run(str(tmp_path / "BENCH_missing.json"))

    def test_load_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchResultError, match="cannot read"):
            load_run(str(path))

    def test_load_wrong_shape(self, tmp_path):
        path = tmp_path / "BENCH_shape.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(BenchResultError, match="not a benchmark record"):
            load_run(str(path))

    def test_load_newer_schema(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        record = make_record("future", {"x": 1})
        record["schema"] = SCHEMA_VERSION + 5
        path.write_text(json.dumps(record), encoding="utf-8")
        with pytest.raises(BenchResultError, match="newer"):
            load_run(str(path))


class TestFlattenNumeric:
    def test_nested_dicts_become_dotted_keys(self):
        flat = flatten_numeric(
            {"a": {"b": 1, "c": {"d": 2.5}}, "top": 3}
        )
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "top": 3.0}

    def test_non_numeric_leaves_are_dropped(self):
        flat = flatten_numeric({"s": "text", "flag": True, "n": 7})
        assert flat == {"n": 7.0}

    def test_numeric_keys_stringify(self):
        assert flatten_numeric({"sizes": {1024: 5.0}}) == {"sizes.1024": 5.0}


class TestCompare:
    def _record(self, results, name="bench"):
        return {"name": name, "git_sha": "abc123def456", "results": results}

    def test_lower_is_better_regression(self):
        report = bench_compare.compare(
            self._record({"rtt_us": 100.0}),
            self._record({"rtt_us": 140.0}),
            threshold=0.25,
        )
        assert report["rows"][0]["regression"] is True
        assert report["regressions"]

    def test_lower_is_better_within_threshold(self):
        report = bench_compare.compare(
            self._record({"rtt_us": 100.0}),
            self._record({"rtt_us": 110.0}),
            threshold=0.25,
        )
        assert not report["regressions"]

    def test_higher_is_better_direction_flips(self):
        # Throughput dropping 40% is a regression even though the number
        # moved down; latency dropping 40% is an improvement.
        report = bench_compare.compare(
            self._record({"throughput_mbps": 100.0, "latency_us": 100.0}),
            self._record({"throughput_mbps": 60.0, "latency_us": 60.0}),
        )
        by_key = {row["key"]: row for row in report["rows"]}
        assert by_key["throughput_mbps"]["regression"] is True
        assert by_key["latency_us"]["regression"] is False
        assert by_key["latency_us"]["improvement"] is True

    def test_disjoint_keys_reported_not_compared(self):
        report = bench_compare.compare(
            self._record({"old_metric": 1.0, "shared": 2.0}),
            self._record({"new_metric": 1.0, "shared": 2.0}),
        )
        assert report["compared"] == 1
        assert report["only_baseline"] == ["old_metric"]
        assert report["only_current"] == ["new_metric"]

    def test_key_filter(self):
        report = bench_compare.compare(
            self._record({"a.x": 1.0, "b.x": 1.0}),
            self._record({"a.x": 1.0, "b.x": 1.0}),
            key_filter="a.",
        )
        assert [row["key"] for row in report["rows"]] == ["a.x"]

    def test_zero_baseline(self):
        report = bench_compare.compare(
            self._record({"m": 0.0}), self._record({"m": 5.0})
        )
        assert report["rows"][0]["change"] == float("inf")
        assert report["rows"][0]["regression"] is True

    def test_format_report_mentions_regressions(self):
        report = bench_compare.compare(
            self._record({"rtt": 100.0}), self._record({"rtt": 200.0})
        )
        text = bench_compare.format_report(report)
        assert "REGRESSION" in text
        assert "1 regression" in text


class TestCompareMain:
    def _write(self, tmp_path, name, results):
        return persist_run(name, results, directory=str(tmp_path))

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path, "clean_base", {"rtt": 100.0})
        curr = self._write(tmp_path, "clean_curr", {"rtt": 101.0})
        assert bench_compare.main([base, curr]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "reg_base", {"rtt": 100.0})
        curr = self._write(tmp_path, "reg_curr", {"rtt": 200.0})
        assert bench_compare.main([base, curr]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_missing_input(self, tmp_path, capsys):
        base = self._write(tmp_path, "only_base", {"rtt": 100.0})
        missing = str(tmp_path / "BENCH_gone.json")
        assert bench_compare.main([base, missing]) == 2
        assert "not found" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path):
        base = self._write(tmp_path, "thr_base", {"rtt": 100.0})
        curr = self._write(tmp_path, "thr_curr", {"rtt": 130.0})
        assert bench_compare.main([base, curr]) == 1
        assert bench_compare.main([base, curr, "--threshold", "0.5"]) == 0

    def test_json_output(self, tmp_path, capsys):
        base = self._write(tmp_path, "json_base", {"rtt": 100.0})
        curr = self._write(tmp_path, "json_curr", {"rtt": 100.0})
        assert bench_compare.main([base, curr, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compared"] == 1
