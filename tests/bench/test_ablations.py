"""Ablation sweeps: the paper's qualitative design claims."""

import pytest

from repro.bench.ablations import (
    error_control_sweep,
    flow_control_sweep,
    multicast_sweep,
    sdu_size_sweep,
    separation_sweep,
)


class TestSduSizeTradeoff:
    """Paper §3.2: large SDUs amortize overhead on clean paths but lose
    more per retransmission on lossy ones."""

    def test_clean_path_prefers_large_sdus(self):
        results = sdu_size_sweep(loss_rates=[0.0])
        clean = results[0.0]
        assert clean[65536]["time_ms"] <= clean[4096]["time_ms"]

    def test_lossy_path_prefers_small_sdus(self):
        results = sdu_size_sweep(loss_rates=[1e-3])
        lossy = results[1e-3]
        assert lossy[4096]["time_ms"] < lossy[65536]["time_ms"]

    def test_everything_delivered_regardless(self):
        results = sdu_size_sweep(loss_rates=[0.0, 1e-3])
        for per_loss in results.values():
            for stats in per_loss.values():
                assert stats["delivered"] == 1


class TestErrorControlChoice:
    def test_reliable_algorithms_deliver_under_loss(self):
        results = error_control_sweep(loss_rates=[2e-3])
        lossy = results[2e-3]
        assert lossy["selective_repeat"]["delivered"] == 1
        assert lossy["go_back_n"]["delivered"] == 1

    def test_null_ec_loses_under_loss(self):
        results = error_control_sweep(loss_rates=[2e-3])
        assert results[2e-3]["none"]["delivered"] == 0

    def test_selective_repeat_retransmits_less_than_gbn(self):
        """The reason it's the default: SR resends only what was lost."""
        results = error_control_sweep(loss_rates=[2e-3])
        lossy = results[2e-3]
        assert (
            lossy["selective_repeat"]["retransmitted_sdus"]
            < lossy["go_back_n"]["retransmitted_sdus"]
        )

    def test_clean_path_costs_are_comparable(self):
        results = error_control_sweep(loss_rates=[0.0])
        clean = results[0.0]
        times = [stats["time_ms"] for stats in clean.values()]
        assert max(times) < min(times) * 1.5


class TestFlowControlChoice:
    def test_all_algorithms_deliver(self):
        results = flow_control_sweep()
        for stats in results.values():
            assert stats["delivered"] == 8

    def test_feedback_algorithms_pay_control_traffic(self):
        """Paper §2: removing flow control removes its overhead — visible
        as control-plane traffic here."""
        results = flow_control_sweep()
        assert results["credit"]["control_pdus"] > results["none"]["control_pdus"]
        assert results["window"]["control_pdus"] > results["none"]["control_pdus"]


class TestSeparation:
    def test_separated_control_is_never_slower(self):
        results = separation_sweep()
        assert (
            results["separated"]["time_ms"]
            <= results["multiplexed"]["time_ms"]
        )

    def test_separation_helps_under_contention(self):
        """On the saturated bidirectional path the dedicated control
        connections buy a measurable speedup."""
        results = separation_sweep()
        speedup = (
            results["multiplexed"]["time_ms"] / results["separated"]["time_ms"]
        )
        assert speedup > 1.05


class TestMulticastAlgorithms:
    @pytest.fixture(scope="class")
    def results(self):
        return multicast_sweep(group_sizes=(2, 8, 32))

    def test_equal_for_two_members(self, results):
        assert results["repetitive"][2] == pytest.approx(
            results["spanning_tree"][2]
        )

    def test_tree_wins_for_large_groups(self, results):
        assert results["spanning_tree"][32] < results["repetitive"][32] / 2

    def test_repetitive_grows_linearly(self, results):
        ratio = results["repetitive"][32] / results["repetitive"][8]
        assert 3.0 < ratio < 5.0  # ~4x members -> ~4x time

    def test_tree_grows_logarithmically(self, results):
        ratio = results["spanning_tree"][32] / results["spanning_tree"][8]
        assert ratio < 2.5
