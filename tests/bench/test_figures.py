"""Shape assertions: the paper's published findings must regenerate.

These tests are the reproduction's acceptance criteria: not absolute
numbers (the substrate is a simulator), but the orderings, crossovers
and decay shapes reported in §4.
"""

import pytest

from repro.bench import fig10, fig12, fig13
from repro.bench.fig11 import run_simulated
from repro.bench.runner import series_ordering


class TestFigure10:
    @pytest.fixture(scope="class")
    def results(self):
        return fig10.run()

    def test_user_level_wins_small_messages(self, results):
        """Paper: Qthread beats Pthread 'up to the 4-Kbyte message size'."""
        for size in (1, 128, 1024, 4096):
            assert results["user"][size] < results["kernel"][size]

    def test_kernel_level_wins_large_messages(self, results):
        """Paper: beyond 4 KB, the kernel package's overlap wins."""
        for size in (8192, 16384, 32768, 65536):
            assert results["kernel"][size] < results["user"][size]

    def test_crossover_adjacent_to_4k(self, results):
        cross = fig10.crossover_size(results)
        assert cross in (8192,), (
            f"crossover at {cross}, expected just above 4K as in the paper"
        )

    def test_kernel_large_message_cost_nearly_flat(self, results):
        """Overlap hides the drain: kernel per-iteration time stays near
        the 100 ms compute floor even at 64 KB."""
        assert results["kernel"][65536] < 110.0  # ms

    def test_user_cost_grows_with_blocking(self, results):
        assert results["user"][65536] > results["user"][8192] * 1.5


class TestFigure11:
    @pytest.fixture(scope="class")
    def ratios(self):
        return run_simulated()

    def test_small_message_overhead_band(self, ratios):
        """Paper: ratio ~2.4-2.8 at one byte."""
        assert 2.0 <= ratios["qthread"][1] <= 3.0
        assert 2.3 <= ratios["pthread"][1] <= 3.5

    def test_ratio_decays_monotonically(self, ratios):
        for series in ratios.values():
            values = [series[size] for size in sorted(series)]
            assert values == sorted(values, reverse=True)

    def test_ratio_approaches_one_at_64k(self, ratios):
        assert ratios["qthread"][65536] < 1.1
        assert ratios["pthread"][65536] < 1.1

    def test_pthread_overhead_above_qthread(self, ratios):
        """Kernel-level synchronization costs more per message."""
        for size in ratios["qthread"]:
            assert ratios["pthread"][size] >= ratios["qthread"][size]


class TestFigure12:
    @pytest.fixture(scope="class")
    def sun(self):
        return fig12.run("sun4")

    @pytest.fixture(scope="class")
    def rs6000(self):
        return fig12.run("rs6000")

    def test_sun_ordering_at_64k(self, sun):
        """Paper: 'NCS has the best performance on the SUN-4 platform'."""
        assert fig12.ordering_at(sun, 65536) == fig12.PAPER_ORDER_64K["sun4"]

    def test_rs6000_ordering_at_64k(self, rs6000):
        """Paper: 'p4 has the best performance on the IBM/RS6000'; PVM
        worst there."""
        assert (
            fig12.ordering_at(rs6000, 65536) == fig12.PAPER_ORDER_64K["rs6000"]
        )

    def test_small_messages_nearly_indistinguishable(self, sun):
        """Paper: below 1 KB 'the performance of all four message-passing
        systems is almost the same' — within a few ms on a 70 ms axis."""
        at_1k = [series[1024] for series in sun.values()]
        assert max(at_1k) - min(at_1k) < 5.0  # ms

    def test_everything_grows_with_size(self, sun, rs6000):
        for results in (sun, rs6000):
            for series in results.values():
                values = [series[size] for size in sorted(series)]
                assert values == sorted(values)

    def test_rs6000_faster_than_sun_overall(self, sun, rs6000):
        for system in sun:
            assert rs6000[system][65536] < sun[system][65536]


class TestFigure13:
    @pytest.fixture(scope="class")
    def hetero(self):
        return fig13.run()

    def test_ordering_at_64k(self, hetero):
        """Paper: NCS best; MPI 'performs very badly as the message size
        gets bigger'; p4 'does not perform well compared to PVM and NCS'."""
        assert fig13.ordering_at(hetero, 65536) == fig13.PAPER_ORDER_64K

    def test_mpi_collapse_magnitude(self, hetero):
        """The figure's defining feature: MPI in the ~400+ ms band at
        64 KB while NCS stays tens of ms — an order of magnitude apart."""
        assert hetero["MPI"][65536] > 300.0
        assert hetero["NCS"][65536] < 60.0
        assert hetero["MPI"][65536] / hetero["NCS"][65536] > 8

    def test_ncs_barely_penalized_by_heterogeneity(self, hetero):
        homogeneous = fig12.run("sun4")
        # NCS ships raw bytes: its heterogeneous time must not exceed the
        # slower homogeneous platform's time.
        assert hetero["NCS"][65536] <= homogeneous["NCS"][65536] * 1.1

    def test_conversion_dominates_for_everyone_else(self, hetero):
        homogeneous = fig12.run("sun4")
        for system in ("p4", "MPI"):
            assert hetero[system][65536] > homogeneous[system][65536] * 2
