"""make_error_control factory."""

import pytest

from repro.errorcontrol import (
    ALGORITHMS,
    GoBackNSender,
    NullSender,
    SelectiveRepeatSender,
    make_error_control,
)


def test_all_algorithms_constructible():
    for name in ALGORITHMS:
        sender, receiver = make_error_control(name, 1, 4096)
        assert sender.name == receiver.name == (name if name != "none" else "none")


def test_selective_repeat_default_options():
    sender, _ = make_error_control(
        "selective_repeat", 1, 8192, retransmit_timeout=0.5, max_retries=3
    )
    assert isinstance(sender, SelectiveRepeatSender)
    assert sender.retransmit_timeout == 0.5
    assert sender.max_retries == 3
    assert sender.sdu_size == 8192


def test_gbn_window_option():
    sender, _ = make_error_control("go_back_n", 1, 4096, window=9)
    assert isinstance(sender, GoBackNSender)
    assert sender.window == 9


def test_null_ignores_reliability_options():
    sender, _ = make_error_control(
        "none", 1, 4096, retransmit_timeout=0.5, max_retries=3
    )
    assert isinstance(sender, NullSender)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown error control"):
        make_error_control("tcp", 1, 4096)
