"""Null error control: the media-stream configuration."""

import pytest

from repro.errorcontrol.null import NullReceiver, NullSender

SDU = 4096
CONN = 2


class TestNullSender:
    def test_completes_immediately(self):
        sender = NullSender(CONN, SDU)
        effects = sender.send(1, b"frame", 0.0)
        assert effects.completed == [1]
        assert len(effects.transmits) == 1
        assert sender.inflight_count() == 0

    def test_ignores_controls_and_timers(self):
        sender = NullSender(CONN, SDU)
        assert sender.on_timer(1.0).empty()

    def test_segments_large_messages(self):
        sender = NullSender(CONN, SDU)
        effects = sender.send(1, b"v" * (3 * SDU), 0.0)
        assert len(effects.transmits) == 3


class TestNullReceiver:
    def test_delivers_complete_message(self):
        sender, receiver = NullSender(CONN, SDU), NullReceiver(CONN)
        payload = b"m" * (2 * SDU)
        effects = sender.send(1, payload, 0.0)
        out = []
        for sdu in effects.transmits:
            out += receiver.on_sdu(sdu, 0.0).deliveries
        assert out == [payload]

    def test_no_acks_ever(self):
        sender, receiver = NullSender(CONN, SDU), NullReceiver(CONN)
        effects = sender.send(1, b"x" * (2 * SDU), 0.0)
        for sdu in effects.transmits:
            assert receiver.on_sdu(sdu, 0.0).controls == []

    def test_lost_sdu_drops_message_silently(self):
        sender, receiver = NullSender(CONN, SDU), NullReceiver(CONN, gc_timeout=1.0)
        effects = sender.send(1, b"x" * (3 * SDU), 0.0)
        for sdu in effects.transmits[:-1]:  # end SDU lost
            receiver.on_sdu(sdu, 0.0)
        # GC reclaims the partial state after the timeout.
        receiver.on_timer(2.0)
        assert receiver.dropped_messages == 1

    def test_gc_timer_requested_while_inflight(self):
        sender, receiver = NullSender(CONN, SDU), NullReceiver(CONN, gc_timeout=0.5)
        effects = sender.send(1, b"x" * (2 * SDU), 0.0)
        result = receiver.on_sdu(effects.transmits[0], 1.0)
        assert result.timer_at == pytest.approx(1.5)

    def test_next_message_unaffected_by_dropped_one(self):
        sender, receiver = NullSender(CONN, SDU), NullReceiver(CONN, gc_timeout=0.1)
        lost = sender.send(1, b"a" * (2 * SDU), 0.0)
        receiver.on_sdu(lost.transmits[0], 0.0)
        receiver.on_timer(1.0)  # GC the partial message
        fresh = sender.send(2, b"fresh", 1.1)
        out = receiver.on_sdu(fresh.transmits[0], 1.1).deliveries
        assert out == [b"fresh"]
