"""Selective repeat: the paper's default error control (Fig. 5/6)."""

import pytest

from repro.errorcontrol.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)
from repro.protocol.pdus import AckPdu
from repro.util.bitmap import AckBitmap

SDU = 4096
CONN = 7


@pytest.fixture
def pair():
    return (
        SelectiveRepeatSender(CONN, SDU, retransmit_timeout=0.1, max_retries=4),
        SelectiveRepeatReceiver(CONN),
    )


def pump(sender_effects, receiver, now=0.0, drop=()):
    """Deliver transmits to the receiver; collect deliveries and ACKs."""
    deliveries, acks = [], []
    for index, sdu in enumerate(sender_effects.transmits):
        if index in drop:
            continue
        effects = receiver.on_sdu(sdu, now)
        deliveries += effects.deliveries
        acks += effects.controls
    return deliveries, acks


class TestCleanPath:
    def test_single_sdu_message(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"small", 0.0)
        assert len(effects.transmits) == 1
        deliveries, acks = pump(effects, receiver)
        assert deliveries == [b"small"]
        assert len(acks) == 1 and acks[0].bitmap.all_received()
        done = sender.on_control(acks[0], 0.01)
        assert done.completed == [1]
        assert sender.idle()

    def test_multi_sdu_message(self, pair):
        sender, receiver = pair
        payload = bytes(range(256)) * 100  # 25600 B -> 7 SDUs
        effects = sender.send(1, payload, 0.0)
        assert len(effects.transmits) == 7
        deliveries, acks = pump(effects, receiver)
        assert deliveries == [payload]
        # Only the end-bit SDU triggers an ACK on the clean path.
        assert len(acks) == 1

    def test_timer_armed_on_send(self, pair):
        sender, _ = pair
        effects = sender.send(1, b"x", 5.0)
        assert effects.timer_at == pytest.approx(5.1)

    def test_duplicate_msg_id_rejected(self, pair):
        sender, _ = pair
        sender.send(1, b"x", 0.0)
        with pytest.raises(ValueError, match="already in flight"):
            sender.send(1, b"y", 0.0)


class TestLossRecovery:
    def test_selective_retransmission_exact_sdus(self, pair):
        sender, receiver = pair
        payload = b"z" * (5 * SDU)
        effects = sender.send(1, payload, 0.0)
        deliveries, acks = pump(effects, receiver, drop={1, 3})
        assert deliveries == []
        (ack,) = acks  # end bit arrived, bitmap shows 1 and 3 missing
        assert ack.bitmap.pending() == [1, 3]
        retransmission = sender.on_control(ack, 0.01)
        assert [s.header.seqno for s in retransmission.transmits] == [1, 3]
        assert sender.retransmitted_sdus == 2
        deliveries, acks = pump(retransmission, receiver, now=0.02)
        assert deliveries == [payload]
        final = sender.on_control(acks[0], 0.03)
        assert final.completed == [1]

    def test_lost_end_sdu_recovered_by_timeout(self, pair):
        sender, receiver = pair
        payload = b"q" * (3 * SDU)
        effects = sender.send(1, payload, 0.0)
        deliveries, acks = pump(effects, receiver, drop={2})  # end SDU lost
        assert deliveries == [] and acks == []
        # No ACK possible; sender times out and resends the whole message.
        timeout_effects = sender.on_timer(0.2)
        assert len(timeout_effects.transmits) == 3
        assert sender.full_retransmits == 1
        deliveries, acks = pump(timeout_effects, receiver, now=0.21)
        assert deliveries == [payload]
        assert sender.on_control(acks[0], 0.22).completed == [1]

    def test_lost_ack_recovered(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"m" * SDU, 0.0)
        deliveries, acks = pump(effects, receiver)
        assert deliveries == [b"m" * SDU]
        # ACK lost; timeout retransmits; receiver re-ACKs all-clear.
        retry = sender.on_timer(0.2)
        assert len(retry.transmits) == 1
        deliveries, acks = pump(retry, receiver, now=0.21)
        assert deliveries == []  # not delivered twice
        assert receiver.duplicate_count >= 1
        assert acks and acks[-1].bitmap.all_received()
        assert sender.on_control(acks[-1], 0.22).completed == [1]

    def test_corrupted_sdu_selectively_retransmitted(self, pair):
        sender, receiver = pair
        payload = b"c" * (4 * SDU)
        effects = sender.send(1, payload, 0.0)
        transmits = list(effects.transmits)
        transmits[2] = transmits[2].corrupted_copy()
        acks = []
        for sdu in transmits:
            result = receiver.on_sdu(sdu, 0.0)
            acks += result.controls
        assert receiver.corrupted_count == 1
        (ack,) = acks
        assert ack.bitmap.pending() == [2]

    def test_exhausted_timeouts_fail_message(self, pair):
        sender, _ = pair
        sender.send(1, b"x" * SDU, 0.0)
        now, failed = 0.0, []
        for _ in range(10):
            now += 0.2
            failed += sender.on_timer(now).failed
        assert failed == [1]
        assert sender.idle()

    def test_duplicate_ack_does_not_restorm(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"y" * (3 * SDU), 0.0)
        _, acks = pump(effects, receiver, drop={0})
        (ack,) = acks
        first = sender.on_control(ack, 0.01)
        assert len(first.transmits) == 1
        # The identical ACK arriving again a moment later is ignored.
        second = sender.on_control(ack, 0.012)
        assert second.transmits == []

    def test_progress_resets_stall_clock(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"w" * (3 * SDU), 0.0)
        _, acks = pump(effects, receiver, drop={0})
        sender.on_control(acks[0], 0.09)
        # Deadline pushed out by the ACK: a timer at the original 0.1
        # must not fire a full retransmission.
        result = sender.on_timer(0.11)
        assert result.transmits == []


class TestReceiverEdgeCases:
    def test_foreign_connection_ignored(self, pair):
        sender, receiver = pair
        effects = SelectiveRepeatSender(99, SDU).send(1, b"x", 0.0)
        result = receiver.on_sdu(effects.transmits[0], 0.0)
        assert result.empty()

    def test_ack_for_unknown_msg_harmless(self, pair):
        sender, _ = pair
        stray = AckPdu(CONN, 404, AckBitmap(4, all_set=False))
        assert sender.on_control(stray, 0.0).empty()

    def test_acks_counted(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"x", 0.0)
        pump(effects, receiver)
        assert receiver.acks_sent == 1
