"""Go-back-N error control."""

import pytest

from repro.errorcontrol.go_back_n import GoBackNReceiver, GoBackNSender

SDU = 4096
CONN = 3


@pytest.fixture
def pair():
    return (
        GoBackNSender(CONN, SDU, window=4, retransmit_timeout=0.1, max_retries=4),
        GoBackNReceiver(CONN),
    )


def feed(receiver, sdus, now=0.0, drop=()):
    deliveries, acks = [], []
    for index, sdu in enumerate(sdus):
        if index in drop:
            continue
        effects = receiver.on_sdu(sdu, now)
        deliveries += effects.deliveries
        acks += effects.controls
    return deliveries, acks


class TestWindowedTransmission:
    def test_initial_burst_limited_to_window(self, pair):
        sender, _ = pair
        effects = sender.send(1, b"x" * (10 * SDU), 0.0)
        assert len(effects.transmits) == 4  # window, not whole message

    def test_acks_slide_window(self, pair):
        sender, receiver = pair
        payload = b"y" * (6 * SDU)
        effects = sender.send(1, payload, 0.0)
        deliveries, acks = feed(receiver, effects.transmits)
        assert deliveries == []
        more = []
        for ack in acks:
            more += sender.on_control(ack, 0.01).transmits
        assert [s.header.seqno for s in more] == [4, 5]
        deliveries, acks = feed(receiver, more, now=0.02)
        assert deliveries == [payload]
        done = []
        for ack in acks:
            done += sender.on_control(ack, 0.03).completed
        assert done == [1]

    def test_small_message_completes(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"small", 0.0)
        deliveries, acks = feed(receiver, effects.transmits)
        assert deliveries == [b"small"]
        assert sender.on_control(acks[0], 0.01).completed == [1]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            GoBackNSender(CONN, SDU, window=0)


class TestInOrderOnly:
    def test_out_of_order_discarded_and_reacked(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"z" * (4 * SDU), 0.0)
        deliveries, acks = feed(receiver, effects.transmits, drop={0})
        assert deliveries == []
        assert receiver.discarded_out_of_order == 3
        # Every ACK repeats next_expected=0.
        assert all(a.next_expected == 0 for a in acks)

    def test_timeout_rewinds_to_base(self, pair):
        sender, receiver = pair
        payload = b"r" * (4 * SDU)
        effects = sender.send(1, payload, 0.0)
        _, acks = feed(receiver, effects.transmits, drop={1})
        for ack in acks:
            sender.on_control(ack, 0.01)
        retry = sender.on_timer(0.2)
        # base advanced to 1 (seq 0 was cumulatively ACKed); rewind
        # resends 1..3.
        assert [s.header.seqno for s in retry.transmits] == [1, 2, 3]
        deliveries, acks = feed(receiver, retry.transmits, now=0.21)
        assert deliveries == [payload]

    def test_corrupted_sdu_treated_as_gap(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"k" * (2 * SDU), 0.0)
        transmits = list(effects.transmits)
        transmits[0] = transmits[0].corrupted_copy()
        deliveries, acks = feed(receiver, transmits)
        assert deliveries == []
        assert all(a.next_expected == 0 for a in acks)


class TestRetryBudget:
    def test_stall_exhausts_retries(self, pair):
        sender, _ = pair
        sender.send(1, b"x" * SDU, 0.0)
        failed, now = [], 0.0
        for _ in range(10):
            now += 0.2
            failed += sender.on_timer(now).failed
        assert failed == [1]

    def test_progress_resets_budget(self, pair):
        """Each timeout round makes progress (one SDU lost per round), so
        the retry budget keeps resetting and delivery must succeed even
        though total timeouts exceed max_retries."""
        sender, receiver = pair
        payload = b"p" * (8 * SDU)
        outstanding = list(sender.send(1, payload, 0.0).transmits)
        now = 0.0
        delivered = []
        completed = []
        rounds = 0
        while not completed and rounds < 20:
            rounds += 1
            # Drop exactly the first outstanding SDU this round.
            deliveries, acks = feed(receiver, outstanding, now=now, drop={0})
            delivered += deliveries
            outstanding = []
            for ack in acks:
                result = sender.on_control(ack, now)
                outstanding += result.transmits
                completed += result.completed
            if not completed:
                now += 0.2  # let the retransmission timer fire
                timer = sender.on_timer(now)
                outstanding += timer.transmits
                assert not timer.failed, (
                    "budget must reset on forward progress"
                )
                if outstanding:
                    # Final drain round: deliver everything cleanly.
                    deliveries, acks = feed(receiver, outstanding, now=now)
                    delivered += deliveries
                    outstanding = []
                    for ack in acks:
                        result = sender.on_control(ack, now)
                        outstanding += result.transmits
                        completed += result.completed
        assert completed == [1]
        assert delivered == [payload]


class TestLateRetransmits:
    def test_completed_message_reacked(self, pair):
        sender, receiver = pair
        effects = sender.send(1, b"done", 0.0)
        deliveries, acks = feed(receiver, effects.transmits)
        assert deliveries == [b"done"]
        # Same SDU again (ACK was lost): receiver must re-ACK completion
        # without double delivery.
        again = receiver.on_sdu(effects.transmits[0], 0.1)
        assert again.deliveries == []
        assert again.controls[0].next_expected == 1
