"""AckBitmap: the selective-repeat receiver's per-SDU status."""

import pytest

from repro.util.bitmap import AckBitmap


class TestConstruction:
    def test_starts_all_pending(self):
        bm = AckBitmap(8)
        assert bm.pending() == list(range(8))
        assert not bm.all_received()

    def test_all_clear_variant(self):
        bm = AckBitmap(8, all_set=False)
        assert bm.all_received()
        assert bm.pending() == []

    def test_zero_size_is_complete(self):
        assert AckBitmap(0).all_received()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AckBitmap(-1)


class TestMarking:
    def test_mark_received_clears_bit(self):
        bm = AckBitmap(4)
        bm.mark_received(2)
        assert not bm.is_pending(2)
        assert bm.pending() == [0, 1, 3]

    def test_mark_error_resets_bit(self):
        bm = AckBitmap(4)
        bm.mark_received(1)
        bm.mark_error(1)
        assert bm.is_pending(1)

    def test_complete_after_all_marked(self):
        bm = AckBitmap(5)
        for seqno in range(5):
            bm.mark_received(seqno)
        assert bm.all_received()

    def test_marking_is_idempotent(self):
        bm = AckBitmap(3)
        bm.mark_received(0)
        bm.mark_received(0)
        assert bm.pending() == [1, 2]

    def test_out_of_range_raises(self):
        bm = AckBitmap(3)
        with pytest.raises(IndexError):
            bm.mark_received(3)
        with pytest.raises(IndexError):
            bm.is_pending(-1)

    def test_pending_count(self):
        bm = AckBitmap(10)
        for seqno in (0, 3, 7):
            bm.mark_received(seqno)
        assert bm.pending_count() == 7


class TestWireFormat:
    def test_roundtrip_small(self):
        bm = AckBitmap(5)
        bm.mark_received(1)
        bm.mark_received(4)
        again = AckBitmap.from_bytes(bm.to_bytes(), 5)
        assert again == bm

    def test_roundtrip_multibyte(self):
        bm = AckBitmap(70)
        for seqno in range(0, 70, 3):
            bm.mark_received(seqno)
        again = AckBitmap.from_bytes(bm.to_bytes(), 70)
        assert again.pending() == bm.pending()

    def test_wire_size_rounds_to_bytes(self):
        assert len(AckBitmap(1).to_bytes()) == 1
        assert len(AckBitmap(8).to_bytes()) == 1
        assert len(AckBitmap(9).to_bytes()) == 2

    def test_decoding_masks_garbage_high_bits(self):
        # A peer could pad with set bits beyond `size`; they must not
        # become phantom pending SDUs.
        bm = AckBitmap.from_bytes(b"\xff", 3)
        assert bm.pending() == [0, 1, 2]


class TestMerge:
    def test_merge_unions_errors(self):
        left = AckBitmap(4, all_set=False)
        right = AckBitmap(4, all_set=False)
        left.mark_error(0)
        right.mark_error(3)
        left.merge_errors(right)
        assert left.pending() == [0, 3]

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AckBitmap(4).merge_errors(AckBitmap(5))


class TestSnapshot:
    def test_snapshot_equals_original(self):
        bm = AckBitmap(70)
        for seqno in range(0, 70, 7):
            bm.mark_received(seqno)
        snap = bm.snapshot()
        assert snap == bm
        assert snap.size == bm.size

    def test_snapshot_shares_bits_without_copying(self):
        # The whole point: the backing int is immutable, so a snapshot
        # is O(1) regardless of bitmap width — no byte round-trip.
        bm = AckBitmap(16384)
        snap = bm.snapshot()
        assert snap._bits is bm._bits

    def test_later_marks_do_not_leak_into_snapshot(self):
        bm = AckBitmap(8)
        snap = bm.snapshot()
        bm.mark_received(3)
        assert snap.is_pending(3)      # frozen at snapshot time
        assert not bm.is_pending(3)

    def test_snapshot_marks_do_not_leak_into_original(self):
        bm = AckBitmap(8, all_set=False)
        snap = bm.snapshot()
        snap.mark_error(5)
        assert bm.all_received()
        assert snap.is_pending(5)


class TestEquality:
    def test_equal_bitmaps_hash_equal(self):
        a, b = AckBitmap(6), AckBitmap(6)
        a.mark_received(2)
        b.mark_received(2)
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_to_other_types(self):
        assert AckBitmap(2) != "xx"
