"""Clock abstractions: wall time and virtual time."""

import time

import pytest

from repro.util.clock import MonotonicClock, VirtualClock


class TestMonotonicClock:
    def test_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        time.sleep(0.002)
        assert clock.now() > first

    def test_microseconds_scale(self):
        clock = MonotonicClock()
        assert clock.now_us() == pytest.approx(clock.now() * 1e6, rel=0.01)


class TestVirtualClock:
    def test_starts_at_configured_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_by(self):
        clock = VirtualClock(1.0)
        clock.advance_by(0.25)
        assert clock.now() == 1.25

    def test_never_goes_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-0.1)

    def test_does_not_tick_on_its_own(self):
        clock = VirtualClock()
        first = clock.now()
        time.sleep(0.002)
        assert clock.now() == first
