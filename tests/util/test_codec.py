"""Byte codecs: ByteWriter/Reader and the XDR subset."""

import pytest

from repro.util.codec import ByteReader, ByteWriter, XdrDecoder, XdrEncoder


class TestByteWriterReader:
    def test_scalar_roundtrip(self):
        writer = ByteWriter()
        writer.u8(7).u16(300).u32(70000).u64(1 << 40).f64(3.25)
        reader = ByteReader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.u64() == 1 << 40
        assert reader.f64() == 3.25
        assert reader.remaining() == 0

    def test_length_prefixed_bytes(self):
        writer = ByteWriter()
        writer.lp_bytes(b"abc").lp_bytes(b"")
        reader = ByteReader(writer.getvalue())
        assert reader.lp_bytes() == b"abc"
        assert reader.lp_bytes() == b""

    def test_length_prefixed_string_unicode(self):
        writer = ByteWriter()
        writer.lp_str("héllo — ATM")
        assert ByteReader(writer.getvalue()).lp_str() == "héllo — ATM"

    def test_network_byte_order(self):
        writer = ByteWriter()
        writer.u16(0x0102)
        assert writer.getvalue() == b"\x01\x02"

    def test_truncated_read_raises(self):
        reader = ByteReader(b"\x00")
        with pytest.raises(ValueError, match="truncated"):
            reader.u32()

    def test_rest_consumes_remainder(self):
        reader = ByteReader(b"\x01rest-bytes")
        reader.u8()
        assert reader.rest() == b"rest-bytes"
        assert reader.remaining() == 0

    def test_len_tracks_written(self):
        writer = ByteWriter()
        writer.u32(1).raw(b"xyz")
        assert len(writer) == 7


class TestXdr:
    def test_int_roundtrip_signed(self):
        encoder = XdrEncoder()
        encoder.pack_int(-42)
        encoder.pack_int(42)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_int() == -42
        assert decoder.unpack_int() == 42
        assert decoder.done()

    def test_hyper_and_double(self):
        encoder = XdrEncoder()
        encoder.pack_hyper(-(1 << 60))
        encoder.pack_double(2.5)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_hyper() == -(1 << 60)
        assert decoder.unpack_double() == 2.5

    def test_opaque_padding_to_four_bytes(self):
        encoder = XdrEncoder()
        encoder.pack_opaque(b"abcde")  # 5 bytes -> 3 bytes pad
        encoded = encoder.getvalue()
        assert len(encoded) == 4 + 8  # length word + padded body
        assert XdrDecoder(encoded).unpack_opaque() == b"abcde"

    def test_opaque_multiple_of_four_unpadded(self):
        encoder = XdrEncoder()
        encoder.pack_opaque(b"abcd")
        assert len(encoder.getvalue()) == 8

    def test_string_roundtrip(self):
        encoder = XdrEncoder()
        encoder.pack_string("pvm3 message")
        assert XdrDecoder(encoder.getvalue()).unpack_string() == "pvm3 message"

    def test_mixed_stream(self):
        encoder = XdrEncoder()
        encoder.pack_uint(9)
        encoder.pack_opaque(b"xy")
        encoder.pack_int(-1)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_uint() == 9
        assert decoder.unpack_opaque() == b"xy"
        assert decoder.unpack_int() == -1
        assert decoder.done()
