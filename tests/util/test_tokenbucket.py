"""Token bucket for rate-based flow control."""

import pytest

from repro.util.clock import VirtualClock
from repro.util.tokenbucket import TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10, capacity=5, clock=VirtualClock())
        assert bucket.tokens == 5

    def test_consume_reduces_tokens(self):
        bucket = TokenBucket(rate=10, capacity=5, clock=VirtualClock())
        assert bucket.try_consume(3)
        assert bucket.tokens == 2

    def test_refuses_when_empty(self):
        bucket = TokenBucket(rate=10, capacity=2, clock=VirtualClock())
        assert bucket.try_consume(2)
        assert not bucket.try_consume(1)

    def test_refills_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10, capacity=5, clock=clock)
        bucket.try_consume(5)
        clock.advance_by(0.3)  # 3 tokens refilled
        assert bucket.tokens == pytest.approx(3.0)
        assert bucket.try_consume(3)

    def test_never_exceeds_capacity(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=100, capacity=4, clock=clock)
        clock.advance_by(10.0)
        assert bucket.tokens == 4

    def test_time_until_available(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10, capacity=5, clock=clock)
        bucket.try_consume(5)
        assert bucket.time_until_available(2) == pytest.approx(0.2)

    def test_time_until_available_now(self):
        bucket = TokenBucket(rate=10, capacity=5, clock=VirtualClock())
        assert bucket.time_until_available(1) == 0.0

    def test_unsatisfiable_request_is_infinite(self):
        bucket = TokenBucket(rate=10, capacity=5, clock=VirtualClock())
        assert bucket.time_until_available(6) == float("inf")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, capacity=0)
        bucket = TokenBucket(rate=1, capacity=1, clock=VirtualClock())
        with pytest.raises(ValueError):
            bucket.try_consume(-1)

    def test_pacing_sequence(self):
        # Consuming one token per packet at twice the refill rate must
        # alternate between success and a wait.
        clock = VirtualClock()
        bucket = TokenBucket(rate=10, capacity=1, clock=clock)
        sent = 0
        for _ in range(20):
            if bucket.try_consume(1):
                sent += 1
            clock.advance_by(0.05)  # half a token per step
        assert sent == pytest.approx(10, abs=1)
