"""Timing statistics: trimmed mean (paper methodology) and Welford."""

import math
import random

import pytest

from repro.util.stats import RunningStats, summarize, trimmed_mean


class TestTrimmedMean:
    def test_drops_best_and_worst(self):
        # Paper §4.3: averaged "after discarding the best and worst".
        samples = [5.0, 1.0, 100.0, 5.0, 5.0]
        assert trimmed_mean(samples) == 5.0

    def test_plain_mean_when_too_few(self):
        assert trimmed_mean([3.0, 9.0]) == 6.0

    def test_single_sample(self):
        assert trimmed_mean([7.5]) == 7.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_wider_trim(self):
        samples = [0.0, 1.0, 10.0, 10.0, 10.0, 99.0, 100.0]
        assert trimmed_mean(samples, discard_each_end=2) == 10.0

    def test_outliers_do_not_skew(self):
        rng = random.Random(1)
        samples = [1.0 + rng.random() * 0.01 for _ in range(98)]
        samples += [50.0, 0.0001]  # a context-switch hiccup and a fluke
        assert abs(trimmed_mean(samples) - 1.005) < 0.01


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_min_max(self):
        stats = RunningStats()
        for value in (3.0, -1.0, 7.0):
            stats.add(value)
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_empty_is_zeroed(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.stddev == 0.0
        assert stats.count == 0

    def test_single_value_zero_variance(self):
        stats = RunningStats()
        stats.add(42.0)
        assert stats.variance == 0.0

    def test_merge_matches_combined_stream(self):
        rng = random.Random(7)
        left_values = [rng.gauss(10, 2) for _ in range(50)]
        right_values = [rng.gauss(20, 5) for _ in range(30)]
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        for value in left_values:
            left.add(value)
            combined.add(value)
        for value in right_values:
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_into_empty(self):
        left, right = RunningStats(), RunningStats()
        right.add(5.0)
        right.add(7.0)
        left.merge(right)
        assert left.count == 2
        assert left.mean == 6.0

    def test_merge_empty_is_noop(self):
        stats = RunningStats()
        stats.add(1.0)
        stats.merge(RunningStats())
        assert stats.count == 1


class TestRunningStatsSummary:
    def test_summary_snapshot(self):
        stats = RunningStats()
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        summary = stats.summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        # Streaming stats cannot trim, so trimmed carries the plain mean.
        assert summary.trimmed == summary.mean

    def test_summary_of_empty(self):
        summary = RunningStats().summary()
        assert summary.count == 0
        assert summary.mean == 0.0


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.trimmed == 3.0
        assert summary.mean == pytest.approx(22.0)
        assert summary.stddev > 0
