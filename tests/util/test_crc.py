"""CRC generators: AAL5 CRC-32 and OAM CRC-10."""

import zlib

import pytest

from repro.util.crc import crc10, crc10_bitwise, crc32_aal5, crc32_aal5_reference


class TestCrc32:
    def test_standard_check_value(self):
        # The canonical CRC-32 check: crc("123456789") == 0xCBF43926.
        assert crc32_aal5(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        data = bytes(range(256)) * 3
        assert crc32_aal5(data) == zlib.crc32(data)

    def test_fast_path_matches_reference(self):
        for data in (b"", b"\x00", b"hello world", bytes(range(256))):
            assert crc32_aal5(data) == crc32_aal5_reference(data)

    def test_incremental_equals_whole(self):
        a, b = b"first fragment", b"second fragment"
        chained = crc32_aal5(b, crc32_aal5(a) ^ 0xFFFFFFFF)
        assert chained == crc32_aal5(a + b)

    def test_detects_single_bit_flip(self):
        data = bytearray(b"payload under test")
        original = crc32_aal5(bytes(data))
        data[5] ^= 0x01
        assert crc32_aal5(bytes(data)) != original

    def test_empty_input(self):
        assert crc32_aal5(b"") == 0  # zlib convention: crc of nothing


class TestCrc10:
    def test_table_matches_bitwise(self):
        for data in (b"", b"\x00", b"\xff" * 4, b"OAM cell body", bytes(range(48))):
            assert crc10(data) == crc10_bitwise(data)

    def test_ten_bit_range(self):
        for data in (b"x" * n for n in range(1, 20)):
            assert 0 <= crc10(data) < 1024

    def test_detects_corruption(self):
        data = bytearray(b"\x6a" * 46)
        original = crc10(bytes(data))
        data[10] ^= 0x40
        assert crc10(bytes(data)) != original

    def test_chaining(self):
        a, b = b"abcd", b"efgh"
        assert crc10(b, crc10(a)) == crc10(a + b)
