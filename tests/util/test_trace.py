"""Event tracer."""

from repro.util.clock import VirtualClock
from repro.util.trace import TraceEvent, Tracer


class TestTracer:
    def test_records_events_with_detail(self):
        tracer = Tracer(VirtualClock(1.0))
        tracer.emit("ec", "retransmit", seqno=3, msg_id=9)
        (event,) = tracer.events
        assert event.category == "ec"
        assert event.name == "retransmit"
        assert event.detail == {"seqno": 3, "msg_id": 9}
        assert event.timestamp == 1.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit("x", "y")
        assert len(tracer) == 0

    def test_select_by_category_and_name(self):
        tracer = Tracer(VirtualClock())
        tracer.emit("fc", "credit", n=1)
        tracer.emit("fc", "stall")
        tracer.emit("ec", "ack")
        assert tracer.count("fc") == 2
        assert tracer.count("fc", "stall") == 1
        assert tracer.count(name="ack") == 1

    def test_sink_receives_events(self):
        seen = []
        tracer = Tracer(VirtualClock())
        tracer.add_sink(seen.append)
        tracer.emit("a", "b")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceEvent)

    def test_clear(self):
        tracer = Tracer(VirtualClock())
        tracer.emit("a", "b")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_rendering(self):
        event = TraceEvent(0.5, "node", "accepted", {"conn_id": 3})
        rendered = str(event)
        assert "node.accepted" in rendered
        assert "conn_id=3" in rendered
