"""Event tracer and export sinks."""

import json
import threading

from repro.util.clock import VirtualClock
from repro.util.trace import (
    ChromeTraceSink,
    JsonlSink,
    TraceEvent,
    Tracer,
    trace_env_enabled,
    write_chrome_trace,
)


class TestTracer:
    def test_records_events_with_detail(self):
        tracer = Tracer(VirtualClock(1.0))
        tracer.emit("ec", "retransmit", seqno=3, msg_id=9)
        (event,) = tracer.events
        assert event.category == "ec"
        assert event.name == "retransmit"
        assert event.detail == {"seqno": 3, "msg_id": 9}
        assert event.timestamp == 1.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit("x", "y")
        assert len(tracer) == 0

    def test_select_by_category_and_name(self):
        tracer = Tracer(VirtualClock())
        tracer.emit("fc", "credit", n=1)
        tracer.emit("fc", "stall")
        tracer.emit("ec", "ack")
        assert tracer.count("fc") == 2
        assert tracer.count("fc", "stall") == 1
        assert tracer.count(name="ack") == 1

    def test_sink_receives_events(self):
        seen = []
        tracer = Tracer(VirtualClock())
        tracer.add_sink(seen.append)
        tracer.emit("a", "b")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceEvent)

    def test_clear(self):
        tracer = Tracer(VirtualClock())
        tracer.emit("a", "b")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_rendering(self):
        event = TraceEvent(0.5, "node", "accepted", {"conn_id": 3})
        rendered = str(event)
        assert "node.accepted" in rendered
        assert "conn_id=3" in rendered

    def test_events_is_a_snapshot(self):
        tracer = Tracer(VirtualClock())
        tracer.emit("a", "b")
        snapshot = tracer.events
        snapshot.clear()
        assert len(tracer) == 1  # mutating the copy changed nothing

    def test_concurrent_emit_and_clear(self):
        tracer = Tracer(VirtualClock())
        stop = threading.Event()

        def emitter():
            while not stop.is_set():
                tracer.emit("load", "tick")

        threads = [threading.Thread(target=emitter) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            tracer.clear()
            list(tracer)  # iterate a snapshot while emits continue
        stop.set()
        for thread in threads:
            thread.join()
        tracer.emit("load", "final")
        assert tracer.count("load", "final") == 1


class TestSinks:
    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(VirtualClock(2.0))
        sink = JsonlSink(str(path))
        tracer.add_sink(sink)
        tracer.emit("data", "send", msg_id=1, size=4)
        tracer.emit("control", "ack", msg_id=1)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "ts": 2.0, "category": "data", "name": "send",
            "msg_id": 1, "size": 4,
        }
        assert records[1]["category"] == "control"

    def test_jsonl_sink_appends_across_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(str(path))
            sink(TraceEvent(0.0, "a", "b", {}))
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_sink_ignores_emit_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        sink(TraceEvent(0.0, "a", "b", {}))  # must not raise
        assert path.read_text() == ""

    def test_chrome_trace_sink(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), pid=42)
        sink(TraceEvent(0.001, "data", "send", {"msg_id": 7}))
        sink.write()
        document = json.loads(path.read_text())
        (record,) = document["traceEvents"]
        assert record["name"] == "data.send"
        assert record["ph"] == "i"
        assert record["ts"] == 1000.0  # seconds -> microseconds
        assert record["pid"] == 42
        assert record["args"] == {"msg_id": 7}

    def test_write_chrome_trace_from_collected_events(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = Tracer(VirtualClock())
        tracer.emit("a", "b")
        tracer.emit("a", "c")
        write_chrome_trace(tracer.events, str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == 2


class TestEnvWiring:
    def test_trace_env_enabled_values(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv("NCS_TRACE", value)
            assert trace_env_enabled() is expected
        monkeypatch.delenv("NCS_TRACE")
        assert trace_env_enabled() is False


class TestAtexitFlush:
    def test_registered_sinks_are_flushed_by_hook(self, tmp_path):
        from repro.util import trace as trace_mod

        path = tmp_path / "buffered.json"
        sink = ChromeTraceSink(str(path))
        sink(TraceEvent(0.0, "data", "send", {"msg": 1}))
        assert not path.exists()  # ChromeTraceSink buffers until close
        trace_mod._flush_all_sinks()
        with open(path, encoding="utf-8") as handle:
            assert len(json.load(handle)["traceEvents"]) == 1

    def test_flush_survives_a_broken_sink(self, tmp_path):
        from repro.util import trace as trace_mod

        class Broken:
            def close(self):
                raise RuntimeError("boom")

        trace_mod._LIVE_SINKS.add(Broken())
        path = tmp_path / "after_broken.jsonl"
        sink = JsonlSink(str(path))
        trace_mod._flush_all_sinks()  # must not raise
        assert sink._file.closed

    def test_interpreter_exit_flushes_chrome_trace(self, tmp_path):
        """A process that never calls close() still gets its trace file:
        the atexit hook closes every live sink."""
        import os
        import subprocess
        import sys

        import repro

        path = tmp_path / "exit_trace.json"
        script = (
            "from repro.util.trace import ChromeTraceSink, TraceEvent\n"
            f"sink = ChromeTraceSink({str(path)!r})\n"
            "sink(TraceEvent(0.0, 'data', 'send', {'msg': 7}))\n"
            "# no close(): rely on the atexit hook\n"
        )
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": src_dir},
        )
        assert proc.returncode == 0, proc.stderr
        with open(path, encoding="utf-8") as handle:
            events = json.load(handle)["traceEvents"]
        assert events and events[0]["args"] == {"msg": 7}
