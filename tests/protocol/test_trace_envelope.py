"""Trace/span envelope in the SDU header: wire format and stamping."""

import struct

import pytest

from repro.protocol.headers import (
    HEADER_SIZE,
    TRACE_EXT_SIZE,
    HeaderError,
    Sdu,
    SduHeader,
)
from repro.protocol.segmentation import Reassembler, segment_message


def _sdu(payload=b"abc", trace_id=0, span_id=0):
    return Sdu.build(
        connection_id=1,
        msg_id=2,
        seqno=0,
        total_sdus=1,
        payload=payload,
        end_bit=True,
        trace_id=trace_id,
        span_id=span_id,
    )


class TestHeaderExtension:
    def test_untraced_header_has_zero_overhead(self):
        sdu = _sdu()
        assert sdu.header.trace_id == 0
        assert sdu.header.header_size == HEADER_SIZE
        assert len(sdu.encode()) == HEADER_SIZE + 3

    def test_traced_header_appends_extension(self):
        sdu = _sdu(trace_id=0xDEADBEEFCAFEF00D, span_id=42)
        assert sdu.header.header_size == HEADER_SIZE + TRACE_EXT_SIZE
        assert len(sdu.encode()) == HEADER_SIZE + TRACE_EXT_SIZE + 3

    def test_roundtrip_preserves_trace_and_payload(self):
        sdu = _sdu(payload=b"hello", trace_id=123456789, span_id=9)
        decoded = Sdu.decode(sdu.encode())
        assert decoded.header.trace_id == 123456789
        assert decoded.header.span_id == 9
        assert bytes(decoded.payload) == b"hello"
        assert decoded.header.payload_crc == sdu.header.payload_crc

    def test_untraced_roundtrip_unchanged(self):
        decoded = Sdu.decode(_sdu(payload=b"hello").encode())
        assert decoded.header.trace_id == 0
        assert decoded.header.span_id == 0
        assert bytes(decoded.payload) == b"hello"

    def test_encode_into_matches_encode(self):
        for sdu in (_sdu(), _sdu(trace_id=7, span_id=3)):
            buf = bytearray()
            sdu.encode_into(buf)
            assert bytes(buf) == sdu.encode()

    def test_truncated_extension_raises(self):
        wire = _sdu(trace_id=5).encode()
        # Chop the frame inside the trace extension.
        with pytest.raises(HeaderError):
            SduHeader.decode(wire[: HEADER_SIZE + 4])

    def test_trace_flag_only_set_when_traced(self):
        traced = _sdu(payload=b"x", trace_id=1).encode()
        plain = _sdu(payload=b"x").encode()
        # Flags live in byte 3 of the fixed header ("!HBB...").
        _, _, traced_flags = struct.unpack_from("!HBB", traced)
        _, _, plain_flags = struct.unpack_from("!HBB", plain)
        assert traced_flags & 0x02
        assert not plain_flags & 0x02


class TestSegmentationStamping:
    def test_every_sdu_carries_the_trace(self):
        sdus = segment_message(
            connection_id=1, msg_id=77, payload=b"z" * 16000, sdu_size=4096,
            trace_id=0xABCDEF,
        )
        assert len(sdus) == 4
        assert all(s.header.trace_id == 0xABCDEF for s in sdus)
        # Default span derives from the message id.
        assert all(s.header.span_id == 77 for s in sdus)

    def test_explicit_span_id(self):
        sdus = segment_message(
            connection_id=1, msg_id=77, payload=b"z" * 100, sdu_size=4096,
            trace_id=5, span_id=31,
        )
        assert sdus[0].header.span_id == 31

    def test_untraced_segmentation_stamps_nothing(self):
        sdus = segment_message(
            connection_id=1, msg_id=77, payload=b"z" * 100, sdu_size=4096,
        )
        assert sdus[0].header.trace_id == 0
        assert sdus[0].header.span_id == 0

    def test_reassembly_of_traced_sdus(self):
        payload = bytes(range(256)) * 40  # 10240 B -> 3 SDUs
        sdus = segment_message(
            connection_id=1, msg_id=5, payload=payload, sdu_size=4096,
            trace_id=99,
        )
        reassembler = Reassembler()
        result = None
        for sdu in sdus:
            result = reassembler.add(sdu)
        assert result is not None
        assert bytes(result) == payload
