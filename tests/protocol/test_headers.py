"""SDU framing: header encode/decode and integrity checks."""

import pytest

from repro.protocol.headers import (
    HEADER_SIZE,
    HeaderError,
    Sdu,
    SduHeader,
)


def make_sdu(payload=b"data", seqno=0, total=1, end=True, conn=7, msg=1):
    return Sdu.build(
        connection_id=conn,
        msg_id=msg,
        seqno=seqno,
        total_sdus=total,
        payload=payload,
        end_bit=end,
    )


class TestHeader:
    def test_roundtrip(self):
        header = SduHeader(
            connection_id=0xDEADBEEF,
            msg_id=42,
            seqno=17,
            total_sdus=32,
            payload_len=4096,
            payload_crc=0x12345678,
            end_bit=True,
        )
        assert SduHeader.decode(header.encode()) == header

    def test_fixed_size(self):
        header = make_sdu().header
        assert len(header.encode()) == HEADER_SIZE

    def test_end_bit_both_ways(self):
        for end in (True, False):
            sdu = make_sdu(end=end)
            assert SduHeader.decode(sdu.header.encode()).end_bit is end

    def test_bad_magic_rejected(self):
        data = bytearray(make_sdu().header.encode())
        data[0] ^= 0xFF
        with pytest.raises(HeaderError, match="magic"):
            SduHeader.decode(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(make_sdu().header.encode())
        data[2] = 99  # version byte
        with pytest.raises(HeaderError, match="version"):
            SduHeader.decode(bytes(data))

    def test_short_buffer_rejected(self):
        with pytest.raises(HeaderError, match="short"):
            SduHeader.decode(b"\x00" * (HEADER_SIZE - 1))


class TestSdu:
    def test_frame_roundtrip(self):
        sdu = make_sdu(payload=bytes(range(200)), seqno=3, total=5, end=False)
        again = Sdu.decode(sdu.encode())
        assert again.payload == sdu.payload
        assert again.header == sdu.header

    def test_empty_payload_frame(self):
        sdu = make_sdu(payload=b"")
        again = Sdu.decode(sdu.encode())
        assert again.payload == b""
        assert again.payload_intact()

    def test_wire_size(self):
        sdu = make_sdu(payload=b"x" * 100)
        assert sdu.wire_size == HEADER_SIZE + 100
        assert len(sdu.encode()) == sdu.wire_size

    def test_truncated_payload_rejected(self):
        frame = make_sdu(payload=b"x" * 50).encode()
        with pytest.raises(HeaderError, match="truncated"):
            Sdu.decode(frame[:-10])

    def test_crc_detects_payload_corruption(self):
        sdu = make_sdu(payload=b"sensitive bits")
        assert sdu.payload_intact()
        damaged = sdu.corrupted_copy()
        assert not damaged.payload_intact()

    def test_corrupted_copy_of_empty_payload(self):
        damaged = make_sdu(payload=b"").corrupted_copy()
        assert not damaged.payload_intact()

    def test_decode_after_transit_corruption(self):
        # A single bit flip in the payload survives decode (header ok)
        # but fails the CRC — mirroring AAL5 behaviour.
        frame = bytearray(make_sdu(payload=b"z" * 64).encode())
        frame[-1] ^= 0x10
        sdu = Sdu.decode(bytes(frame))
        assert not sdu.payload_intact()
