"""Effects merging."""

from repro.protocol.effects import Effects
from repro.protocol.pdus import CreditPdu
from repro.protocol.segmentation import segment_message


def test_empty_by_default():
    assert Effects().empty()


def test_not_empty_with_content():
    assert not Effects(deliveries=[b"x"]).empty()
    assert not Effects(completed=[1]).empty()


def test_merge_concatenates_in_order():
    sdus = segment_message(1, 1, b"x" * 8192, 4096)
    left = Effects(transmits=[sdus[0]], completed=[1])
    right = Effects(transmits=[sdus[1]], controls=[CreditPdu(1, 1)], failed=[2])
    left.merge(right)
    assert left.transmits == sdus
    assert left.completed == [1]
    assert left.failed == [2]
    assert len(left.controls) == 1


def test_merge_keeps_earliest_timer():
    left = Effects(timer_at=5.0)
    left.merge(Effects(timer_at=3.0))
    assert left.timer_at == 3.0
    left.merge(Effects(timer_at=9.0))
    assert left.timer_at == 3.0
    left.merge(Effects())
    assert left.timer_at == 3.0


def test_merge_adopts_timer_when_none():
    left = Effects()
    left.merge(Effects(timer_at=1.5))
    assert left.timer_at == 1.5


def test_merge_returns_self_for_chaining():
    effects = Effects()
    assert effects.merge(Effects()) is effects
