"""Control PDU codecs."""

import pytest

from repro.protocol.pdus import (
    AckPdu,
    BarrierPdu,
    ClosePdu,
    ConnectAcceptPdu,
    ConnectRejectPdu,
    ConnectRequestPdu,
    CreditPdu,
    CumAckPdu,
    GroupInfoPdu,
    GroupJoinPdu,
    GroupLeavePdu,
    HeartbeatPdu,
    PduDecodeError,
    decode_control_pdu,
)
from repro.util.bitmap import AckBitmap


def roundtrip(pdu):
    return decode_control_pdu(pdu.encode())


ALL_PDUS = [
    AckPdu(7, 3, AckBitmap(12)),
    CumAckPdu(7, 3, 9),
    CreditPdu(7, 5),
    ConnectRequestPdu(
        connection_id=1,
        src_node="alice",
        dst_node="bob",
        src_data_port=4242,
        flow_control="credit",
        error_control="selective_repeat",
        interface="aci",
        sdu_size=8192,
        initial_credits=4,
        window_size=8,
        rate_pps=1500.0,
    ),
    ConnectAcceptPdu(1, 5555),
    ConnectRejectPdu(1, "no thanks"),
    ClosePdu(1),
    GroupJoinPdu("team", "host:1"),
    GroupLeavePdu("team", "host:1"),
    GroupInfoPdu("team", 3, ("host:1", "host:2")),
    BarrierPdu("team", 4, 1, "host:2"),
    HeartbeatPdu("alice", 17),
]


@pytest.mark.parametrize("pdu", ALL_PDUS, ids=lambda p: type(p).__name__)
def test_every_pdu_roundtrips(pdu):
    assert roundtrip(pdu) == pdu


class TestAckPdu:
    def test_bitmap_content_survives(self):
        bitmap = AckBitmap(20)
        for seqno in (1, 5, 19):
            bitmap.mark_received(seqno)
        again = roundtrip(AckPdu(2, 9, bitmap))
        assert again.bitmap.pending() == bitmap.pending()

    def test_large_bitmap(self):
        again = roundtrip(AckPdu(1, 1, AckBitmap(1000)))
        assert again.bitmap.size == 1000
        assert again.bitmap.pending_count() == 1000


class TestDecodeErrors:
    def test_empty_frame(self):
        with pytest.raises(PduDecodeError, match="empty"):
            decode_control_pdu(b"")

    def test_unknown_type(self):
        with pytest.raises(PduDecodeError, match="unknown"):
            decode_control_pdu(b"\xfe\x00\x00")

    def test_truncated_body(self):
        frame = CreditPdu(1, 2).encode()
        with pytest.raises(PduDecodeError, match="malformed"):
            decode_control_pdu(frame[:3])

    def test_unicode_strings_survive(self):
        pdu = ConnectRejectPdu(1, "разъём occupied — try later")
        assert roundtrip(pdu).reason == pdu.reason


class TestGroupInfo:
    def test_empty_membership(self):
        again = roundtrip(GroupInfoPdu("ghost", 1, ()))
        assert again.members == ()

    def test_many_members(self):
        members = tuple(f"host:{i}" for i in range(50))
        again = roundtrip(GroupInfoPdu("big", 7, members))
        assert again.members == members
