"""Segmentation and reassembly (paper Fig. 5 steps 1 and 4)."""

import pytest

from repro.protocol.segmentation import (
    DEFAULT_SDU_SIZE,
    MAX_SDU_SIZE,
    MIN_SDU_SIZE,
    DuplicateSduError,
    Reassembler,
    segment_message,
    validate_sdu_size,
)


class TestValidateSduSize:
    def test_bounds_accepted(self):
        assert validate_sdu_size(MIN_SDU_SIZE) == MIN_SDU_SIZE
        assert validate_sdu_size(MAX_SDU_SIZE) == MAX_SDU_SIZE

    @pytest.mark.parametrize("bad", [0, 1, MIN_SDU_SIZE - 1, MAX_SDU_SIZE + 1])
    def test_out_of_envelope_rejected(self, bad):
        with pytest.raises(ValueError, match="SDU size"):
            validate_sdu_size(bad)


class TestSegmentation:
    def test_exact_multiple(self):
        sdus = segment_message(1, 1, b"a" * (3 * DEFAULT_SDU_SIZE), DEFAULT_SDU_SIZE)
        assert len(sdus) == 3
        assert all(len(s.payload) == DEFAULT_SDU_SIZE for s in sdus)

    def test_remainder_in_last_sdu(self):
        sdus = segment_message(1, 1, b"a" * (DEFAULT_SDU_SIZE + 100), DEFAULT_SDU_SIZE)
        assert len(sdus) == 2
        assert len(sdus[1].payload) == 100

    def test_small_message_single_sdu(self):
        (sdu,) = segment_message(1, 1, b"tiny", DEFAULT_SDU_SIZE)
        assert sdu.header.end_bit
        assert sdu.header.total_sdus == 1

    def test_empty_message_still_framed(self):
        (sdu,) = segment_message(1, 1, b"", DEFAULT_SDU_SIZE)
        assert sdu.payload == b""
        assert sdu.header.end_bit

    def test_end_bit_only_on_last(self):
        sdus = segment_message(1, 1, b"x" * (4 * DEFAULT_SDU_SIZE), DEFAULT_SDU_SIZE)
        assert [s.header.end_bit for s in sdus] == [False, False, False, True]

    def test_sequence_numbers_ascending(self):
        sdus = segment_message(1, 9, b"x" * (3 * DEFAULT_SDU_SIZE), DEFAULT_SDU_SIZE)
        assert [s.header.seqno for s in sdus] == [0, 1, 2]
        assert all(s.header.msg_id == 9 for s in sdus)


class TestReassembly:
    def _segments(self, payload=None, msg_id=1):
        payload = payload if payload is not None else bytes(range(256)) * 64
        return payload, segment_message(5, msg_id, payload, DEFAULT_SDU_SIZE)

    def test_in_order_reassembly(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        result = None
        for sdu in sdus:
            result = reassembler.add(sdu)
        assert result == payload

    def test_out_of_order_reassembly(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        result = None
        for sdu in reversed(sdus):
            result = reassembler.add(sdu)
        assert result == payload

    def test_incomplete_returns_none(self):
        _, sdus = self._segments()
        reassembler = Reassembler()
        for sdu in sdus[:-1]:
            assert reassembler.add(sdu) is None
        assert reassembler.inflight_count == 1

    def test_duplicates_counted_not_harmful(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        reassembler.add(sdus[0])
        reassembler.add(sdus[0])
        assert reassembler.duplicate_count == 1
        for sdu in sdus[1:]:
            result = reassembler.add(sdu)
        assert result == payload

    def test_corrupted_sdu_left_pending(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        reassembler.add(sdus[0].corrupted_copy())
        assert reassembler.corrupted_count == 1
        state = reassembler.state_of(1)
        assert state.bitmap.is_pending(0)
        # Clean retransmission completes the message.
        for sdu in sdus:
            result = reassembler.add(sdu)
        assert result == payload

    def test_late_retransmit_of_completed_message(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        for sdu in sdus:
            reassembler.add(sdu)
        # The whole message arrives again (lost ACK scenario).
        for sdu in sdus:
            assert reassembler.add(sdu) is None
        assert reassembler.duplicate_count == len(sdus)
        assert reassembler.inflight_count == 0

    def test_interleaved_messages(self):
        payload_a, sdus_a = self._segments(msg_id=1)
        payload_b = b"B" * (2 * DEFAULT_SDU_SIZE)
        sdus_b = segment_message(5, 2, payload_b, DEFAULT_SDU_SIZE)
        reassembler = Reassembler()
        results = {}
        for pair in zip(sdus_a, sdus_b):
            for sdu in pair:
                outcome = reassembler.add(sdu)
                if outcome is not None:
                    results[sdu.header.msg_id] = outcome
        for sdu in sdus_a[len(sdus_b):]:
            outcome = reassembler.add(sdu)
            if outcome is not None:
                results[sdu.header.msg_id] = outcome
        assert results[1] == payload_a
        assert results[2] == payload_b

    def test_inconsistent_total_rejected(self):
        _, sdus = self._segments()
        other = segment_message(5, 1, b"y" * DEFAULT_SDU_SIZE, DEFAULT_SDU_SIZE)
        reassembler = Reassembler()
        reassembler.add(sdus[0])
        with pytest.raises(DuplicateSduError):
            reassembler.add(other[0])

    def test_gc_reclaims_stale_messages(self):
        _, sdus = self._segments()
        reassembler = Reassembler(gc_timeout=1.0)
        reassembler.add(sdus[0], now=0.0)
        assert reassembler.gc(now=0.5) == []
        assert reassembler.gc(now=2.0) == [1]
        assert reassembler.inflight_count == 0

    def test_bitmap_for_completed_is_clear(self):
        payload, sdus = self._segments()
        reassembler = Reassembler()
        for sdu in sdus:
            reassembler.add(sdu)
        bitmap = reassembler.bitmap_for(1, len(sdus))
        assert bitmap.all_received()

    def test_bitmap_for_inflight_shows_missing(self):
        _, sdus = self._segments()
        reassembler = Reassembler()
        reassembler.add(sdus[1])
        bitmap = reassembler.bitmap_for(1, len(sdus))
        assert not bitmap.is_pending(1)
        assert bitmap.is_pending(0)

    def test_bitmap_for_large_message_is_allocation_free(self):
        """Regression for the per-ack bitmap round-trip copy: a 64 MB
        message is 16384 SDUs, and `bitmap_for` used to serialize and
        re-parse a 2 KB bitmap on *every* ACK.  The snapshot path must
        share the live bitmap's immutable backing int (O(1)) and stay
        flat under repeated per-ack queries."""
        import tracemalloc

        total_sdus = (64 << 20) // DEFAULT_SDU_SIZE  # 16384
        reassembler = Reassembler()
        # One arrived SDU of the giant message puts it in flight without
        # allocating 64 MB of payload.
        from dataclasses import replace

        sdu = segment_message(5, 1, b"x" * DEFAULT_SDU_SIZE, DEFAULT_SDU_SIZE)[0]
        sdu = replace(
            sdu, header=replace(sdu.header, total_sdus=total_sdus, end_bit=False)
        )
        reassembler.add(sdu)
        live = reassembler.state_of(1).bitmap
        first = reassembler.bitmap_for(1, total_sdus)
        assert first._bits is live._bits  # shared, not round-tripped
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1000):
            reassembler.bitmap_for(1, total_sdus)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # 1000 per-ack queries on a 16384-bit bitmap: the old code
        # allocated ~2 KB * 2 per call (~4 MB total); snapshots hold
        # steady (the only survivors are transient AckBitmap shells).
        assert after - before < 64 * 1024

    def test_bitmap_for_snapshot_is_isolated_from_later_arrivals(self):
        _, sdus = self._segments()
        reassembler = Reassembler()
        reassembler.add(sdus[0])
        snap = reassembler.bitmap_for(1, len(sdus))
        reassembler.add(sdus[1])
        assert snap.is_pending(1)  # frozen at query time
        assert not reassembler.bitmap_for(1, len(sdus)).is_pending(1)


class TestCompletedMemoryEviction:
    """Never-seen must not alias completed — including after eviction
    from the bounded completed memory (the bug: `bitmap_for` answered
    "fully received" for any message it had no record of, silently
    retiring data at the sender that this side never assembled)."""

    def _complete_one(self, reassembler, msg_id):
        payload = bytes([msg_id % 256]) * 64
        for sdu in segment_message(5, msg_id, payload, DEFAULT_SDU_SIZE):
            reassembler.add(sdu)
        return payload

    def test_bitmap_for_never_seen_is_all_set(self):
        reassembler = Reassembler()
        bitmap = reassembler.bitmap_for(99, 4)
        assert all(bitmap.is_pending(i) for i in range(4))
        assert not bitmap.all_received()

    def test_bitmap_for_evicted_message_is_all_set(self):
        reassembler = Reassembler()
        limit = Reassembler.COMPLETED_MEMORY
        for msg_id in range(1, limit + 2):  # one past the memory bound
            self._complete_one(reassembler, msg_id)
        # msg 1 was evicted; msg 2 survived at the edge of the window.
        evicted = reassembler.bitmap_for(1, 1)
        assert evicted.is_pending(0), (
            "an evicted message must not be reported all-clear"
        )
        survivor = reassembler.bitmap_for(2, 1)
        assert survivor.all_received()

    def test_evicted_retransmit_counts_duplicate_not_phantom(self):
        """A stale retransmit for an evicted message must die as a
        duplicate, not open a phantom reassembly that re-delivers the
        message to the application."""
        reassembler = Reassembler()
        limit = Reassembler.COMPLETED_MEMORY
        for msg_id in range(1, limit + 2):
            self._complete_one(reassembler, msg_id)
        duplicates_before = reassembler.duplicate_count
        stale = segment_message(5, 1, b"\x01" * 64, DEFAULT_SDU_SIZE)
        assert reassembler.add(stale[0]) is None
        assert reassembler.duplicate_count == duplicates_before + 1
        assert reassembler.inflight_count == 0
        assert reassembler.state_of(1) is None
