"""MetricsRegistry: thread safety, histogram math, labels, collectors."""

import json
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    format_snapshot,
)


class TestCounterConcurrency:
    def test_concurrent_increments_from_many_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        per_thread, n_threads = 5000, 6
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == per_thread * n_threads

    def test_concurrent_histogram_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        n_threads, per_thread = 4, 2000
        barrier = threading.Barrier(n_threads)

        def hammer(value):
            barrier.wait()
            for _ in range(per_thread):
                histogram.observe(value)

        threads = [
            threading.Thread(target=hammer, args=(0.5 + i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == n_threads * per_thread
        assert sum(histogram.bucket_counts()) == n_threads * per_thread


class TestInstrumentIdentity:
    def test_same_name_and_labels_share_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x", conn="1")
        b = registry.counter("x", conn="1")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", node="n", conn="1")
        b = registry.gauge("g", conn="1", node="n")
        assert a is b

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x", conn="1")
        b = registry.counter("x", conn="2")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_cardinality(self):
        registry = MetricsRegistry()
        for conn in range(5):
            registry.counter("per_conn", conn=str(conn))
        registry.gauge("other")
        assert registry.cardinality("per_conn") == 5
        assert registry.cardinality() == 6


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        assert counter is NULL_INSTRUMENT
        counter.inc()
        counter.observe(1.0)
        counter.set(3.0)
        assert counter.value == 0.0
        assert registry.cardinality() == 0

    def test_disabled_histogram_is_null(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.histogram("h") is NULL_INSTRUMENT


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram("h", {}, buckets=(1.0, 2.0, 4.0))
        # A value equal to a bound lands in that bound's bucket.
        histogram.observe(1.0)
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.bucket_counts() == [1, 1, 1, 0]

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram("h", {}, buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.bucket_counts() == [0, 0, 1]

    def test_underflow_goes_to_first_bucket(self):
        histogram = Histogram("h", {}, buckets=(1.0, 2.0))
        histogram.observe(0.0001)
        assert histogram.bucket_counts() == [1, 0, 0]

    def test_quantiles_bracket_the_data(self):
        histogram = Histogram("h", {}, buckets=DEFAULT_BUCKETS)
        for i in range(1, 101):
            histogram.observe(i / 1000.0)  # 1ms .. 100ms
        p50 = histogram.quantile(0.5)
        p99 = histogram.quantile(0.99)
        assert 0.001 < p50 < 0.1
        assert p50 < p99 <= 0.1
        assert histogram.quantile(1.0) == pytest.approx(0.1)

    def test_quantile_of_empty_is_zero(self):
        histogram = Histogram("h", {})
        assert histogram.quantile(0.5) == 0.0

    def test_quantile_validates_range(self):
        histogram = Histogram("h", {})
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_summary_statistics_are_exact(self):
        histogram = Histogram("h", {}, buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0


class TestCollectorsAndSnapshot:
    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        calls = []

        def collector(reg):
            calls.append(reg)
            reg.gauge("collected").set(7)

        registry.add_collector(collector)
        snap = registry.snapshot()
        assert calls == [registry]
        (gauge,) = snap["gauges"]
        assert gauge["name"] == "collected"
        assert gauge["value"] == 7

    def test_remove_collector(self):
        registry = MetricsRegistry()
        collector = lambda reg: reg.gauge("x").set(1)  # noqa: E731
        registry.add_collector(collector)
        registry.remove_collector(collector)
        assert registry.snapshot()["gauges"] == []

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c", conn="1").inc(3)
        registry.histogram("h").observe(0.002)
        snap = json.loads(registry.to_json())
        assert snap["counters"][0]["value"] == 3
        assert snap["histograms"][0]["count"] == 1
        # The offline renderer accepts the loaded form too.
        text = format_snapshot(snap)
        assert "c{conn=1}" in text

    def test_dump_and_format_text(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        path = tmp_path / "snap.json"
        registry.dump(str(path))
        assert json.loads(path.read_text())["counters"][0]["value"] == 2
        assert "events 2" in registry.format_text()

    def test_clear_empties_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.add_collector(lambda reg: None)
        registry.clear()
        assert registry.cardinality() == 0
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


class TestConfigurableBuckets:
    def test_override_beats_call_site_buckets(self):
        registry = MetricsRegistry()
        registry.configure_buckets("lat", (0.001, 0.01, 0.1))
        hist = registry.histogram("lat", buckets=DEFAULT_BUCKETS, conn="1")
        assert hist.buckets == (0.001, 0.01, 0.1)
        # Every label set of the metric shares the override.
        assert registry.histogram("lat", conn="2").buckets == (0.001, 0.01, 0.1)
        # Other metrics keep the call-site default.
        assert registry.histogram("other").buckets == DEFAULT_BUCKETS

    def test_override_is_sorted_and_validated(self):
        registry = MetricsRegistry()
        registry.configure_buckets("lat", [0.1, 0.001, 0.01])
        assert registry.histogram("lat").buckets == (0.001, 0.01, 0.1)
        with pytest.raises(ValueError):
            registry.configure_buckets("lat", [])

    def test_existing_instruments_keep_their_bounds(self):
        registry = MetricsRegistry()
        before = registry.histogram("lat")
        registry.configure_buckets("lat", (1.0, 2.0))
        assert registry.histogram("lat") is before
        assert before.buckets == DEFAULT_BUCKETS

    def test_clear_forgets_overrides(self):
        registry = MetricsRegistry()
        registry.configure_buckets("lat", (1.0,))
        registry.clear()
        assert registry.histogram("lat").buckets == DEFAULT_BUCKETS

    def test_latency_buckets_are_microsecond_resolution(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        # Sub-millisecond stages land in distinct buckets (DEFAULT_BUCKETS
        # lumps everything under 1 ms together).
        sub_ms = [b for b in LATENCY_BUCKETS if b < 1e-3]
        assert len(sub_ms) >= 8
        hist = Histogram("h", {}, LATENCY_BUCKETS)
        hist.observe(3e-6)
        assert 1e-6 < hist.quantile(0.5) < 1e-5
