"""Trace merger: offset recovery, rebasing, Chrome export.

Synthetic two-node event streams with a *known* clock skew let the
tests assert the merger recovers it — from heartbeat clock samples,
from data-trace midpoints when no clock samples exist, and through
multi-hop offset propagation.
"""

import json

import pytest

from repro.obs.telemetry import (
    estimate_offsets,
    load_jsonl_events,
    merge_traces,
    trace_spans,
    write_merged_chrome,
)

#: bob's clock runs 5 seconds ahead of alice's in every scenario.
SKEW = 5.0


def _clock_event(ts, peer, offset, rtt):
    return {
        "ts": ts, "category": "clock", "name": "offset",
        "peer": peer, "offset": offset, "rtt": rtt,
    }


def _data_event(ts, name, trace, msg_id=1):
    return {
        "ts": ts, "category": "data", "name": name,
        "trace": trace, "msg_id": msg_id,
    }


class TestOffsetEstimation:
    def test_clock_edges_recover_known_skew(self):
        alice = [
            _clock_event(1.0, "bob", SKEW + 0.004, rtt=0.010),
            _clock_event(2.0, "bob", SKEW + 0.001, rtt=0.002),  # min RTT
            _clock_event(3.0, "bob", SKEW + 0.009, rtt=0.020),
        ]
        offsets = estimate_offsets({"alice": alice, "bob": []},
                                   reference="alice")
        assert offsets["alice"] == 0.0
        assert offsets["bob"] == pytest.approx(SKEW, abs=0.01)

    def test_midpoint_fallback_without_clock_events(self):
        # alice sends at 10.0, completes (ack) at 10.2 -> midpoint 10.1;
        # bob delivers at local 15.1 == alice 10.1 + SKEW.
        alice = [
            _data_event(10.0, "send", trace=7),
            _data_event(10.2, "complete", trace=7),
        ]
        bob = [_data_event(10.1 + SKEW, "deliver", trace=7)]
        offsets = estimate_offsets({"alice": alice, "bob": bob},
                                   reference="alice")
        assert offsets["bob"] == pytest.approx(SKEW, abs=1e-9)

    def test_clock_edge_overrides_midpoint(self):
        # Midpoint says 4.0, clock sample says SKEW — clock must win.
        alice = [
            _data_event(10.0, "send", trace=7),
            _data_event(10.2, "complete", trace=7),
            _clock_event(11.0, "bob", SKEW, rtt=0.001),
        ]
        bob = [_data_event(14.1, "deliver", trace=7)]
        offsets = estimate_offsets({"alice": alice, "bob": bob},
                                   reference="alice")
        assert offsets["bob"] == pytest.approx(SKEW)

    def test_offsets_propagate_across_hops(self):
        # alice knows bob (+5), bob knows carol (+2): carol = +7 even
        # though alice and carol never exchanged anything.
        alice = [_clock_event(1.0, "bob", 5.0, rtt=0.001)]
        bob = [_clock_event(1.0, "carol", 2.0, rtt=0.001)]
        offsets = estimate_offsets(
            {"alice": alice, "bob": bob, "carol": []}, reference="alice"
        )
        assert offsets["carol"] == pytest.approx(7.0)

    def test_unreachable_node_defaults_to_zero(self):
        offsets = estimate_offsets(
            {"alice": [_data_event(1.0, "send", trace=1)], "mars": []},
            reference="alice",
        )
        assert offsets["mars"] == 0.0

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError):
            estimate_offsets({"alice": []}, reference="nobody")


class TestMerge:
    def _merged(self):
        alice = [
            _clock_event(0.5, "bob", SKEW, rtt=0.001),
            _data_event(1.0, "send", trace=9),
            _data_event(1.4, "complete", trace=9),
        ]
        bob = [_data_event(1.2 + SKEW, "deliver", trace=9)]
        return merge_traces({"alice": alice, "bob": bob},
                            reference="alice")

    def test_events_land_on_one_timeline(self):
        merged = self._merged()
        by_name = {e["name"]: e for e in merged if e["category"] == "data"}
        # After rebasing, deliver sits between send and complete.
        assert by_name["send"]["ts"] < by_name["deliver"]["ts"]
        assert by_name["deliver"]["ts"] < by_name["complete"]["ts"]
        assert by_name["deliver"]["ts_local"] == pytest.approx(1.2 + SKEW)
        assert by_name["deliver"]["node"] == "bob"

    def test_merged_is_time_sorted(self):
        merged = self._merged()
        stamps = [e["ts"] for e in merged]
        assert stamps == sorted(stamps)

    def test_trace_spans_selects_one_trace(self):
        merged = self._merged()
        span = trace_spans(merged, 9)
        assert [e["name"] for e in span] == ["send", "deliver", "complete"]
        assert {e["node"] for e in span} == {"alice", "bob"}

    def test_chrome_export(self, tmp_path):
        merged = self._merged()
        path = str(tmp_path / "merged.json")
        write_merged_chrome(merged, path)
        doc = json.load(open(path))
        records = doc["traceEvents"]
        names = {r["name"] for r in records}
        # One process lane per node, named via metadata records.
        lanes = {
            r["args"]["name"] for r in records if r["ph"] == "M"
        }
        assert lanes == {"alice", "bob"}
        # The cross-node trace renders as an async begin/end pair.
        assert "trace 0x9" in names
        phases = [r["ph"] for r in records if r["name"] == "trace 0x9"]
        assert sorted(phases) == ["b", "e"]
        # Instants from both nodes appear with distinct pids.
        pids = {
            r["pid"] for r in records if r["ph"] == "i"
        }
        assert len(pids) == 2


class TestJsonlLoading:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(_data_event(1.0, "send", trace=1)) + "\n"
            + '{"ts": 2.0, "category": "da'  # crash mid-write
        )
        events = load_jsonl_events(str(path))
        assert len(events) == 1
        assert events[0]["name"] == "send"

    def test_blank_lines_and_non_events_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n[1,2]\n{"no_ts": true}\n')
        assert load_jsonl_events(str(path)) == []
