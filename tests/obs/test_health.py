"""Health detectors and the stall watchdog.

Covers the pure classifiers over synthetic samples, the watchdog's
once-per-anomaly dump discipline against a stub node, and the two live
anomaly drills the health subsystem exists for: a loopback connection
driven into credit starvation, and a lossy simulated link driven into a
retransmit storm.
"""

import time

import pytest

from repro.core import ConnectionConfig
from repro.obs.health import (
    DEAD,
    DEGRADED,
    OK,
    STALLED,
    Diagnosis,
    HealthThresholds,
    Watchdog,
    classify,
    classify_kernel,
    sample_connection,
    sample_sim_endpoint,
    worst,
)
from repro.obs.recorder import FlightRecorder
from repro.simnet.kernel import Simulator
from repro.simnet.link import Link
from repro.simnet.ncs_sim import connect_pair


def make_sample(now=0.0, **overrides):
    sample = {
        "sampled_at": now,
        "conn_id": 1,
        "peer": "b",
        "closed": False,
        "peer_closed": False,
        "queued": 0,
        "fc_algorithm": "credit",
        "fc_stalled_for": 0.0,
        "fc_stall_seconds": 0.0,
        "fc_recoveries": 0,
        "fc_grants": 0,
        "fc_released": 0,
        "retransmits": 0,
        "inflight": 0,
        "deliveries": 0,
        "completions": 0,
        "recv_waiters": 0,
        "recv_blocked_for": 0.0,
    }
    sample.update(overrides)
    return sample


class TestWorst:
    def test_severity_ordering(self):
        assert worst([OK, DEGRADED]) == DEGRADED
        assert worst([DEGRADED, STALLED, OK]) == STALLED
        assert worst([STALLED, DEAD]) == DEAD
        assert worst([]) == OK

    def test_unknown_states_do_not_escalate(self):
        assert worst(["???", OK]) == OK


class TestClassify:
    def test_quiet_connection_is_ok(self):
        assert classify(make_sample()).state == OK

    def test_progressing_connection_is_ok(self):
        prev = make_sample(now=0.0, deliveries=5, fc_grants=5)
        cur = make_sample(now=1.0, deliveries=9, fc_grants=9)
        assert classify(cur, prev).state == OK

    def test_instantaneous_starvation_needs_no_previous_sample(self):
        sample = make_sample(queued=5, fc_stalled_for=1.5)
        diag = classify(sample)
        assert diag.state == STALLED
        assert any("stalled" in r for r in diag.reasons)

    def test_short_stall_with_queue_is_not_stalled(self):
        assert classify(make_sample(queued=5, fc_stalled_for=0.3)).state == OK

    def test_windowed_starvation_recoveries_without_grants(self):
        prev = make_sample(now=0.0, queued=10, fc_stall_seconds=0.2)
        cur = make_sample(
            now=1.0, queued=10, fc_stall_seconds=0.9, fc_recoveries=3
        )
        diag = classify(cur, prev)
        assert diag.state == STALLED
        assert any("credit starvation" in r for r in diag.reasons)

    def test_grants_arriving_downgrades_starvation_to_degraded(self):
        # Stalled half the window but credits and deliveries keep coming:
        # pathological, not wedged.
        prev = make_sample(now=0.0)
        cur = make_sample(
            now=1.0, fc_stall_seconds=0.5, fc_grants=4, deliveries=2
        )
        diag = classify(cur, prev)
        assert diag.state == DEGRADED
        assert any("window" in r for r in diag.reasons)

    def test_retransmit_storm_without_progress_is_stalled(self):
        prev = make_sample(now=0.0, retransmits=2)
        cur = make_sample(now=1.0, retransmits=14)
        diag = classify(cur, prev)
        assert diag.state == STALLED
        assert any("retransmit storm" in r for r in diag.reasons)

    def test_retransmit_storm_with_progress_is_degraded(self):
        prev = make_sample(now=0.0)
        cur = make_sample(now=1.0, retransmits=12, deliveries=3)
        diag = classify(cur, prev)
        assert diag.state == DEGRADED
        assert any("ratio" in r for r in diag.reasons)

    def test_few_retransmits_are_ignored(self):
        prev = make_sample(now=0.0)
        cur = make_sample(now=1.0, retransmits=5)
        assert classify(cur, prev).state == OK

    def test_healthy_retransmit_ratio_is_ok(self):
        prev = make_sample(now=0.0)
        cur = make_sample(now=1.0, retransmits=10, deliveries=20)
        assert classify(cur, prev).state == OK

    def test_blocked_receive_thread_is_degraded(self):
        sample = make_sample(recv_waiters=2, recv_blocked_for=6.0)
        diag = classify(sample)
        assert diag.state == DEGRADED
        assert any("blocked" in r for r in diag.reasons)

    def test_briefly_blocked_receive_is_ok(self):
        assert classify(make_sample(recv_waiters=1, recv_blocked_for=1.0)).state == OK

    def test_closed_connection_is_dead(self):
        assert classify(make_sample(closed=True)).state == DEAD

    def test_peer_closed_is_dead_and_short_circuits(self):
        sample = make_sample(peer_closed=True, queued=9, fc_stalled_for=9.0)
        diag = classify(sample)
        assert diag.state == DEAD
        assert len(diag.reasons) == 1

    def test_custom_thresholds(self):
        strict = HealthThresholds(stall_after_s=0.1)
        sample = make_sample(queued=1, fc_stalled_for=0.2)
        assert classify(sample, thresholds=strict).state == STALLED
        assert classify(sample).state == OK


class TestClassifyKernel:
    def test_idle_kernel_is_ok(self):
        assert classify_kernel({"pending_events": 0}).state == OK

    def test_pending_events_with_no_execution_is_stalled(self):
        prev = {"events_executed": 100, "pending_events": 3}
        cur = {"events_executed": 100, "pending_events": 3}
        diag = classify_kernel(cur, prev)
        assert diag.state == STALLED

    def test_executing_kernel_is_ok(self):
        prev = {"events_executed": 100, "pending_events": 3}
        cur = {"events_executed": 150, "pending_events": 3}
        assert classify_kernel(cur, prev).state == OK

    def test_slow_callbacks_are_degraded(self):
        prev = {"events_executed": 1, "slow_callbacks": 0}
        cur = {"events_executed": 2, "slow_callbacks": 2}
        diag = classify_kernel(cur, prev)
        assert diag.state == DEGRADED

    def test_instantaneous_callback_lag_is_degraded(self):
        diag = classify_kernel({"callback_lag_max_s": 0.2})
        assert diag.state == DEGRADED

    def test_live_simulator_health_hook(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        prev = sim.stats()
        sim.run()
        assert sim.health(prev).state == OK


class TestDiagnosis:
    def test_escalate_keeps_worst_state_and_all_reasons(self):
        diag = Diagnosis()
        diag.escalate(STALLED, "wedged")
        diag.escalate(DEGRADED, "also slow")
        assert diag.state == STALLED
        assert diag.reasons == ["wedged", "also slow"]
        assert diag.to_dict() == {
            "state": STALLED,
            "reasons": ["wedged", "also slow"],
        }


# ----------------------------------------------------------------------
# Watchdog discipline against a stub node (fully deterministic)
# ----------------------------------------------------------------------


class StubFc:
    name = "credit"

    def __init__(self):
        self.q = 0
        self.stall = 0.0
        self.stall_seconds = 0.0
        self.resyncs = 0
        self.stall_recoveries = 0
        self.total_granted = 0
        self.released_sdus = 0

    def queued(self):
        return self.q

    def stalled_for(self, now):
        return self.stall


class StubEc:
    retransmitted_sdus = 0

    def inflight_count(self):
        return 0


class StubConn:
    def __init__(self, conn_id=1):
        self.conn_id = conn_id
        self.peer_name = "peer"
        self.closed = False
        self.peer_gone = False
        self.fc_sender = StubFc()
        self.ec_sender = StubEc()
        self.messages_received = 0
        self.messages_completed = 0
        self.recv_waiters = 0

    def recv_blocked_for(self, now):
        return 0.0


class StubClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class StubPkg:
    def spawn(self, fn, name=None):
        return None  # never actually runs the loop; tests drive sampling

    def sleep(self, seconds):
        pass


class StubNode:
    name = "stub"
    _closed = False

    def __init__(self):
        self.clock = StubClock()
        self.recorder = FlightRecorder(name="stub")
        self.pkg = StubPkg()
        self.conns = [StubConn()]

    def connections(self):
        return list(self.conns)


class TestWatchdogDiscipline:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(StubNode(), period=0.0)

    def test_auto_dump_fires_exactly_once_per_anomaly(self):
        node = StubNode()
        conn = node.conns[0]
        wd = Watchdog(node, period=1.0)
        wd.stop()

        wd.sample_once()  # healthy baseline
        assert wd.diagnosis(conn.conn_id).state == OK
        assert node.recorder.auto_dumps == 0

        # Anomaly begins: instantaneous starvation on every sample.
        conn.fc_sender.q = 5
        conn.fc_sender.stall = 2.0
        wd.sample_once()
        assert wd.diagnosis(conn.conn_id).state == STALLED
        assert node.recorder.auto_dumps == 1

        # The same anomaly persisting does NOT dump again.
        wd.sample_once()
        wd.sample_once()
        assert node.recorder.auto_dumps == 1

        # Recovery re-arms the dump trigger...
        conn.fc_sender.q = 0
        conn.fc_sender.stall = 0.0
        wd.sample_once()
        assert wd.diagnosis(conn.conn_id).state == OK
        assert node.recorder.auto_dumps == 1

        # ...so the next distinct anomaly dumps once more.
        conn.fc_sender.q = 3
        conn.fc_sender.stall = 1.5
        wd.sample_once()
        assert node.recorder.auto_dumps == 2

    def test_transition_records_land_in_the_ring(self):
        node = StubNode()
        conn = node.conns[0]
        wd = Watchdog(node, period=1.0)
        wd.stop()
        wd.sample_once()
        conn.fc_sender.q = 5
        conn.fc_sender.stall = 2.0
        wd.sample_once()
        transitions = [
            e
            for e in node.recorder.snapshot()
            if e["category"] == "health" and e["name"] == "transition"
        ]
        assert transitions
        assert transitions[-1]["frm"] == OK
        assert transitions[-1]["to"] == STALLED

    def test_vanished_connections_are_pruned(self):
        node = StubNode()
        conn = node.conns[0]
        wd = Watchdog(node, period=1.0)
        wd.stop()
        wd.sample_once()
        assert wd.diagnosis(conn.conn_id) is not None
        node.conns = []
        wd.sample_once()
        assert wd.diagnosis(conn.conn_id) is None
        assert wd.report()["connections"] == []

    def test_report_aggregates_worst_state(self):
        node = StubNode()
        node.conns = [StubConn(1), StubConn(2)]
        node.conns[1].fc_sender.q = 4
        node.conns[1].fc_sender.stall = 3.0
        wd = Watchdog(node, period=0.5)
        wd.stop()
        wd.sample_once()
        report = wd.report()
        assert report["state"] == STALLED
        assert len(report["connections"]) == 2
        states = {c["conn_id"]: c["state"] for c in report["connections"]}
        assert states == {1: OK, 2: STALLED}
        assert report["samples_taken"] == 1
        assert report["period"] == 0.5


# ----------------------------------------------------------------------
# Live anomaly drills (the ISSUE's two scripted failures)
# ----------------------------------------------------------------------


class TestLiveCreditStarvation:
    def test_starved_loopback_connection_stalls_within_two_periods(
        self, node_factory
    ):
        """Drop every data frame under credit flow control: credits never
        come back, the send queue wedges, and the watchdog must classify
        the connection STALLED by its second sampling pass — with exactly
        one flight-recorder dump that contains the stalling connection's
        last events."""
        client = node_factory("starve-a")
        server = node_factory("starve-b")
        conn = client.connect(
            server.address,
            ConnectionConfig(
                interface="sci",
                flow_control="credit",
                error_control="none",
                initial_credits=2,
                loss_rate=1.0,
                # Two-phase resync rides the lossless control link and
                # would rescue the pool; push it out of reach so the
                # sender genuinely wedges.
                fc_resync_timeout=3600.0,
            ),
            peer_name="starve-b",
        )
        assert server.accept(timeout=5.0) is not None
        # Enough messages queued that the stall is unambiguous.
        for _ in range(40):
            conn.send(bytes(256))

        # Long period + stop(): the watchdog thread never samples on its
        # own; the test drives both "periods" explicitly.
        wd = Watchdog(client, period=30.0)
        wd.stop()
        wd.sample_once()  # period 1: baseline
        time.sleep(1.2)  # > stall_after_s; several resyncs accumulate
        wd.sample_once()  # period 2: starvation must be visible

        diag = wd.diagnosis(conn.conn_id)
        assert diag is not None and diag.state == STALLED
        assert any("starvation" in r or "stalled" in r for r in diag.reasons)
        assert client.recorder.auto_dumps == 1

        # The anomaly persists -> still exactly one dump.
        time.sleep(0.6)
        wd.sample_once()
        assert wd.diagnosis(conn.conn_id).state == STALLED
        assert client.recorder.auto_dumps == 1

        dump = client.recorder.last_dump()
        assert dump["detail"]["conn_id"] == conn.conn_id
        assert dump["detail"]["state"] == STALLED
        assert any(
            e.get("conn") == conn.conn_id and e["name"] == "send"
            for e in dump["events"]
        ), "dump must contain the stalling connection's recent sends"

    def test_node_health_reflects_watchdog_report(self, node_factory):
        node = node_factory("health-on", watchdog=True, watchdog_period=30.0)
        peer = node_factory("health-peer")
        node.connect(peer.address, ConnectionConfig(), peer_name="health-peer")
        assert peer.accept(timeout=5.0) is not None
        node.watchdog.stop()
        node.watchdog.sample_once()
        report = node.health()
        assert report["node"] == "health-on"
        assert report["state"] == OK
        assert report["samples_taken"] >= 1
        assert report["recorder_dumps"] == 0

    def test_node_health_on_demand_without_watchdog(self, node_factory):
        node = node_factory("health-off")
        peer = node_factory("health-off-peer")
        node.connect(
            peer.address, ConnectionConfig(), peer_name="health-off-peer"
        )
        assert peer.accept(timeout=5.0) is not None
        assert node.watchdog is None
        report = node.health()
        assert report["state"] == OK
        assert len(report["connections"]) == 1


class TestLiveRetransmitStorm:
    def test_lossy_simnet_link_classifies_as_storm(self):
        """A 90%-lossy data link under selective repeat: the sender
        resends the same SDUs over and over.  The windowed detector must
        flag the endpoint DEGRADED or STALLED with a storm reason."""
        sim = Simulator()
        a, _b = connect_pair(
            sim,
            Link(sim, loss_rate=0.9, seed=7),
            Link(sim, loss_rate=0.9, seed=8),
            error_control="selective_repeat",
            flow_control="none",
            retransmit_timeout=0.01,
            max_retries=200,
        )
        prev = sample_sim_endpoint(a, sim.now)
        for _ in range(4):
            a.send(bytes(2048))
        sim.run(until=0.5)
        sample = sample_sim_endpoint(a, sim.now)
        assert (
            sample["retransmits"] - prev["retransmits"] >= 8
        ), "the lossy link must actually provoke a storm"
        diag = classify(sample, prev)
        assert diag.state in (DEGRADED, STALLED)
        assert any("retransmit storm" in r for r in diag.reasons)

    def test_clean_simnet_link_stays_ok(self):
        sim = Simulator()
        a, _b = connect_pair(
            sim,
            Link(sim),
            Link(sim),
            error_control="selective_repeat",
            flow_control="credit",
        )
        prev = sample_sim_endpoint(a, sim.now)
        events = [a.send(bytes(2048)) for _ in range(4)]
        sim.run(until=1.0)
        assert all(e.triggered for e in events)
        diag = classify(sample_sim_endpoint(a, sim.now), prev)
        assert diag.state == OK


class TestSampleShapes:
    def test_sample_connection_matches_detector_keys(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(bytes(128), wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == bytes(128)
        sample = sample_connection(conn, now=0.0)
        assert set(make_sample()) <= set(sample)
        assert sample["conn_id"] == conn.conn_id
        assert sample["completions"] == 1

    def test_connection_health_convenience(self, connected_pair):
        conn, _peer = connected_pair()
        diag = conn.health()
        assert diag.state == OK
