"""One epoch for every observability stamp (the time-source audit).

Cross-correlating tracer events, telemetry ``sent_at`` stamps, and
flight-recorder entries only works if they all share one clock epoch.
``repro.util.clock.MonotonicClock`` (perf_counter) is that epoch; wall
clock (``time.time``) is allowed only as an explicitly-labelled
companion stamp for anchoring on-disk artifacts to external logs.
"""

import pathlib
import re
import time

from repro.obs.recorder import FlightRecorder
from repro.util.clock import MonotonicClock

OBS_DIR = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "obs"

#: The only places wall clock may appear inside repro.obs: explicitly
#: wall-labelled companion stamps.
WALL_CLOCK_ALLOWED = {"recorder.py"}


class TestEpochConsistency:
    def test_default_recorder_shares_the_node_clock_epoch(self):
        """A default-constructed recorder must stamp on the same epoch
        as MonotonicClock — not time.monotonic, not time.time."""
        recorder = FlightRecorder(name="epoch")
        clock = MonotonicClock()
        recorder.record("data", "send", msg=1)
        entry_ts = recorder.snapshot()[0]["ts"]
        # Same epoch <=> the delta is tiny; a time.time() regression
        # would make it the Unix epoch (~1.7e9 seconds off), and a
        # divergent monotonic epoch is typically boot-relative.
        assert abs(entry_ts - clock.now()) < 5.0

    def test_dump_carries_wall_clock_companion(self):
        recorder = FlightRecorder(name="epoch")
        recorder.record("x", "y")
        record = recorder.dump(reason="test")
        # Monotonic stamp for in-process ordering...
        assert abs(record["dumped_at"] - time.perf_counter()) < 5.0
        # ...plus the wall stamp that anchors the artifact externally.
        assert abs(record["dumped_at_wall"] - time.time()) < 5.0


class TestStaticAudit:
    def test_no_bare_wall_clock_in_obs(self):
        """``time.time()`` must not creep into repro.obs hot paths."""
        offenders = []
        for path in sorted(OBS_DIR.rglob("*.py")):
            if path.name in WALL_CLOCK_ALLOWED:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if re.search(r"\btime\.time\(\)", line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, (
            "wall clock in obs hot paths (use the node clock / "
            "perf_counter, or add an explicit *_wall companion): "
            + "; ".join(offenders)
        )

    def test_no_divergent_monotonic_in_obs(self):
        """time.monotonic() and perf_counter have different epochs on
        some platforms; obs code must standardize on perf_counter (via
        the node clock) so stamps stay comparable."""
        offenders = []
        for path in sorted(OBS_DIR.rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if re.search(r"\btime\.monotonic\(\)", line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, (
            "time.monotonic() in repro.obs — stamp with the node clock "
            "(perf_counter epoch) instead: " + "; ".join(offenders)
        )
