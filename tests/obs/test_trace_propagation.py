"""Trace context crosses the data/control plane split.

The sender's data plane stamps each transfer with a ``msg_id``; the
acknowledgement that comes back on the *control* plane carries the same
id, so one transfer can be followed across both planes of both nodes
from the event stream alone.
"""

import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig


@pytest.fixture
def traced_pair():
    node_a = Node(NodeConfig(name="trace-a", trace=True))
    node_b = Node(NodeConfig(name="trace-b", trace=True))
    conn = node_a.connect(
        node_b.address,
        ConnectionConfig(interface="sci"),  # credit + selective repeat
        peer_name="trace-b",
    )
    peer = node_b.accept(timeout=5.0)
    yield node_a, node_b, conn, peer
    node_a.close()
    node_b.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_msg_id_appears_in_both_planes(traced_pair):
    node_a, node_b, conn, peer = traced_pair

    conn.send(b"ping")
    assert peer.recv(timeout=5.0) == b"ping"
    peer.send(b"pong")
    assert conn.recv(timeout=5.0) == b"pong"

    # Client side: the data-plane send and the control-plane ACK that
    # selective repeat sends back must share a msg_id.
    sends = node_a.tracer.select("data", "send")
    assert sends, "client recorded no data-plane send events"
    sent_ids = {e.detail["msg_id"] for e in sends}

    assert _wait_for(
        lambda: any(
            e.detail.get("msg_id") in sent_ids
            for e in node_a.tracer.select("control", "ack")
        )
    ), "no control-plane ACK carried a client msg_id"

    # Server side: the delivery event and the outgoing ACK control PDU
    # reference the same transfer.
    deliveries = node_b.tracer.select("data", "deliver")
    assert deliveries, "server recorded no delivery events"
    delivered_ids = {e.detail["msg_id"] for e in deliveries}
    acked_ids = {
        e.detail.get("msg_id")
        for e in node_b.tracer.select("control", "send")
        if e.detail.get("msg_id") is not None
    }
    assert delivered_ids & acked_ids, (
        "server ACKs do not reference delivered msg_ids: "
        f"{delivered_ids} vs {acked_ids}"
    )


def test_trace_disabled_by_default(monkeypatch):
    monkeypatch.delenv("NCS_TRACE", raising=False)
    node = Node(NodeConfig(name="trace-off"))
    try:
        assert not node.tracer.enabled
        assert len(node.tracer) == 0
    finally:
        node.close()


def test_trace_env_var_enables_tracing(monkeypatch, tmp_path):
    monkeypatch.setenv("NCS_TRACE", "1")
    monkeypatch.setenv("NCS_TRACE_FILE", str(tmp_path / "env_trace.jsonl"))
    node = Node(NodeConfig(name="trace-env"))
    try:
        assert node.tracer.enabled
    finally:
        node.close()
