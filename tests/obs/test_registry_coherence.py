"""MetricsRegistry.snapshot() coherence under concurrent updates.

A histogram rendered through four separate lock acquisitions (summary,
p50, p99, bucket counts) can interleave with concurrent ``observe()``
calls and publish a snapshot whose bucket sum disagrees with its count.
``Histogram.render()`` captures everything under one lock; these tests
hammer the instruments from writer threads while snapshotting and
assert every published view is internally consistent.
"""

import threading

from repro.obs.registry import Histogram, MetricsRegistry


class TestHistogramRender:
    def test_render_matches_individual_accessors_when_quiescent(self):
        hist = Histogram("lat", {}, buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        rendered = hist.render()
        assert rendered["count"] == hist.count == 4
        assert rendered["mean"] == hist.summary().mean
        assert rendered["p50"] == hist.quantile(0.5)
        assert rendered["p99"] == hist.quantile(0.99)
        assert sum(rendered["buckets"].values()) == 4
        assert list(rendered["buckets"]) == ["1.0", "10.0", "100.0", "+inf"]

    def test_empty_histogram_renders(self):
        rendered = Histogram("lat", {}, buckets=(1.0,)).render()
        assert rendered["count"] == 0
        assert rendered["p50"] == 0.0
        assert sum(rendered["buckets"].values()) == 0


class TestSnapshotUnderConcurrency:
    def test_bucket_sum_always_equals_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.25, 0.5, 0.75))
        counter = registry.counter("ops")
        stop = threading.Event()

        def hammer(seed):
            value = seed
            while not stop.is_set():
                value = (value * 1103515245 + 12345) % 1000
                hist.observe(value / 1000.0)
                counter.inc()

        writers = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in (1, 2, 3, 4)
        ]
        for writer in writers:
            writer.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                for rendered in snap["histograms"]:
                    total = sum(rendered["buckets"].values())
                    assert total == rendered["count"], (
                        f"incoherent histogram snapshot: bucket sum "
                        f"{total} != count {rendered['count']}"
                    )
                    if rendered["count"]:
                        assert rendered["min"] <= rendered["mean"]
                        assert rendered["mean"] <= rendered["max"]
                        assert rendered["p50"] <= rendered["p99"]
        finally:
            stop.set()
            for writer in writers:
                writer.join(timeout=5.0)

    def test_quantile_still_validates_range(self):
        hist = Histogram("lat", {}, buckets=(1.0,))
        hist.observe(0.5)
        try:
            hist.quantile(1.5)
        except ValueError:
            pass
        else:
            raise AssertionError("quantile(1.5) should raise ValueError")
