"""The telescoping stage-sum invariant, promoted to tier-1.

The Table 1 breakdown (and the X-ray built on the same stamp idiom) is
only trustworthy if the per-stage means sum to the measured total —
adjacent stages share boundary stamps, so the sums telescope by
construction and any drift means a stamp went missing or a stage pair
overlaps.  This used to live in ``benchmarks/bench_table1.py`` where it
only ran in the bench CI job; it now gates every pytest run with an
explicit tolerance constant.
"""

import pytest

from repro.obs.profiler import TELESCOPE_TOLERANCE, profile_echo


@pytest.fixture(scope="module")
def threaded_profiler():
    return profile_echo(iterations=80, mode="threaded", interface="sci")


@pytest.fixture(scope="module")
def bypass_profiler():
    return profile_echo(iterations=80, mode="bypass", interface="sci")


def _assert_telescopes(profiler, direction):
    stage_sum, total = profiler.consistency(direction)
    assert total > 0, f"no {direction} samples recorded"
    assert stage_sum == pytest.approx(total, rel=TELESCOPE_TOLERANCE), (
        f"{direction} stages sum to {stage_sum:.2f} us but the measured "
        f"total is {total:.2f} us (> {TELESCOPE_TOLERANCE:.0%} apart) — "
        f"a stamp is missing or two stages overlap"
    )


def test_threaded_send_stages_sum_to_total(threaded_profiler):
    _assert_telescopes(threaded_profiler, "send")


def test_threaded_recv_stages_sum_to_total(threaded_profiler):
    _assert_telescopes(threaded_profiler, "recv")


def test_bypass_send_stages_sum_to_total(bypass_profiler):
    _assert_telescopes(bypass_profiler, "send")


def test_tolerance_is_explicit():
    """The tolerance is a named constant, not a magic number per test."""
    assert 0 < TELESCOPE_TOLERANCE <= 0.25
