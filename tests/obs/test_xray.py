"""Latency X-ray: sampling determinism, telescoping, export surfaces.

Covers the ISSUE-7 acceptance bars directly: deterministic 1-in-N
sampling under a seeded ``NCS_XRAY``, stage sums telescoping to the
measured end-to-end latency on both the in-process (hpi) and simulated
(sci) interfaces, a near-free disabled path (no X-ray allocations on
unsampled sends), and per-connection p99 visibility through the
telemetry snapshot and the Prometheus exposition.
"""

import json
import time
import tracemalloc

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig
from repro.obs.profiler import TELESCOPE_TOLERANCE
from repro.obs.registry import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.xray import (
    STAGE_ORDER,
    XRAY_SPAN_MARK,
    XrayConfig,
    XrayRecorder,
    dominance_report,
    join_spans,
    load_spans,
)


class TestXrayConfigParsing:
    @pytest.mark.parametrize("raw", ["", "off", "none", "0", "false",
                                     "disabled", "  OFF  "])
    def test_off_spellings(self, raw):
        assert XrayConfig.parse(raw) is None

    def test_none_is_off(self):
        assert XrayConfig.parse(None) is None

    @pytest.mark.parametrize("raw,period", [("64", 64), ("1/64", 64),
                                            ("1", 1), ("1/1", 1),
                                            (" 1/8 ", 8)])
    def test_period_forms(self, raw, period):
        cfg = XrayConfig.parse(raw)
        assert cfg.period == period
        assert cfg.seed == 0

    def test_seed_clause(self):
        cfg = XrayConfig.parse("1/64;seed=7")
        assert (cfg.period, cfg.seed) == (64, 7)

    @pytest.mark.parametrize("raw", ["banana", "1/banana", "1/64;tilt=3",
                                     "1/64;seed=", "1/64;seed=x", "-4"])
    def test_bad_specs_raise(self, raw):
        with pytest.raises(ValueError):
            XrayConfig.parse(raw)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            XrayConfig(period=0)
        with pytest.raises(ValueError):
            XrayConfig(seed=-1)
        with pytest.raises(ValueError):
            XrayConfig(ring_capacity=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("NCS_XRAY", "1/16;seed=3")
        cfg = XrayConfig.from_env()
        assert (cfg.period, cfg.seed) == (16, 3)
        monkeypatch.delenv("NCS_XRAY")
        assert XrayConfig.from_env() is None

    def test_node_config_plumbing(self, monkeypatch):
        monkeypatch.delenv("NCS_XRAY", raising=False)
        assert NodeConfig(name="x").xray_config() is None
        assert NodeConfig(name="x", xray="8").xray_config().period == 8
        cfg = XrayConfig(period=4)
        assert NodeConfig(name="x", xray=cfg).xray_config() is cfg
        # env supplies the default; an explicit False overrides it off.
        monkeypatch.setenv("NCS_XRAY", "32")
        assert NodeConfig(name="x").xray_config().period == 32
        assert NodeConfig(name="x", xray=False).xray_config() is None


class TestDeterministicSampling:
    def test_exact_one_in_n(self):
        recorder = XrayRecorder("n", XrayConfig(period=4))
        picks = [i for i in range(1, 41) if recorder.sampled(i)]
        assert len(picks) == 10
        assert picks == list(range(4, 41, 4))

    def test_seed_shifts_phase_deterministically(self):
        base = XrayRecorder("n", XrayConfig(period=8))
        shifted = XrayRecorder("n", XrayConfig(period=8, seed=3))
        base_picks = {i for i in range(1, 65) if base.sampled(i)}
        shifted_picks = {i for i in range(1, 65) if shifted.sampled(i)}
        assert len(base_picks) == len(shifted_picks) == 8
        assert base_picks.isdisjoint(shifted_picks)
        again = {i for i in range(1, 65)
                 if XrayRecorder("n", XrayConfig(period=8, seed=3)).sampled(i)}
        assert again == shifted_picks

    def test_period_one_samples_everything(self):
        recorder = XrayRecorder("n", XrayConfig(period=1))
        assert all(recorder.sampled(i) for i in range(1, 20))


@pytest.fixture
def xray_pair():
    """Two X-ray'd nodes (period=1) over the full protocol stack."""

    def build(interface="hpi", period=1, payload_size=512, iterations=20):
        cfg = XrayConfig(period=period)
        node_a = Node(NodeConfig(name="xa", xray=cfg))
        node_b = Node(NodeConfig(name="xb", xray=cfg))
        try:
            conn = node_a.connect(
                node_b.address,
                ConnectionConfig(
                    interface=interface,
                    flow_control="credit",
                    error_control="selective_repeat",
                ),
                peer_name="xb",
            )
            peer = node_b.accept(timeout=5.0)
            payload = bytes(payload_size)
            for _ in range(iterations):
                conn.send(payload, wait=True, timeout=5.0)
                assert peer.recv(timeout=5.0) is not None
            time.sleep(0.05)  # let the last transmit stamp land
            return (node_a.xray.spans() + node_b.xray.spans(),
                    node_a.xray, node_b.xray)
        finally:
            node_a.close()
            node_b.close()

    return build


class TestLiveSampling:
    def test_one_in_four_picks_exactly_a_quarter(self, xray_pair):
        spans, sender, receiver = xray_pair(period=4, iterations=20)
        assert sender.sampled_sends == 5
        assert receiver.sampled_recvs == 5
        # Sender and receiver agree on which messages were sampled.
        send_traces = {s["trace"] for s in spans if s["kind"] == "send"}
        recv_traces = {s["trace"] for s in spans if s["kind"] == "recv"}
        assert send_traces == recv_traces

    def test_span_mark_rides_the_envelope(self):
        assert XRAY_SPAN_MARK == 0x80000000
        # msg ids count from 1, so an unsampled message's default
        # span_id (= msg_id) cannot carry the mark in any realistic run.
        assert (20 & XRAY_SPAN_MARK) == 0


def _assert_joined_telescopes(spans):
    # Each direction telescopes *exactly*: adjacent stages share their
    # boundary stamps, so the sum is the measured total by construction.
    for span in spans:
        assert sum(span["stages"].values()) == span["total_ns"], (
            f"{span['kind']} span for msg {span['msg']} does not "
            f"telescope: {span['stages']} vs total {span['total_ns']}"
        )
    joined = join_spans(spans)
    assert joined, "no sender/receiver span pairs joined by trace id"
    for span in joined:
        # End to end the invariant gains the wire/overlap terms: on
        # inline-delivery interfaces the receiver's stages overlap the
        # sender's interface_write, and join_spans accounts every
        # clamped nanosecond in overlap_ns.
        stage_sum = sum(span["stages"].values()) - span["overlap_ns"]
        assert span["e2e_ns"] > 0
        assert stage_sum == pytest.approx(
            span["e2e_ns"], rel=TELESCOPE_TOLERANCE
        ), (
            f"stages sum to {stage_sum} ns but e2e is {span['e2e_ns']} ns "
            f"for msg {span['msg']}: {span['stages']}"
        )
    return joined


class TestTelescoping:
    def test_stage_sums_telescope_on_hpi(self, xray_pair):
        spans, _, _ = xray_pair(interface="hpi")
        joined = _assert_joined_telescopes(spans)
        assert len(joined) == 20

    def test_stage_sums_telescope_on_sci(self, xray_pair):
        spans, _, _ = xray_pair(interface="sci")
        _assert_joined_telescopes(spans)

    def test_bypass_mode_uses_queue_free_taxonomy(self):
        node_a = Node(NodeConfig(name="bya", xray=XrayConfig(period=1)))
        node_b = Node(NodeConfig(name="byb", xray=XrayConfig(period=1)))
        node_b.accept_mode = "bypass"
        try:
            conn = node_a.connect(
                node_b.address,
                ConnectionConfig(interface="sci", mode="bypass",
                                 flow_control="none", error_control="none"),
                peer_name="byb",
            )
            peer = node_b.accept(timeout=5.0)
            for _ in range(6):
                conn.send(b"z" * 256)
                assert peer.recv(timeout=5.0) is not None
            time.sleep(0.05)
            sends = node_a.xray.spans(kind="send")
        finally:
            node_a.close()
            node_b.close()
        assert len(sends) == 6
        for span in sends:
            # No queues, no context switches: the bypass taxonomy.
            assert set(span["stages"]) == {
                "admission_wait", "encode", "ec_window_wait",
                "fc_credit_wait", "interface_write",
            }
            assert sum(span["stages"].values()) == span["total_ns"]

    def test_all_threaded_stages_present(self, xray_pair):
        spans, _, _ = xray_pair(interface="hpi", iterations=4)
        joined = join_spans(spans)
        expected = set(STAGE_ORDER)
        for span in joined:
            assert set(span["stages"]) == expected


class TestDisabledPath:
    def test_off_by_default_and_allocation_free(self):
        node_a = Node(NodeConfig(name="off-a", xray=False))
        node_b = Node(NodeConfig(name="off-b", xray=False))
        try:
            assert node_a.xray is None
            conn = node_a.connect(
                node_b.address, ConnectionConfig(interface="hpi"),
                peer_name="off-b",
            )
            peer = node_b.accept(timeout=5.0)
            conn.send(b"warm")  # warm up lazy machinery before tracing
            assert peer.recv(timeout=5.0) is not None
            tracemalloc.start()
            try:
                for _ in range(10):
                    conn.send(b"x")
                    assert peer.recv(timeout=5.0) is not None
                snap = tracemalloc.take_snapshot().filter_traces(
                    [tracemalloc.Filter(True, "*xray*")]
                )
            finally:
                tracemalloc.stop()
            assert sum(stat.count for stat in snap.statistics("filename")) == 0
            assert conn._xray_send_spans == {}
            assert conn._xray_recv_spans == {}
        finally:
            node_a.close()
            node_b.close()

    def test_unsampled_sends_leave_no_spans(self, xray_pair):
        spans, sender, _ = xray_pair(period=1000, iterations=5)
        assert sender.sampled_sends == 0
        assert spans == []


class TestExportSurfaces:
    def test_snapshot_has_per_connection_quantiles(self, xray_pair):
        spans, sender, receiver = xray_pair(iterations=20)
        snap = sender.snapshot()
        assert snap["period"] == 1
        assert snap["sampled_sends"] == 20
        (conn_stats,) = snap["conns"].values()
        assert conn_stats["send_count"] == 20
        assert 0 < conn_stats["send_p50_s"] <= conn_stats["send_p99_s"]
        recv_snap = receiver.snapshot()
        (recv_stats,) = recv_snap["conns"].values()
        assert recv_stats["recv_count"] == 20
        assert 0 < recv_stats["recv_p50_s"] <= recv_stats["recv_p99_s"]
        assert "delivery_wait" in recv_snap["stages"]
        assert recv_snap["stages"]["delivery_wait"]["count"] == 20

    def test_p99_reaches_telemetry_and_prometheus(self):
        from repro.obs.telemetry import Collector, render_prometheus
        from repro.tools.ncs_top import render_dashboard

        hub = Node(NodeConfig(name="hub"))
        collector = Collector(hub)
        target = f"{hub.address[0]}:{hub.address[1]}"
        alice = Node(NodeConfig(name="alice", telemetry=target,
                                telemetry_interval=60.0, xray="1"))
        bob = Node(NodeConfig(name="bob", xray="1"))
        try:
            conn = alice.connect(
                bob.address, ConnectionConfig(interface="hpi"),
                peer_name="bob",
            )
            peer = bob.accept(timeout=5.0)
            for _ in range(8):
                conn.send(b"y" * 256, wait=True, timeout=5.0)
                assert peer.recv(timeout=5.0) is not None
            alice.telemetry_exporter.export_once()
            deadline = time.monotonic() + 5.0
            while collector.snapshots_received < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            body = collector.view("alice").last_body
            assert body["xray"]["sampled_sends"] == 8
            (conn_stats,) = body["xray"]["conns"].values()
            assert conn_stats["send_p99_s"] > 0
            text = render_prometheus(collector)
            assert 'ncs_xray_sampled_total{direction="send",node="alice"} 8' \
                in text
            assert 'ncs_xray_send_seconds{' in text
            assert 'quantile="0.99"' in text
            assert "ncs_xray_stage_seconds{" in text
            dashboard = render_dashboard(collector)
            assert "lat p50" in dashboard and "p99" in dashboard
        finally:
            alice.close()
            bob.close()
            hub.close()


class TestOfflineJoin:
    def test_dump_load_join_round_trip(self, xray_pair, tmp_path):
        spans, sender, receiver = xray_pair(iterations=6)
        send_path, recv_path = tmp_path / "a.json", tmp_path / "b.json"
        assert sender.dump(str(send_path)) == 6
        assert receiver.dump(str(recv_path)) == 6
        loaded = load_spans(str(send_path)) + load_spans(str(recv_path))
        joined = join_spans(loaded)
        assert len(joined) == 6
        report = dominance_report(joined)
        assert report["spans"] == 6
        assert report["dominant"] in STAGE_ORDER
        assert sum(report["overall"].values()) == pytest.approx(1.0, abs=0.02)

    def test_clock_offset_shifts_receiver_stamps(self, xray_pair):
        spans, _, _ = xray_pair(iterations=2)
        plain = join_spans(spans)
        # Pretend the receiver's clock runs 1 ms ahead: wire shrinks (or
        # clamps at 0) and e2e drops by the same 1 ms.
        shifted = join_spans(spans, offsets={"xb": 1e-3})
        for before, after in zip(plain, shifted):
            assert after["e2e_ns"] == before["e2e_ns"] - 1_000_000

    def test_load_rejects_non_dump_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "spans"}))
        with pytest.raises(ValueError):
            load_spans(str(path))

    def test_ncs_stat_xray_load_cli(self, xray_pair, tmp_path, capsys):
        from repro.tools.ncs_stat import main

        spans, sender, receiver = xray_pair(iterations=4)
        send_path, recv_path = tmp_path / "a.json", tmp_path / "b.json"
        sender.dump(str(send_path))
        receiver.dump(str(recv_path))
        out_path = tmp_path / "waterfall.txt"
        code = main(["xray", "--load", str(send_path), str(recv_path),
                     "--output", str(out_path)])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "4 joined spans" in rendered
        assert "tail dominant" in rendered
        assert out_path.read_text() == rendered.rstrip("\n") + "\n"


class TestRttHistogram:
    def test_heartbeat_rtt_lands_in_per_peer_histogram(self):
        from repro.obs.telemetry.clocksync import ClockSync

        registry = MetricsRegistry()
        sync = ClockSync(registry=registry, node_name="me")
        for rtt in (0.001, 0.002, 0.004):
            sync.observe("peer-1", offset=0.0, rtt=rtt)
        sync.observe("peer-2", offset=0.0, rtt=0.010)
        sync.observe("peer-1", offset=0.0, rtt=-1.0)  # clamped garbage
        hist = registry.histogram(
            "ncs_rtt_seconds", buckets=LATENCY_BUCKETS,
            node="me", peer="peer-1",
        )
        assert hist.count == 3
        assert hist.buckets == LATENCY_BUCKETS
        hist2 = registry.histogram(
            "ncs_rtt_seconds", buckets=LATENCY_BUCKETS,
            node="me", peer="peer-2",
        )
        assert hist2.count == 1

    def test_no_registry_no_crash(self):
        from repro.obs.telemetry.clocksync import ClockSync

        sync = ClockSync()
        sync.observe("peer", offset=0.0, rtt=0.001)
        assert sync.snapshot()["peer"]["samples"] == 1
