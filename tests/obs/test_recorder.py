"""FlightRecorder: ring semantics, dumps, file output, the null object."""

import json
import os

import pytest

from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    DUMP_DIR_ENV,
    NULL_RECORDER,
    FlightRecorder,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        return self.t


class TestRing:
    def test_record_appends_and_snapshot_is_oldest_first(self):
        clock = FakeClock()
        recorder = FlightRecorder(name="r", capacity=8, clock=clock)
        for i in range(3):
            clock.t = float(i)
            recorder.record("data", "send", msg=i)
        snap = recorder.snapshot()
        assert [e["msg"] for e in snap] == [0, 1, 2]
        assert [e["ts"] for e in snap] == [0.0, 1.0, 2.0]
        assert snap[0]["category"] == "data"
        assert snap[0]["name"] == "send"

    def test_ring_evicts_oldest_when_full(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("x", "y", i=i)
        snap = recorder.snapshot()
        assert len(snap) == 4
        assert [e["i"] for e in snap] == [6, 7, 8, 9]
        # recorded counts evicted entries too
        assert recorder.recorded == 10
        assert len(recorder) == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(enabled=False)
        recorder.record("a", "b")
        assert len(recorder) == 0
        assert recorder.recorded == 0

    def test_clear_empties_ring(self):
        recorder = FlightRecorder()
        recorder.record("a", "b")
        recorder.clear()
        assert recorder.snapshot() == []


class TestDumps:
    def test_dump_captures_ring_reason_and_detail(self):
        recorder = FlightRecorder(name="node-a", capacity=8)
        recorder.record("flow", "credit", credits=4)
        record = recorder.dump("manual check", conn_id=7)
        assert record["recorder"] == "node-a"
        assert record["reason"] == "manual check"
        assert record["detail"] == {"conn_id": 7}
        assert record["events"][-1]["name"] == "credit"
        assert recorder.last_dump() is record
        assert recorder.auto_dumps == 0  # manual dump is not an auto dump

    def test_auto_dump_increments_counter(self):
        recorder = FlightRecorder()
        recorder.auto_dump("anomaly one")
        recorder.auto_dump("anomaly two")
        assert recorder.auto_dumps == 2
        assert [d["reason"] for d in recorder.dumps] == [
            "anomaly one",
            "anomaly two",
        ]

    def test_dump_retention_is_bounded(self):
        recorder = FlightRecorder()
        recorder.max_dumps = 3
        for i in range(7):
            recorder.dump(f"d{i}")
        assert [d["reason"] for d in recorder.dumps] == ["d4", "d5", "d6"]

    def test_on_dump_callback_fires(self):
        recorder = FlightRecorder()
        seen = []
        recorder.on_dump = seen.append
        record = recorder.dump("cb")
        assert seen == [record]

    def test_dump_dir_writes_json_file(self, tmp_path):
        recorder = FlightRecorder(name="fx", dump_dir=str(tmp_path))
        recorder.record("state", "connected", conn=1)
        record = recorder.auto_dump("stall", conn_id=1)
        path = record["path"]
        assert os.path.dirname(path) == str(tmp_path)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["reason"] == "stall"
        assert loaded["events"][0]["name"] == "connected"

    def test_dump_dir_env_variable(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path))
        recorder = FlightRecorder(name="env")
        assert recorder.dump_dir == str(tmp_path)
        recorder.dump("via env")
        assert any(f.startswith("flight_env") for f in os.listdir(tmp_path))

    def test_explicit_dump_dir_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DUMP_DIR_ENV, "/nonexistent/env/dir")
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        assert recorder.dump_dir == str(tmp_path)


class TestFormatting:
    def test_format_dump_renders_reason_detail_and_events(self):
        recorder = FlightRecorder(name="fmt")
        recorder.record("error", "retransmit", sdu=3)
        record = recorder.dump("storm", conn_id=2)
        text = FlightRecorder.format_dump(record)
        assert "fmt" in text
        assert "storm" in text
        assert "conn_id: 2" in text
        assert "error.retransmit sdu=3" in text


class TestNullRecorder:
    def test_null_recorder_is_inert(self):
        NULL_RECORDER.record("a", "b", c=1)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.enabled is False
