"""Telemetry plane: clock sync, exporter ladder, collector, exposition.

The invariants under test mirror the design:

* ClockSync keeps the min-RTT sample per peer (Cristian filter).
* The exporter degrades at high budget occupancy or OVERLOADED health —
  an overloaded node still emits (smaller) telemetry — and sheds
  outright near the ceiling, with every shed observable three ways:
  the exporter counter, the MemoryBudget counter, and the sequence gap
  the collector sees.
* Telemetry bytes are never charged to the data-plane budget.
"""

import json
import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig
from repro.obs.telemetry import (
    ClockSync,
    Collector,
    TelemetryExporter,
    TimeSeriesRing,
    render_prometheus,
    export_jsonl,
)
from repro.protocol.pdus import TelemetryPdu


class TestClockSync:
    def test_min_rtt_sample_wins(self):
        sync = ClockSync()
        sync.observe("b", offset=0.010, rtt=0.004)
        sync.observe("b", offset=0.002, rtt=0.001)  # tightest bound
        sync.observe("b", offset=0.020, rtt=0.009)
        estimate = sync.estimate("b")
        assert estimate is not None
        assert estimate.offset == pytest.approx(0.002)
        assert estimate.rtt == pytest.approx(0.001)
        assert estimate.samples == 3

    def test_negative_rtt_discarded(self):
        sync = ClockSync()
        sync.observe("b", offset=1.0, rtt=-0.5)
        assert sync.estimate("b") is None

    def test_window_bounded(self):
        sync = ClockSync(window=4)
        for i in range(100):
            sync.observe("b", offset=float(i), rtt=1.0 + i)
        estimate = sync.estimate("b")
        # Only the last 4 samples survive; min rtt among them is i=96.
        assert estimate.offset == pytest.approx(96.0)

    def test_snapshot_covers_all_peers(self):
        sync = ClockSync()
        sync.observe("b", offset=0.1, rtt=0.01)
        sync.observe("c", offset=-0.2, rtt=0.02)
        snap = sync.snapshot()
        assert set(snap) == {"b", "c"}
        assert snap["b"]["offset"] == pytest.approx(0.1)


class TestTimeSeriesRing:
    def test_bounded_eviction(self):
        ring = TimeSeriesRing(capacity=3)
        for i in range(10):
            ring.append(float(i), float(i * 2))
        assert len(ring) == 3
        assert ring.items()[0] == (7.0, 14.0)
        assert ring.latest() == (9.0, 18.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TimeSeriesRing(capacity=0)


@pytest.fixture
def cluster():
    """Collector hub plus one worker node wired for manual export."""
    hub = Node(NodeConfig(name="hub"))
    collector = Collector(hub)
    worker = Node(NodeConfig(name="worker"))
    exporter = TelemetryExporter(
        worker, hub.address, interval=60.0  # loop effectively dormant
    )
    yield hub, collector, worker, exporter
    exporter.stop()
    worker.close()
    hub.close()


def _drain(collector, minimum, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if collector.snapshots_received >= minimum:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"collector saw {collector.snapshots_received} < {minimum} snapshots"
    )


class TestExporterLadder:
    def test_full_snapshot_reaches_collector(self, cluster):
        hub, collector, worker, exporter = cluster
        assert exporter.export_once() == "full"
        _drain(collector, 1)
        view = collector.view("worker")
        assert view is not None
        assert view.last_kind == "full"
        assert "pressure" in view.last_body
        assert view.last_body["state"] in ("OK", "DEGRADED")

    def test_overloaded_node_still_emits_degraded(self, cluster):
        hub, collector, worker, exporter = cluster
        worker.health = lambda: {"state": "OVERLOADED"}
        assert exporter.export_once() == "degraded"
        _drain(collector, 1)
        view = collector.view("worker")
        assert view.last_kind == "degraded"
        assert view.last_state == "OVERLOADED"
        # Degraded bodies shrink: no health/pressure/clock sections.
        assert "health" not in view.last_body
        assert "pressure" not in view.last_body
        assert exporter.snapshots_degraded == 1

    def test_high_occupancy_degrades(self, cluster):
        hub, collector, worker, exporter = cluster
        worker.pressure.occupancy = lambda: 0.85
        assert exporter.export_once() == "degraded"

    def test_shed_past_ceiling_is_observable_everywhere(self, cluster):
        hub, collector, worker, exporter = cluster
        # One normal snapshot establishes the sequence baseline.
        assert exporter.export_once() == "full"
        _drain(collector, 1)
        worker.pressure.occupancy = lambda: 0.99
        assert exporter.export_once() is None  # shed
        assert exporter.export_once() is None  # shed again
        # 1) exporter counter
        assert exporter.snapshots_shed == 2
        # 2) budget counter
        assert worker.pressure.snapshot()["telemetry_sheds"] == 2
        # 3) collector sees the sequence gap once exports resume
        worker.pressure.occupancy = lambda: 0.0
        assert exporter.export_once() == "full"
        _drain(collector, 2)
        assert collector.view("worker").missed == 2
        assert collector.total_missed() == 2

    def test_telemetry_bytes_never_charged_to_budget(self, cluster):
        hub, collector, worker, exporter = cluster
        budget = worker.pressure
        used_before = budget.snapshot()["used"]
        for _ in range(5):
            assert exporter.export_once() == "full"
        snap = budget.snapshot()
        assert snap["used"] == used_before  # zero bytes charged
        assert snap["telemetry_exempt_bytes"] == exporter.bytes_sent > 0

    def test_sequence_numbers_are_contiguous_without_sheds(self, cluster):
        hub, collector, worker, exporter = cluster
        for _ in range(4):
            exporter.export_once()
        _drain(collector, 4)
        view = collector.view("worker")
        assert view.last_sequence == 4
        assert view.missed == 0

    def test_rejects_bad_parameters(self, cluster):
        hub, collector, worker, _ = cluster
        with pytest.raises(ValueError):
            TelemetryExporter(worker, hub.address, interval=0.0)
        with pytest.raises(ValueError):
            TelemetryExporter(
                worker, hub.address, degrade_at=0.9, shed_at=0.5
            )


class TestCollector:
    def test_malformed_body_counted_not_fatal(self, cluster):
        hub, collector, worker, exporter = cluster
        pdu = TelemetryPdu(
            node="evil", sequence=1, sent_at=0.0, kind="full",
            body=b"\xff not json",
        )
        collector.on_telemetry(pdu, link=None)
        assert collector.snapshots_malformed == 1
        assert "evil" not in collector.nodes()

    def test_rings_accumulate_series(self, cluster):
        hub, collector, worker, exporter = cluster
        for _ in range(3):
            exporter.export_once()
        _drain(collector, 3)
        series = collector.series("worker", "occupancy")
        assert len(series) == 3

    def test_listener_fires_per_snapshot(self, cluster):
        hub, collector, worker, exporter = cluster
        seen = []
        collector.add_listener(seen.append)
        exporter.export_once()
        _drain(collector, 1)
        assert seen == ["worker"]

    def test_cluster_snapshot_aggregates(self, cluster):
        hub, collector, worker, exporter = cluster
        exporter.export_once()
        _drain(collector, 1)
        snap = collector.cluster_snapshot()
        assert snap["collector"] == "hub"
        assert [entry["node"] for entry in snap["nodes"]] == ["worker"]
        assert snap["cluster_state"] in ("OK", "DEGRADED")


class TestExposition:
    def test_prometheus_text_format(self, cluster):
        hub, collector, worker, exporter = cluster
        exporter.export_once()
        _drain(collector, 1)
        text = render_prometheus(collector)
        assert 'ncs_node_health_state{node="worker"}' in text
        assert 'ncs_telemetry_snapshots_received{collector="hub"} 1' in text
        assert text.endswith("\n")
        # Every sample line is "name{labels} value".
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert " " in line and "{" in line

    def test_jsonl_export_round_trips(self, cluster, tmp_path):
        hub, collector, worker, exporter = cluster
        exporter.export_once()
        _drain(collector, 1)
        path = str(tmp_path / "cluster.jsonl")
        written = export_jsonl(collector, path)
        lines = [json.loads(l) for l in open(path)]
        assert written == len(lines) == 2  # one node + trailer
        assert lines[0]["record"] == "node"
        assert lines[0]["node"] == "worker"
        assert lines[1]["record"] == "collector"


class TestEndToEnd:
    def test_telemetry_survives_data_traffic(self):
        """Exporter threads + live traffic: collector converges."""
        hub = Node(NodeConfig(name="hub"))
        collector = Collector(hub)
        target = f"{hub.address[0]}:{hub.address[1]}"
        alice = Node(NodeConfig(
            name="alice", telemetry=target, telemetry_interval=0.03
        ))
        bob = Node(NodeConfig(
            name="bob", telemetry=target, telemetry_interval=0.03
        ))
        try:
            conn = alice.connect(
                bob.address, ConnectionConfig(interface="sci"),
                peer_name="bob",
            )
            peer = bob.accept(timeout=5.0)
            for _ in range(5):
                conn.send(b"x" * 20000, wait=True, timeout=5.0)
                assert peer.recv(timeout=5.0)
            alice.telemetry_exporter.export_once()
            bob.telemetry_exporter.export_once()
            _drain(collector, 4)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if set(collector.nodes()) == {"alice", "bob"}:
                    break
                time.sleep(0.01)
            assert set(collector.nodes()) == {"alice", "bob"}
            view = collector.view("alice")
            conns = view.last_body.get("conns", {})
            assert any(
                totals.get("messages_sent", 0) >= 5
                for totals in conns.values()
            )
            # Telemetry never charged: exempt counter grew, sheds zero.
            snap = alice.pressure.snapshot()
            assert snap["telemetry_exempt_bytes"] > 0
        finally:
            alice.close()
            bob.close()
            hub.close()
