"""Flight-recorder events carry the active trace id.

An anomaly dump is only useful for cluster-level debugging if its
entries can be joined against the merged cross-node trace: every
data-plane recorder event at a traced send/deliver site must carry the
same ``trace`` id that rides the wire envelope, so a dump taken on one
node lines up with spans recorded on the peer.
"""

import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig


@pytest.fixture
def traced_pair():
    node_a = Node(NodeConfig(name="rectrace-a", trace=True, flight_recorder=True))
    node_b = Node(NodeConfig(name="rectrace-b", trace=True, flight_recorder=True))
    conn = node_a.connect(
        node_b.address,
        ConnectionConfig(interface="sci"),
        peer_name="rectrace-b",
    )
    peer = node_b.accept(timeout=5.0)
    yield node_a, node_b, conn, peer
    node_a.close()
    node_b.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _events(recorder, category, name):
    return [
        e
        for e in recorder.snapshot()
        if e["category"] == category and e["name"] == name
    ]


def test_recorder_send_and_deliver_carry_trace(traced_pair):
    node_a, node_b, conn, peer = traced_pair

    conn.send(b"traced payload")
    assert peer.recv(timeout=5.0) == b"traced payload"

    sends = _events(node_a.recorder, "data", "send")
    assert sends, "sender flight recorder has no data.send events"
    sender_traces = {e.get("trace") for e in sends}
    assert sender_traces, "data.send events carry no trace field"
    assert all(t for t in sender_traces), "traced send recorded trace=0"

    # The receiver's deliver event must carry the *same* id the sender
    # allocated — that is the join key for merged cluster traces.
    assert _wait_for(
        lambda: any(
            e.get("trace") in sender_traces
            for e in _events(node_b.recorder, "data", "deliver")
        )
    ), "receiver data.deliver never matched a sender trace id"


def test_recorder_ack_carries_trace(traced_pair):
    node_a, node_b, conn, peer = traced_pair

    conn.send(b"ack me")
    assert peer.recv(timeout=5.0) == b"ack me"

    sends = _events(node_a.recorder, "data", "send")
    sender_traces = {e.get("trace") for e in sends if e.get("trace")}
    assert sender_traces

    # The sender-side ACK-arrival record resolves the trace through the
    # connection's in-flight map (the ACK PDU itself has no envelope).
    assert _wait_for(
        lambda: any(
            e.get("trace") in sender_traces
            for e in _events(node_a.recorder, "error", "ack")
        )
    ), "sender error.ack record never carried the originating trace id"


def test_anomaly_dump_joins_merged_trace(traced_pair):
    """A dump's traced events join against the tracer's event stream."""
    node_a, node_b, conn, peer = traced_pair

    conn.send(b"dump join")
    assert peer.recv(timeout=5.0) == b"dump join"

    dump = node_a.recorder.dump(reason="test-join")
    dump_traces = {
        e.get("trace")
        for e in dump["events"]
        if e["category"] == "data" and e["name"] == "send" and e.get("trace")
    }
    assert dump_traces, "dump contains no traced data.send events"

    tracer_traces = {
        e.detail.get("trace") for e in node_a.tracer.select("data", "send")
    }
    assert dump_traces <= tracer_traces, (
        "dump trace ids missing from tracer stream: "
        f"{dump_traces - tracer_traces}"
    )


def test_untraced_node_records_trace_zero():
    node_a = Node(NodeConfig(name="rectrace-off-a", flight_recorder=True))
    node_b = Node(NodeConfig(name="rectrace-off-b", flight_recorder=True))
    try:
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(interface="sci"),
            peer_name="rectrace-off-b",
        )
        peer = node_b.accept(timeout=5.0)
        conn.send(b"plain")
        assert peer.recv(timeout=5.0) == b"plain"
        sends = _events(node_a.recorder, "data", "send")
        assert sends
        assert all(not e.get("trace") for e in sends), (
            "untraced sends must not allocate trace ids"
        )
    finally:
        node_a.close()
        node_b.close()
