"""OverheadProfiler: stage accounting over synthetic stamp streams."""

import pytest

from repro.obs.profiler import (
    BYPASS_SEND_STAGES,
    OverheadProfiler,
    RECV_STAGES,
    SEND_STAGES,
)

#: Per-stage duration in nanoseconds for the synthetic send stream.
_SEND_STEP_NS = {
    "queued": 1_000,
    "dequeued": 27_000,
    "segmented": 4_000,
    "flow_released": 2_000,
    "send_thread_dequeued": 25_000,
    "transmitted": 50_000,
}


def synthetic_send_stamps(base_ns=1_000_000, jitter_ns=0):
    """Build a stamp dict walking SEND_STAGES boundaries in order."""
    stamps = {"entry": base_ns}
    now = base_ns
    for key in ("queued", "dequeued", "segmented", "flow_released",
                "send_thread_dequeued", "transmitted"):
        now += _SEND_STEP_NS[key] + jitter_ns
        stamps[key] = now
    stamps["exit"] = now + 3_000
    return stamps


class TestRecording:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OverheadProfiler(mode="quantum")

    def test_record_needs_first_and_last_stamp(self):
        profiler = OverheadProfiler()
        assert profiler.record_send({"entry": 10}) is False
        assert profiler.record_send({"transmitted": 10}) is False
        assert profiler.send.samples == 0

    def test_record_accepts_complete_stamps(self):
        profiler = OverheadProfiler()
        assert profiler.record_send(synthetic_send_stamps()) is True
        assert profiler.send.samples == 1

    def test_partial_interior_stamps_still_count_the_total(self):
        profiler = OverheadProfiler()
        stamps = synthetic_send_stamps()
        del stamps["segmented"]  # interior boundary missing
        assert profiler.record_send(stamps) is True
        assert profiler.send.total.count == 1


class TestStageAccounting:
    def test_stage_means_sum_to_total_mean(self):
        """The stages telescope, so with complete stamps the sum of the
        per-stage means reproduces the mean of the measured total
        exactly — the bench-level 10% check is pure measurement noise."""
        profiler = OverheadProfiler()
        for i in range(50):
            profiler.record_send(
                synthetic_send_stamps(base_ns=i * 10_000_000, jitter_ns=i % 7)
            )
        stage_sum, total_mean = profiler.consistency("send")
        assert total_mean > 0
        assert stage_sum == pytest.approx(total_mean)

    def test_send_breakdown_totals(self):
        profiler = OverheadProfiler()
        profiler.record_send(synthetic_send_stamps())
        breakdown = profiler.send_breakdown()
        labels = [label for label, _s, _e in SEND_STAGES]
        # Last stage is the data transfer; everything before is session.
        assert breakdown["data transfer total"] == breakdown[labels[-1]]
        assert breakdown["session overhead total"] == pytest.approx(
            sum(breakdown[label] for label in labels[:-1])
        )
        assert breakdown["total"] == pytest.approx(
            breakdown["session overhead total"] + breakdown["data transfer total"]
        )
        assert 0.0 < breakdown["session fraction"] < 1.0
        # Known synthetic durations: 50 us transfer, 59 us session.
        assert breakdown["data transfer total"] == pytest.approx(50.0)
        assert breakdown["session overhead total"] == pytest.approx(59.0)

    def test_recv_stage_means_sum_to_total(self):
        profiler = OverheadProfiler()
        for i in range(20):
            base = 5_000_000 * (i + 1)
            profiler.record_recv({
                "recv_entry": base,
                "decoded": base + 2_000,
                "fc_done": base + 5_000,
                "ec_done": base + 11_000,
                "delivered": base + 12_000,
            })
        stage_sum, total_mean = profiler.consistency("recv")
        assert total_mean == pytest.approx(12.0)
        assert stage_sum == pytest.approx(total_mean)
        breakdown = profiler.recv_breakdown()
        assert breakdown["total (recv_entry→delivered)"] == pytest.approx(12.0)


class TestBypassMode:
    def test_bypass_has_no_context_switch_stages(self):
        profiler = OverheadProfiler(mode="bypass")
        labels = [label for label, _s, _e in profiler.send.stages]
        assert profiler.send.stages == BYPASS_SEND_STAGES
        assert not any("context switch" in label for label in labels)

    def test_bypass_breakdown(self):
        profiler = OverheadProfiler(mode="bypass")
        base = 1_000_000
        profiler.record_send({
            "entry": base,
            "segmented": base + 4_000,
            "flow_released": base + 6_000,
            "transmitted": base + 56_000,
        })
        breakdown = profiler.send_breakdown()
        assert breakdown["data transfer (interface send)"] == pytest.approx(50.0)
        assert breakdown["session overhead total"] == pytest.approx(6.0)
        stage_sum, total_mean = profiler.consistency("send")
        assert stage_sum == pytest.approx(total_mean)


class TestFormatting:
    def test_format_table_mentions_every_stage(self):
        profiler = OverheadProfiler()
        profiler.record_send(synthetic_send_stamps())
        profiler.record_recv({
            "recv_entry": 0, "decoded": 1_000, "fc_done": 2_000,
            "ec_done": 3_000, "delivered": 4_000,
        })
        table = profiler.format_table()
        for label, _s, _e in SEND_STAGES:
            assert label in table
        for label, _s, _e in RECV_STAGES:
            assert label in table
        assert "session overhead total" in table
