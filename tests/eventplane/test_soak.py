"""Seeded chaos soak: 1,000 event-plane loopback connections under
drop/delay faults.

The event data plane's scaling claim is only worth anything if the
protocol machinery stays correct at connection counts no thread-per-
connection deployment could reach.  This soak opens 1,000 HPI (loopback
fabric) connections on one selector loop per node, injects a 10%
drop/delay fault mix through ``NCS_FAULTS`` (the documented env knob —
every connection's data interface gets the planned injector), and
asserts:

* exactly-once delivery on every raw connection (selective-repeat
  recovers every dropped SDU; the reassembler dedups the delayed
  stragglers), plus ledger-verified exactly-once on supervised sessions
  riding the same faulted fabric;
* zero stuck selector keys and zero endpoints on both loops after
  ``close()`` — teardown at scale leaks nothing.
"""

import struct
import time

from repro.core import ConnectionConfig

from tests.chaos.harness import (
    assert_exactly_once,
    collect_echoes,
    supervised_echo_pair,
)

SOAK_CONNECTIONS = 1000
MESSAGES_PER_CONN = 3
SUPERVISED_SESSIONS = 4
SUPERVISED_MESSAGES = 25
#: 5% drops + 5% delayed (2 ms) = the 10% fault mix.  NCS_FAULTS seeds
#: every connection's injector identically, so the whole fleet runs the
#: same deterministic schedule; seed 57 is chosen so each connection's
#: 3-message run (plus the retransmit the drop forces) hits both a drop
#: and a delay inside its frame budget.
FAULT_SPEC = "drop:rate=0.05;delay:rate=0.05,delay=0.002;seed:57"


def test_event_plane_chaos_soak(node_factory, monkeypatch):
    monkeypatch.setenv("NCS_FAULTS", FAULT_SPEC)
    client = node_factory("soak-client", data_plane="event", timer_tick=0.02)
    server = node_factory("soak-server", data_plane="event", timer_tick=0.02)
    config = ConnectionConfig(interface="hpi", retransmit_timeout=0.1)

    # Establish the fleet.  Threaded mode would need 2,000 data threads
    # per side here; the event plane runs one loop thread per node.
    conns = [
        client.connect(server.address, config, peer_name="soak-server")
        for _ in range(SOAK_CONNECTIONS)
    ]
    peers = []
    while len(peers) < SOAK_CONNECTIONS:
        peer = server.accept(timeout=10.0)
        assert peer is not None, f"accept stalled at {len(peers)} connections"
        peers.append(peer)
    assert all(conn.config.mode == "event" for conn in conns)
    assert all(peer.config.mode == "event" for peer in peers)

    # Supervised ledger sessions ride the same faulted fabric while the
    # fleet hammers it: exactly-once through the recovery ledger.
    supervised = [
        supervised_echo_pair(
            node_factory,
            config=ConnectionConfig(interface="hpi", retransmit_timeout=0.1),
            session=f"soak-sup{i}",
            data_plane="event",
        )
        for i in range(SUPERVISED_SESSIONS)
    ]

    try:
        for sup, _echo in supervised:
            for m in range(SUPERVISED_MESSAGES):
                sup.send(b"sup-%02d" % m)

        for index, conn in enumerate(conns):
            for m in range(MESSAGES_PER_CONN):
                conn.send(struct.pack("!II", index, m))

        # Collect the fleet's traffic: exactly-once per connection.
        received = [[] for _ in range(SOAK_CONNECTIONS)]
        outstanding = SOAK_CONNECTIONS * MESSAGES_PER_CONN
        deadline = time.monotonic() + 120.0
        while outstanding > 0 and time.monotonic() < deadline:
            progressed = False
            for index, peer in enumerate(peers):
                while True:
                    got = peer.try_recv()
                    if got is None:
                        break
                    received[index].append(got)
                    outstanding -= 1
                    progressed = True
            if not progressed:
                time.sleep(0.02)
        assert outstanding == 0, (
            f"{outstanding} messages never arrived under the fault mix"
        )
        for index in range(SOAK_CONNECTIONS):
            expected = [
                struct.pack("!II", index, m) for m in range(MESSAGES_PER_CONN)
            ]
            assert sorted(received[index]) == expected, (
                f"connection {index}: loss or duplication under faults"
            )

        # The fault plan actually fired (this is a chaos test, not a
        # fair-weather run).
        drops = sum(
            conn.interface.metrics().get("injected_drops", 0)
            for conn in conns
        )
        delays = sum(
            conn.interface.metrics().get("injected_delays", 0)
            for conn in conns
        )
        assert drops > 0, "the drop spec never triggered"
        assert delays > 0, "the delay spec never triggered"

        # Ledger-verified exactly-once on the supervised sessions.
        for i, (sup, _echo) in enumerate(supervised):
            expected_sup = [b"sup-%02d" % m for m in range(SUPERVISED_MESSAGES)]
            got = collect_echoes(sup, SUPERVISED_MESSAGES, deadline=60.0)
            assert_exactly_once(sup, expected_sup, got)
            sup.flush(timeout=10.0)
            assert sup.status()["outstanding"] == 0
    finally:
        for sup, echo in supervised:
            sup.close()
            echo.close()
        for conn in conns:
            conn.close()
        for peer in peers:
            peer.close()

    # Nothing leaks: both selector loops end the soak empty.
    deadline = time.monotonic() + 10.0
    while (
        client.event_loop().endpoint_count()
        + server.event_loop().endpoint_count()
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    assert client.event_loop().selector_key_count() == 0
    assert client.event_loop().endpoint_count() == 0
    assert server.event_loop().selector_key_count() == 0
    assert server.event_loop().endpoint_count() == 0
