"""Event data plane end-to-end: node pairs with ``data_plane="event"``.

The selector loop replaces per-connection Send/Receive threads; the
protocol engines underneath (segmentation, error control, flow control,
pressure gating) are the same objects the threaded plane drives, so the
observable contract — ordered exactly-once messages, ACK/credit flow,
clean teardown — must be identical.
"""

import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig


def event_pair(node_factory, config=None, **node_kwargs):
    node_kwargs.setdefault("data_plane", "event")
    client = node_factory("client", **node_kwargs)
    server = node_factory("server", **node_kwargs)
    conn = client.connect(
        server.address, config or ConnectionConfig(), peer_name="server"
    )
    peer = server.accept(timeout=5.0)
    assert peer is not None
    return client, server, conn, peer


class TestPlaneSelection:
    def test_event_nodes_promote_sci_connections(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        assert conn.config.mode == "event"
        assert peer.config.mode == "event"

    def test_threaded_stays_default(self, node_factory):
        client = node_factory("client")
        server = node_factory("server")
        conn = client.connect(
            server.address, ConnectionConfig(), peer_name="server"
        )
        peer = server.accept(timeout=5.0)
        assert conn.config.mode == "threaded"
        assert peer.config.mode == "threaded"
        # No selector loop was ever spun up.
        assert client._event_loop is None
        assert server._event_loop is None

    def test_env_var_selects_event_plane(self, node_factory, monkeypatch):
        monkeypatch.setenv("NCS_DATA_PLANE", "event")
        client, server, conn, peer = event_pair(node_factory, data_plane=None)
        assert conn.config.mode == "event"
        assert peer.config.mode == "event"

    def test_explicit_bypass_is_not_promoted(self, node_factory):
        client, server, conn, peer = event_pair(
            node_factory, ConnectionConfig(mode="bypass")
        )
        assert conn.config.mode == "bypass"

    def test_aci_is_not_promoted(self):
        node = Node(NodeConfig(name="aci-check", data_plane="event"))
        try:
            promoted = node._plane_mode(ConnectionConfig(interface="aci"))
            assert promoted.mode == "threaded"
        finally:
            node.close()

    def test_bad_plane_rejected(self):
        with pytest.raises(ValueError, match="data_plane"):
            NodeConfig(name="bad", data_plane="fibers").data_plane_mode()


class TestDataPath:
    def test_bidirectional_roundtrip_sci(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        conn.send(b"ping", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"ping"
        peer.send(b"pong", wait=True, timeout=5.0)
        assert conn.recv(5.0) == b"pong"

    def test_multi_sdu_message_reassembles(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        big = bytes(range(256)) * 4096  # 1 MB = 256 SDUs
        conn.send(big, wait=True, timeout=30.0)
        assert peer.recv(30.0) == big

    def test_ordered_stream_exactly_once(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        expected = [b"msg-%03d" % i for i in range(200)]
        for payload in expected:
            conn.send(payload)
        received = []
        deadline = time.monotonic() + 30.0
        while len(received) < len(expected) and time.monotonic() < deadline:
            got = peer.recv(0.5)
            if got is not None:
                received.append(got)
        assert received == expected  # ordered, no loss, no duplicates

    def test_hpi_roundtrip(self, node_factory):
        client, server, conn, peer = event_pair(
            node_factory, ConnectionConfig(interface="hpi")
        )
        assert conn.config.mode == "event"
        conn.send(b"over-hpi", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"over-hpi"
        peer.send(b"and-back", wait=True, timeout=5.0)
        assert conn.recv(5.0) == b"and-back"

    def test_engines_run_under_event_plane(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        for i in range(50):
            conn.send(b"x" * 4096)
        deadline = time.monotonic() + 30.0
        got = 0
        while got < 50 and time.monotonic() < deadline:
            if peer.recv(0.5) is not None:
                got += 1
        assert got == 50
        totals = conn.metrics_totals()
        # Credits cycled and the EC window advanced: the engines are
        # live, not bypassed, under the selector plane.
        assert totals["fc_tx_credits_granted"] > conn.config.initial_credits
        assert totals.get("ec_tx_acked_messages", totals.get("ec_tx_acked", 1)) > 0


class TestTeardown:
    def test_close_releases_selector_keys(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        conn.send(b"data", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"data"
        conn.close()
        deadline = time.monotonic() + 5.0
        while (
            client.event_loop().endpoint_count()
            + server.event_loop().endpoint_count()
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert client.event_loop().selector_key_count() == 0
        assert client.event_loop().endpoint_count() == 0
        assert server.event_loop().selector_key_count() == 0
        assert server.event_loop().endpoint_count() == 0

    def test_node_close_stops_loop(self, node_factory):
        client, server, conn, peer = event_pair(node_factory)
        loop = client.event_loop()
        client.close()
        assert loop._stopped
