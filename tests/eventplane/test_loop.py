"""EventLoop/EventEndpoint unit tests over real interfaces.

These drive the selector loop directly with stub connections, so loop
bookkeeping (registration, wakeups, write interest, retirement) is
testable without a full node stack.
"""

import time
import types

import pytest

from repro.eventplane import EventLoop
from repro.interfaces.loopback import LoopbackPair
from repro.interfaces.sci import sci_pair

from tests.interfaces.test_sci import throttled_sci_pair


class StubConnection:
    """Just enough of Connection for an endpoint to talk to."""

    def __init__(self, interface, batch_max=64):
        self.interface = interface
        self.config = types.SimpleNamespace(batch_max=batch_max)
        self.frames = []
        self.lost = []

    def event_rx(self, frames):
        self.frames.extend(frames)

    def event_transport_lost(self, where):
        self.lost.append(where)


def wait_until(predicate, deadline=5.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


@pytest.fixture
def loop():
    el = EventLoop("test")
    yield el
    el.stop()


class TestQueueEndpoints:
    def test_frames_flow_via_ready_callback(self, loop):
        pair = LoopbackPair()
        stub = StubConnection(pair.b)
        endpoint = loop.attach(stub)
        assert endpoint.kind == "queue"
        pair.a.send(b"one")
        pair.a.send_many([b"two", b"three"])
        assert wait_until(lambda: len(stub.frames) == 3)
        assert stub.frames == [b"one", b"two", b"three"]
        endpoint.detach()
        assert loop.endpoint_count() == 0

    def test_frames_sent_before_attach_are_caught(self, loop):
        pair = LoopbackPair()
        pair.a.send(b"early")
        stub = StubConnection(pair.b)
        loop.attach(stub)
        assert wait_until(lambda: stub.frames == [b"early"])

    def test_queue_attach_registers_inline(self, loop):
        # Queue registration must not ride the op queue: if it did, a
        # loop iteration between attach() and the catch-up ready mark
        # would drop the mark as "unregistered" and a burst that
        # entirely pre-dates attach would never be delivered.
        pair = LoopbackPair()
        stub = StubConnection(pair.b)
        loop.attach(stub)
        assert loop.endpoint_count() == 1

    def test_detach_removes_pending_ready_mark(self, loop):
        pair = LoopbackPair()
        stub = StubConnection(pair.b)
        endpoint = loop.attach(stub)
        pair.a.send(b"x")
        endpoint.detach()
        # The loop forgot the endpoint entirely: no queue-ready entry
        # survives to dispatch into a detached connection.
        assert loop.endpoint_count() == 0
        with loop._lock:
            assert endpoint not in loop._queue_ready_set

    def test_unsupported_interface_rejected(self, loop):
        class NoSurface:
            pass

        stub = StubConnection(NoSurface())
        with pytest.raises(ValueError, match="neither a file descriptor"):
            loop.attach(stub)


class TestSocketEndpoints:
    def test_selector_driven_reads(self, loop):
        a, b = sci_pair()
        stub = StubConnection(b)
        endpoint = loop.attach(stub)
        assert endpoint.kind == "socket"
        assert wait_until(lambda: loop.selector_key_count() == 1)
        a.send(b"via-epoll")
        assert wait_until(lambda: stub.frames == [b"via-epoll"])
        endpoint.detach()
        assert loop.selector_key_count() == 0
        a.close()
        b.close()

    def test_peer_close_retires_endpoint(self, loop):
        a, b = sci_pair()
        stub = StubConnection(b)
        loop.attach(stub)
        a.close()
        assert wait_until(lambda: stub.lost == ["recv"])
        assert loop.selector_key_count() == 0
        assert loop.endpoint_count() == 0
        b.close()

    def test_backlogged_submit_flushes_on_writability(self, loop):
        a, b = throttled_sci_pair()
        stub = StubConnection(a)
        endpoint = loop.attach(stub)
        frames = [bytes([i % 256]) * 60000 for i in range(40)]  # ~2.3 MB
        endpoint.submit(frames)
        assert a.backlog_bytes > 0  # tiny buffers: cannot land in one push
        received = []
        deadline = time.monotonic() + 20.0
        while len(received) < len(frames) and time.monotonic() < deadline:
            got = b.recv(1.0)
            if got is not None:
                received.append(got)
        assert received == frames
        assert wait_until(lambda: a.backlog_bytes == 0)
        endpoint.detach()
        a.close()
        b.close()


class TestLifecycle:
    def test_stop_is_idempotent_and_releases_fds(self, loop):
        loop.start()
        loop.stop()
        loop.stop()
        assert loop._stopped

    def test_stats_shape(self, loop):
        pair = LoopbackPair()
        stub = StubConnection(pair.b)
        loop.attach(stub)
        pair.a.send(b"tick")
        assert wait_until(lambda: stub.frames)
        stats = loop.stats()
        assert stats["endpoints"] == 1
        assert stats["queue_dispatches"] >= 1
        assert stats["wakeups"] >= 1
