"""QOS classes and GCRA policing."""

import pytest

from repro.atm.qos import GcraPolicer, QosClass, TrafficContract


class TestTrafficContract:
    def test_valid(self):
        contract = TrafficContract(pcr=1000.0, cdvt=1e-3)
        assert contract.pcr == 1000.0

    def test_invalid_pcr(self):
        with pytest.raises(ValueError):
            TrafficContract(pcr=0)

    def test_invalid_cdvt(self):
        with pytest.raises(ValueError):
            TrafficContract(pcr=1, cdvt=-1)


class TestGcra:
    def test_conforming_stream_at_contract_rate(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0, cdvt=0.0))
        # Cells exactly 10 ms apart: all conform.
        assert all(policer.conforms(i * 0.01) for i in range(50))
        assert policer.non_conforming == 0

    def test_burst_beyond_cdvt_rejected(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0, cdvt=0.0))
        assert policer.conforms(0.0)
        assert not policer.conforms(0.001)  # 10x too early
        assert policer.non_conforming == 1

    def test_cdvt_tolerates_jitter(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0, cdvt=0.005))
        assert policer.conforms(0.0)
        assert policer.conforms(0.006)  # 4 ms early but within tolerance

    def test_idle_period_resets_schedule(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0, cdvt=0.0))
        assert policer.conforms(0.0)
        assert policer.conforms(1.0)  # long idle: fresh start
        assert policer.conforms(1.01)

    def test_sustained_overspeed_drops_proportionally(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0, cdvt=0.0))
        # Send at 200 cells/s: roughly half must be non-conforming.
        for i in range(200):
            policer.conforms(i * 0.005)
        assert policer.conforming == pytest.approx(100, abs=3)

    def test_reset(self):
        policer = GcraPolicer(TrafficContract(pcr=100.0))
        policer.conforms(0.0)
        policer.reset()
        assert policer.conforming == 0
        assert policer.conforms(0.0)


class TestQosClasses:
    def test_all_service_categories_present(self):
        assert {c.value for c in QosClass} == {"cbr", "vbr", "abr", "ubr"}
