"""ATM cell format."""

import pytest

from repro.atm.cell import (
    CELL_SIZE,
    PAYLOAD_SIZE,
    AtmCell,
    CellError,
)


def make_cell(**overrides):
    fields = dict(vpi=1, vci=42, pti=0, clp=0, payload=b"\xAA" * PAYLOAD_SIZE)
    fields.update(overrides)
    return AtmCell(**fields)


class TestFormat:
    def test_encoded_size_is_53(self):
        assert len(make_cell().encode()) == CELL_SIZE

    def test_roundtrip(self):
        cell = make_cell(vpi=200, vci=60000, pti=0b001, clp=1)
        assert AtmCell.decode(cell.encode()) == cell

    def test_field_extremes(self):
        for vpi, vci in ((0, 0), (255, 65535)):
            cell = make_cell(vpi=vpi, vci=vci)
            again = AtmCell.decode(cell.encode())
            assert (again.vpi, again.vci) == (vpi, vci)

    def test_last_of_frame_flag(self):
        assert make_cell(pti=0b001).is_last_of_frame
        assert not make_cell(pti=0b000).is_last_of_frame

    def test_hec_detects_header_corruption(self):
        data = bytearray(make_cell().encode())
        data[1] ^= 0x04  # damage the VPI/VCI bits
        with pytest.raises(CellError, match="HEC"):
            AtmCell.decode(bytes(data))

    def test_wrong_size_rejected(self):
        with pytest.raises(CellError, match="53"):
            AtmCell.decode(b"\x00" * 52)


class TestValidation:
    def test_payload_must_be_48(self):
        with pytest.raises(CellError, match="48"):
            make_cell(payload=b"short")

    def test_vpi_range(self):
        with pytest.raises(CellError):
            make_cell(vpi=256)

    def test_vci_range(self):
        with pytest.raises(CellError):
            make_cell(vci=65536)

    def test_clp_binary(self):
        with pytest.raises(CellError):
            make_cell(clp=2)


class TestRerouting:
    def test_rerouted_translates_circuit_only(self):
        cell = make_cell(vpi=1, vci=100, pti=0b001, clp=1)
        out = cell.rerouted(2, 200)
        assert (out.vpi, out.vci) == (2, 200)
        assert out.pti == cell.pti
        assert out.clp == cell.clp
        assert out.payload == cell.payload
