"""AtmNetwork topology building and VC signaling."""

import pytest

from repro.atm.qos import QosClass
from repro.atm.signaling import AtmNetwork, SignalingError
from repro.simnet.kernel import Simulator


@pytest.fixture
def network():
    sim = Simulator()
    net = AtmNetwork(sim)
    net.add_host("h1")
    net.add_host("h2")
    net.add_host("h3")
    net.add_switch("s1")
    net.add_switch("s2")
    net.link("h1", "s1")
    net.link("h2", "s2")
    net.link("h3", "s1")
    net.link("s1", "s2")
    return sim, net


class TestTopology:
    def test_duplicate_names_rejected(self, network):
        _, net = network
        with pytest.raises(SignalingError, match="duplicate"):
            net.add_host("h1")
        with pytest.raises(SignalingError, match="duplicate"):
            net.add_switch("s1")

    def test_host_to_host_wire_rejected(self, network):
        _, net = network
        with pytest.raises(SignalingError, match="host-host"):
            net.link("h1", "h2")


class TestSignaling:
    def test_multihop_vc_installs_translations(self, network):
        _, net = network
        vc = net.setup_vc("h1", "h2")
        assert len(vc.hops) == 2  # s1 and s2
        assert len(net.switches["s1"].vc_table) == 1
        assert len(net.switches["s2"].vc_table) == 1

    def test_single_switch_vc(self, network):
        _, net = network
        vc = net.setup_vc("h1", "h3")
        assert len(vc.hops) == 1

    def test_vc_ids_unique(self, network):
        _, net = network
        first = net.setup_vc("h1", "h2")
        second = net.setup_vc("h1", "h2")
        assert first.vc_id != second.vc_id
        assert first.src_vpi_vci != second.src_vpi_vci

    def test_qos_attached(self, network):
        _, net = network
        vc = net.setup_vc("h1", "h2", qos=QosClass.CBR)
        assert vc.qos is QosClass.CBR

    def test_unknown_host_rejected(self, network):
        _, net = network
        with pytest.raises(SignalingError, match="hosts"):
            net.setup_vc("h1", "ghost")


class TestEndToEndDelivery:
    def test_frame_crosses_network(self, network):
        sim, net = network
        vc = net.setup_vc("h1", "h2")
        got = []
        net.hosts["h2"].on_frame = lambda vpi, vci, frame: got.append(frame)
        frame = bytes(range(251)) * 13
        net.hosts["h1"].send_frame(*vc.src_vpi_vci, frame)
        sim.run()
        assert got == [frame]

    def test_two_vcs_do_not_interfere(self, network):
        sim, net = network
        vc_a = net.setup_vc("h1", "h2")
        vc_b = net.setup_vc("h3", "h2")
        got = {}
        net.hosts["h2"].on_frame = (
            lambda vpi, vci, frame: got.setdefault(vci, []).append(frame)
        )
        net.hosts["h1"].send_frame(*vc_a.src_vpi_vci, b"from h1" * 40)
        net.hosts["h3"].send_frame(*vc_b.src_vpi_vci, b"from h3" * 40)
        sim.run()
        assert got[vc_a.dst_vpi_vci[1]] == [b"from h1" * 40]
        assert got[vc_b.dst_vpi_vci[1]] == [b"from h3" * 40]

    def test_reverse_direction_needs_own_vc(self, network):
        sim, net = network
        forward = net.setup_vc("h1", "h2")
        reverse = net.setup_vc("h2", "h1")
        got = []
        net.hosts["h1"].on_frame = lambda vpi, vci, frame: got.append(frame)
        net.hosts["h2"].send_frame(*reverse.src_vpi_vci, b"backwards")
        sim.run()
        assert got == [b"backwards"]
