"""Output-queued cell switch."""

import pytest

from repro.atm.aal5 import aal5_segment
from repro.atm.cell import AtmCell, PAYLOAD_SIZE
from repro.atm.switch import AtmSwitch
from repro.atm.vc import VcIdentifier
from repro.simnet.kernel import Simulator


def cell(vpi=0, vci=32, pti=0, payload=None):
    return AtmCell(vpi, vci, pti, 0, payload or b"\x00" * PAYLOAD_SIZE)


@pytest.fixture
def rig():
    sim = Simulator()
    switch = AtmSwitch(sim, "sw", port_count=4)
    received = []
    switch.attach(1, received.append, wire_delay=10e-6)
    switch.vc_table.install(VcIdentifier(0, 0, 32), VcIdentifier(1, 0, 48))
    return sim, switch, received


class TestForwarding:
    def test_translates_and_forwards(self, rig):
        sim, switch, received = rig
        switch.inject(0, cell(vci=32))
        sim.run()
        assert len(received) == 1
        assert (received[0].vpi, received[0].vci) == (0, 48)

    def test_unknown_vc_dropped(self, rig):
        sim, switch, received = rig
        switch.inject(0, cell(vci=99))
        sim.run()
        assert received == []
        assert switch.cells_unknown_vc == 1

    def test_serialization_delay_per_cell(self, rig):
        sim, switch, received = rig
        arrival_times = []
        switch.ports[1].sink = lambda c: arrival_times.append(sim.now)
        for _ in range(3):
            switch.inject(0, cell(vci=32))
        sim.run()
        cell_time = switch.ports[1].cell_time
        assert arrival_times[1] - arrival_times[0] == pytest.approx(cell_time)
        assert arrival_times[2] - arrival_times[1] == pytest.approx(cell_time)

    def test_frame_order_preserved(self, rig):
        sim, switch, received = rig
        cells = aal5_segment(bytes(range(200)), 0, 32)
        for item in cells:
            switch.inject(0, item)
        sim.run()
        assert [c.payload for c in received] == [c.payload for c in cells]


class TestQueueing:
    def test_tail_drop_when_queue_full(self):
        sim = Simulator()
        switch = AtmSwitch(sim, "small", port_count=2, queue_capacity=5)
        switch.vc_table.install(VcIdentifier(0, 0, 32), VcIdentifier(1, 0, 32))
        delivered = []
        switch.attach(1, delivered.append)
        # Burst far beyond the queue: only capacity+in-service survive.
        for _ in range(50):
            switch.inject(0, cell(vci=32))
        sim.run()
        stats = switch.stats()
        assert stats["dropped"] == 50 - len(delivered)
        assert stats["dropped"] > 0
        assert len(delivered) <= 6  # queue capacity + the cell in service

    def test_stats_shape(self, rig):
        sim, switch, _ = rig
        switch.inject(0, cell(vci=32))
        sim.run()
        stats = switch.stats()
        assert stats["forwarded"] == 1
        assert stats["vcs"] == 1
