"""AAL5 segmentation and reassembly."""

import pytest

from repro.atm.aal5 import (
    Aal5Error,
    MAX_CPCS_SDU,
    aal5_reassemble,
    aal5_segment,
    cells_for_frame,
)
from repro.atm.cell import PAYLOAD_SIZE


class TestSegmentation:
    def test_small_frame_single_cell(self):
        cells = aal5_segment(b"tiny", 0, 32)
        assert len(cells) == 1
        assert cells[0].is_last_of_frame

    def test_only_final_cell_marked(self):
        cells = aal5_segment(b"x" * 200, 0, 32)
        marks = [cell.is_last_of_frame for cell in cells]
        assert marks == [False] * (len(cells) - 1) + [True]

    def test_cells_carry_circuit(self):
        cells = aal5_segment(b"y" * 100, 3, 77)
        assert all((c.vpi, c.vci) == (3, 77) for c in cells)

    def test_cell_count_formula(self):
        for size in (0, 1, 39, 40, 41, 48, 96, 1000, 65527):
            cells = aal5_segment(b"z" * size, 0, 32)
            assert len(cells) == cells_for_frame(size)

    def test_trailer_fits_exactly_when_aligned(self):
        # 40 bytes + 8 trailer = exactly one cell payload.
        assert cells_for_frame(40) == 1
        assert cells_for_frame(41) == 2

    def test_oversized_frame_rejected(self):
        with pytest.raises(Aal5Error, match="exceeds"):
            aal5_segment(b"x" * (MAX_CPCS_SDU + 1), 0, 32)


class TestReassembly:
    @pytest.mark.parametrize("size", [0, 1, 40, 41, 48, 500, 10000])
    def test_roundtrip(self, size):
        frame = bytes(range(256)) * (size // 256 + 1)
        frame = frame[:size]
        assert aal5_reassemble(aal5_segment(frame, 0, 32)) == frame

    def test_lost_middle_cell_fails_crc(self):
        cells = aal5_segment(b"q" * 500, 0, 32)
        damaged = cells[:3] + cells[4:]
        with pytest.raises(Aal5Error, match="CRC"):
            aal5_reassemble(damaged)

    def test_corrupted_payload_fails_crc(self):
        cells = aal5_segment(b"w" * 500, 0, 32)
        bad = bytearray(cells[2].payload)
        bad[10] ^= 0x01
        from repro.atm.cell import AtmCell

        cells[2] = AtmCell(cells[2].vpi, cells[2].vci, cells[2].pti,
                           cells[2].clp, bytes(bad))
        with pytest.raises(Aal5Error, match="CRC"):
            aal5_reassemble(cells)

    def test_missing_end_mark_rejected(self):
        cells = aal5_segment(b"e" * 500, 0, 32)
        with pytest.raises(Aal5Error, match="AUU"):
            aal5_reassemble(cells[:-1])

    def test_interleaved_frames_rejected(self):
        first = aal5_segment(b"a" * 100, 0, 32)
        second = aal5_segment(b"b" * 100, 0, 32)
        with pytest.raises(Aal5Error, match="non-final"):
            aal5_reassemble(first + second)

    def test_no_cells_rejected(self):
        with pytest.raises(Aal5Error, match="no cells"):
            aal5_reassemble([])


class TestOverheadAccounting:
    def test_per_frame_tax(self):
        # 1 byte of user data still occupies a full 53-byte cell: the
        # small-message efficiency question on ATM.
        assert cells_for_frame(1) == 1
        wire = cells_for_frame(1) * 53
        assert wire == 53

    def test_padding_within_multiple_cells(self):
        # 100 B + 8 B trailer = 108 B -> 3 cells (144 B payload capacity).
        assert cells_for_frame(100) == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            cells_for_frame(-1)
