"""VC identifiers and translation tables."""

import pytest

from repro.atm.vc import VcIdentifier, VcTable, VcTableError


class TestVcTable:
    def test_install_and_lookup(self):
        table = VcTable()
        table.install(VcIdentifier(0, 0, 32), VcIdentifier(3, 0, 48))
        assert table.lookup(0, 0, 32) == (3, 0, 48)

    def test_unknown_lookup_raises(self):
        with pytest.raises(VcTableError, match="no VC"):
            VcTable().lookup(0, 0, 32)

    def test_duplicate_install_rejected(self):
        table = VcTable()
        inbound = VcIdentifier(1, 0, 40)
        table.install(inbound, VcIdentifier(2, 0, 41))
        with pytest.raises(VcTableError, match="already"):
            table.install(inbound, VcIdentifier(3, 0, 42))

    def test_remove(self):
        table = VcTable()
        inbound = VcIdentifier(1, 0, 40)
        table.install(inbound, VcIdentifier(2, 0, 41))
        table.remove(inbound)
        assert not table.has(1, 0, 40)
        with pytest.raises(VcTableError):
            table.remove(inbound)

    def test_free_vci_skips_reserved_and_used(self):
        table = VcTable()
        assert table.free_vci(0) == 32  # VCIs < 32 reserved
        table.install(VcIdentifier(0, 0, 32), VcIdentifier(1, 0, 32))
        assert table.free_vci(0) == 33

    def test_free_vci_per_port(self):
        table = VcTable()
        table.install(VcIdentifier(0, 0, 32), VcIdentifier(1, 0, 32))
        assert table.free_vci(5) == 32  # a different port is untouched

    def test_entries_snapshot(self):
        table = VcTable()
        table.install(VcIdentifier(0, 0, 32), VcIdentifier(1, 0, 33))
        entries = table.entries()
        assert entries == {(0, 0, 32): (1, 0, 33)}
        entries.clear()  # snapshot: must not affect the table
        assert len(table) == 1
