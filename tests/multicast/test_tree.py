"""Deterministic multicast spanning tree."""

import networkx as nx
import pytest

from repro.multicast.tree import (
    spanning_tree_children,
    tree_depth,
    tree_parent,
)


def members(count):
    return [f"m{i:03d}" for i in range(count)]


class TestTreeStructure:
    def test_root_children_respect_fanout(self):
        group = members(10)
        children = spanning_tree_children(group, group[0], group[0], fanout=2)
        assert len(children) == 2

    def test_leaves_have_no_children(self):
        group = members(4)
        # Last member in the rotated order is a leaf for fanout 2.
        assert spanning_tree_children(group, group[0], group[3]) == []

    def test_edges_form_spanning_tree(self):
        """networkx check: connected, acyclic, exactly n-1 edges."""
        group = members(17)
        for origin in (group[0], group[8], group[16]):
            graph = nx.Graph()
            graph.add_nodes_from(group)
            for member in group:
                for child in spanning_tree_children(group, origin, member):
                    graph.add_edge(member, child)
            assert nx.is_tree(graph)
            assert graph.number_of_edges() == len(group) - 1

    def test_every_member_has_one_parent_except_origin(self):
        group = members(9)
        origin = group[4]
        child_sets = {
            member: spanning_tree_children(group, origin, member)
            for member in group
        }
        parent_count = {member: 0 for member in group}
        for member, children in child_sets.items():
            for child in children:
                parent_count[child] += 1
        assert parent_count[origin] == 0
        assert all(
            parent_count[m] == 1 for m in group if m != origin
        )

    def test_parent_child_consistency(self):
        group = members(12)
        origin = group[3]
        for member in group:
            parent = tree_parent(group, origin, member)
            if member == origin:
                assert parent is None
            else:
                assert member in spanning_tree_children(group, origin, parent)

    def test_same_tree_regardless_of_membership_order(self):
        ordered = members(8)
        shuffled = list(reversed(ordered))
        for member in ordered:
            assert spanning_tree_children(
                ordered, ordered[2], member
            ) == spanning_tree_children(shuffled, ordered[2], member)

    def test_fanout_three(self):
        group = members(13)
        children = spanning_tree_children(group, group[0], group[0], fanout=3)
        assert len(children) == 3

    def test_origin_must_be_member(self):
        with pytest.raises(ValueError, match="not a group member"):
            spanning_tree_children(members(3), "stranger", "m000")

    def test_me_must_be_member(self):
        group = members(3)
        with pytest.raises(ValueError, match="not in the group"):
            spanning_tree_children(group, group[0], "stranger")

    def test_bad_fanout(self):
        group = members(3)
        with pytest.raises(ValueError, match="fanout"):
            spanning_tree_children(group, group[0], group[0], fanout=0)


class TestTreeDepth:
    def test_logarithmic_growth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(3) == 1
        assert tree_depth(4) == 2
        assert tree_depth(7) == 2
        assert tree_depth(8) == 3

    def test_unary_tree_is_a_chain(self):
        assert tree_depth(5, fanout=1) == 4

    def test_empty_group(self):
        assert tree_depth(0) == 0

    def test_depth_beats_repetitive_for_large_groups(self):
        # The latency argument for the spanning tree.
        for count in (16, 64, 256):
            assert tree_depth(count) < count - 1
