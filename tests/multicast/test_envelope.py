"""Multicast envelope codec."""

import pytest

from repro.multicast.envelope import EnvelopeError, MulticastEnvelope


def test_roundtrip():
    envelope = MulticastEnvelope("team", "10.0.0.1:5000", 7, True, b"payload")
    assert MulticastEnvelope.decode(envelope.encode()) == envelope


def test_forward_flag_both_ways():
    for forward in (True, False):
        envelope = MulticastEnvelope("g", "h:1", 1, forward, b"")
        assert MulticastEnvelope.decode(envelope.encode()).forward is forward


def test_empty_payload():
    envelope = MulticastEnvelope("g", "h:1", 0, False, b"")
    assert MulticastEnvelope.decode(envelope.encode()).payload == b""


def test_binary_payload():
    payload = bytes(range(256))
    envelope = MulticastEnvelope("g", "h:1", 3, True, payload)
    assert MulticastEnvelope.decode(envelope.encode()).payload == payload


def test_bad_magic_rejected():
    envelope = MulticastEnvelope("g", "h:1", 1, True, b"x").encode()
    with pytest.raises(EnvelopeError, match="magic"):
        MulticastEnvelope.decode(b"\x00" + envelope[1:])


def test_truncated_rejected():
    frame = MulticastEnvelope("g", "h:1", 1, True, b"payload").encode()
    with pytest.raises(EnvelopeError):
        MulticastEnvelope.decode(frame[:-3])
