"""Collective operations: broadcast, gather, scatter, reduce, allreduce."""

import threading

import pytest

from repro.multicast import Collective, GroupManager, fold_concat, fold_sum_u64
from repro.multicast.group import GroupError


@pytest.fixture
def team(node_factory):
    nodes = [node_factory(f"c{i}") for i in range(4)]
    managers = [GroupManager(node) for node in nodes]
    managers[0].create("sq")
    for manager in managers[1:]:
        manager.join("sq", nodes[0].address, timeout=5.0)
    collectives = [Collective(manager) for manager in managers]
    return managers, collectives


def run_lockstep(collectives, fn, timeout=20.0):
    """Run fn(index, collective) on every member concurrently (SPMD)."""
    results = [None] * len(collectives)
    errors = []

    def worker(index, collective):
        try:
            results[index] = fn(index, collective)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((index, exc))

    threads = [
        threading.Thread(target=worker, args=(index, collective))
        for index, collective in enumerate(collectives)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    assert not errors, errors
    return results


class TestBroadcast:
    def test_root_value_reaches_all(self, team):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            payload = b"announcement" if index == 0 else None
            return collective.broadcast("sq", payload, root=root)

        results = run_lockstep(collectives, op)
        assert results == [b"announcement"] * 4

    @pytest.mark.parametrize("algorithm", ["repetitive", "spanning_tree"])
    def test_both_algorithms(self, team, algorithm):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            payload = b"via-" + algorithm.encode() if index == 0 else None
            return collective.broadcast("sq", payload, root=root,
                                        algorithm=algorithm)

        results = run_lockstep(collectives, op)
        assert all(r == b"via-" + algorithm.encode() for r in results)

    def test_consecutive_broadcasts_keep_epochs_apart(self, team):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            first = collective.broadcast(
                "sq", b"first" if index == 0 else None, root=root)
            second = collective.broadcast(
                "sq", b"second" if index == 0 else None, root=root)
            return (first, second)

        results = run_lockstep(collectives, op)
        assert all(r == (b"first", b"second") for r in results)

    def test_root_without_payload_rejected(self, team):
        managers, collectives = team
        with pytest.raises(GroupError, match="payload"):
            collectives[0].broadcast("sq", None, root=managers[0].me)


class TestGather:
    def test_root_collects_everything_tagged(self, team):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            return collective.gather("sq", f"part-{index}".encode(), root=root)

        results = run_lockstep(collectives, op)
        assert results[1] is None and results[2] is None
        gathered = results[0]
        assert len(gathered) == 4
        assert gathered[managers[2].me] == b"part-2"

    def test_non_coordinator_root(self, team):
        managers, collectives = team
        root = managers[3].me

        def op(index, collective):
            return collective.gather("sq", bytes([index]), root=root)

        results = run_lockstep(collectives, op)
        assert results[3] is not None
        assert set(results[3].values()) == {b"\x00", b"\x01", b"\x02", b"\x03"}


class TestScatter:
    def test_each_member_gets_its_chunk(self, team):
        managers, collectives = team
        root = managers[0].me
        chunks = {
            manager.me: f"chunk-for-{index}".encode()
            for index, manager in enumerate(managers)
        }

        def op(index, collective):
            supplied = chunks if index == 0 else None
            return collective.scatter("sq", supplied, root=root)

        results = run_lockstep(collectives, op)
        assert results == [f"chunk-for-{i}".encode() for i in range(4)]

    def test_missing_chunk_rejected(self, team):
        managers, collectives = team
        with pytest.raises(GroupError, match="missing"):
            collectives[0].scatter("sq", {managers[0].me: b"x"},
                                   root=managers[0].me)


class TestReduce:
    def test_concat_in_member_order(self, team):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            return collective.reduce(
                "sq", f"[{index}]".encode(), fold_concat, root=root
            )

        results = run_lockstep(collectives, op)
        reduced = results[0]
        # Member order is id order, deterministic but not index order;
        # every piece appears exactly once.
        assert sorted(
            reduced[i : i + 3] for i in range(0, len(reduced), 3)
        ) == [b"[0]", b"[1]", b"[2]", b"[3]"]

    def test_sum_fold(self, team):
        managers, collectives = team
        root = managers[0].me

        def op(index, collective):
            value = (index + 1).to_bytes(8, "big")
            return collective.reduce("sq", value, fold_sum_u64, root=root)

        results = run_lockstep(collectives, op)
        assert int.from_bytes(results[0], "big") == 1 + 2 + 3 + 4


class TestAllreduce:
    def test_everyone_gets_the_sum(self, team):
        managers, collectives = team

        def op(index, collective):
            value = (10 * (index + 1)).to_bytes(8, "big")
            return collective.allreduce("sq", value, fold_sum_u64)

        results = run_lockstep(collectives, op)
        assert all(int.from_bytes(r, "big") == 100 for r in results)
