"""Live group communication: membership, multicast, barriers."""

import threading

import pytest

from repro.multicast import GroupManager
from repro.multicast.group import GroupError


@pytest.fixture
def team(node_factory):
    """Five nodes with managers; node 0 coordinates group 'team'."""
    nodes = [node_factory(f"g{i}") for i in range(5)]
    managers = [GroupManager(node) for node in nodes]
    managers[0].create("team")
    for manager in managers[1:]:
        manager.join("team", nodes[0].address, timeout=5.0)
    return nodes, managers


class TestMembership:
    def test_everyone_sees_full_membership(self, team):
        nodes, managers = team
        for manager in managers:
            view = manager.view("team")
            assert len(view.members) == 5
            assert view.coordinator == managers[0].me

    def test_leave_propagates(self, team):
        import time

        nodes, managers = team
        managers[4].leave("team")
        # The leave PDU needs a control-plane round trip; poll briefly.
        for _ in range(100):
            if len(managers[0].view("team").members) == 4:
                break
            time.sleep(0.02)
        assert len(managers[0].view("team").members) == 4
        with pytest.raises(GroupError):
            managers[4].view("team")

    def test_duplicate_create_rejected(self, team):
        _, managers = team
        with pytest.raises(GroupError, match="already exists"):
            managers[0].create("team")

    def test_view_of_unknown_group(self, team):
        _, managers = team
        with pytest.raises(GroupError, match="not a member"):
            managers[1].view("nonexistent")

    def test_coordinator_cannot_leave(self, team):
        _, managers = team
        with pytest.raises(GroupError, match="coordinator"):
            managers[0].leave("team")


class TestMulticast:
    @pytest.mark.parametrize("algorithm", ["repetitive", "spanning_tree"])
    def test_reaches_all_other_members(self, team, algorithm):
        _, managers = team
        managers[0].multicast("team", b"to everyone", algorithm=algorithm,
                              wait=True)
        for manager in managers[1:]:
            assert manager.recv("team", timeout=5.0) == b"to everyone"

    @pytest.mark.parametrize("algorithm", ["repetitive", "spanning_tree"])
    def test_non_coordinator_origin(self, team, algorithm):
        _, managers = team
        managers[3].multicast("team", b"from member 3", algorithm=algorithm,
                              wait=True)
        for index, manager in enumerate(managers):
            if index == 3:
                continue
            assert manager.recv("team", timeout=5.0) == b"from member 3"

    def test_sender_does_not_self_deliver(self, team):
        _, managers = team
        managers[0].multicast("team", b"no echo", wait=True)
        assert managers[0].recv("team", timeout=0.3) is None

    def test_unknown_algorithm_rejected(self, team):
        _, managers = team
        with pytest.raises(ValueError, match="multicast algorithm"):
            managers[0].multicast("team", b"x", algorithm="flooding")

    def test_multiple_messages_ordered_per_origin(self, team):
        _, managers = team
        for index in range(5):
            managers[0].multicast("team", f"seq-{index}".encode(),
                                  algorithm="spanning_tree", wait=True)
        for manager in managers[1:]:
            got = [manager.recv("team", timeout=5.0) for _ in range(5)]
            assert got == [f"seq-{i}".encode() for i in range(5)]


class TestBarrier:
    def test_barrier_releases_all(self, team):
        _, managers = team
        reached = []

        def arrive(manager, index):
            manager.barrier("team", timeout=10.0)
            reached.append(index)

        threads = [
            threading.Thread(target=arrive, args=(manager, index))
            for index, manager in enumerate(managers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15.0)
        assert sorted(reached) == [0, 1, 2, 3, 4]

    def test_barrier_blocks_until_last(self, team):
        _, managers = team
        order = []

        def late_arriver():
            order.append("late-arrived")
            managers[4].barrier("team", timeout=10.0)

        def early(manager, index):
            manager.barrier("team", timeout=10.0)
            order.append(f"released-{index}")

        threads = [
            threading.Thread(target=early, args=(managers[i], i))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)  # everyone else is parked at the barrier
        assert not any(o.startswith("released") for o in order)
        late = threading.Thread(target=late_arriver)
        late.start()
        for thread in threads + [late]:
            thread.join(15.0)
        assert order[0] == "late-arrived"
        assert sum(1 for o in order if o.startswith("released")) == 4

    def test_consecutive_barriers(self, team):
        _, managers = team

        def double(manager):
            manager.barrier("team", timeout=10.0)
            manager.barrier("team", timeout=10.0)
            return True

        threads = [
            threading.Thread(target=double, args=(manager,))
            for manager in managers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(20.0)
            assert not thread.is_alive()
