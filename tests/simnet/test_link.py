"""Simulated links: serialization, propagation, cell-accurate loss."""

import pytest

from repro.atm.aal5 import cells_for_frame
from repro.simnet.kernel import Simulator
from repro.simnet.link import AtmLinkModel, Link


class TestPlainLink:
    def test_latency_is_serialization_plus_propagation(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8e6, prop_delay=0.001)
        arrivals = []
        link.transfer_size(1000, lambda: arrivals.append(sim.now))
        sim.run()
        # 1000 B at 1 MB/s = 1 ms, plus 1 ms propagation.
        assert arrivals[0] == pytest.approx(0.002)

    def test_back_to_back_frames_serialize(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8e6, prop_delay=0.0)
        arrivals = []
        link.transfer_size(1000, lambda: arrivals.append(sim.now))
        link.transfer_size(1000, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_payload_variant_delivers_bytes(self):
        sim = Simulator()
        link = Link(sim)
        got = []
        link.transfer(b"frame-bytes", got.append)
        sim.run()
        assert got == [b"frame-bytes"]

    def test_loss(self):
        sim = Simulator()
        link = Link(sim, loss_rate=0.5, seed=3)
        delivered = []
        for _ in range(100):
            link.transfer_size(10, lambda: delivered.append(1))
        sim.run()
        assert link.frames_dropped == 100 - len(delivered)
        assert 25 < len(delivered) < 75

    def test_deterministic_loss_by_seed(self):
        def run(seed):
            sim = Simulator()
            link = Link(sim, loss_rate=0.3, seed=seed)
            delivered = []
            for index in range(50):
                link.transfer_size(10, lambda i=index: delivered.append(i))
            sim.run()
            return delivered

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, loss_rate=1.0)


class TestAtmLinkModel:
    def test_wire_bytes_include_cell_tax(self):
        sim = Simulator()
        link = AtmLinkModel(sim)
        assert link.wire_bytes(1) == 53
        assert link.wire_bytes(4096) == cells_for_frame(4096) * 53

    def test_latency_reflects_cellification(self):
        sim = Simulator()
        plain = Link(sim, prop_delay=0.0)
        atm = AtmLinkModel(sim, prop_delay=0.0)
        t_plain, t_atm = [], []
        plain.transfer_size(4096, lambda: t_plain.append(sim.now))
        sim.run()
        base = t_plain[0]
        sim2 = Simulator()
        atm = AtmLinkModel(sim2, prop_delay=0.0)
        atm.transfer_size(4096, lambda: t_atm.append(sim2.now))
        sim2.run()
        assert t_atm[0] > base  # ~10% header tax

    def test_one_lost_cell_kills_whole_frame(self):
        sim = Simulator()
        # Loss probability high enough that a multi-cell frame almost
        # surely loses at least one cell.
        link = AtmLinkModel(sim, cell_loss_rate=0.05, seed=1)
        delivered = []
        link.transfer_size(65536, lambda: delivered.append(1))  # ~1367 cells
        sim.run()
        assert delivered == []
        assert link.cells_dropped > 0
        assert link.frames_dropped == 0 or True  # frame drop tracked via cells

    def test_small_frames_mostly_survive_light_loss(self):
        sim = Simulator()
        link = AtmLinkModel(sim, cell_loss_rate=0.001, seed=5)
        delivered = []
        for _ in range(100):
            link.transfer_size(40, lambda: delivered.append(1))  # 1 cell each
        sim.run()
        assert len(delivered) > 85
