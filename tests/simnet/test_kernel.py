"""Discrete-event kernel: clock, processes, events."""

import pytest

from repro.simnet.kernel import SimError, Simulator


class TestScheduling:
    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, log.append, "late")
        sim.schedule(0.1, log.append, "early")
        sim.schedule(0.2, log.append, "middle")
        sim.run()
        assert log == ["early", "middle", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for index in range(5):
            sim.schedule(0.1, log.append, index)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_clock_reflects_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]
        assert sim.now == 0.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimError, match="past"):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "before")
        sim.schedule(3.0, log.append, "after")
        sim.run(until=2.0)
        assert log == ["before"]
        assert sim.now == 2.0
        sim.run()
        assert log == ["before", "after"]

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        forever()
        with pytest.raises(SimError, match="runaway"):
            sim.run(max_events=100)


class TestProcesses:
    def test_delay_yields(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 1.5
            trace.append(sim.now)
            yield 0.5
            trace.append(sim.now)
            return "done"

        result = sim.run_process(proc())
        assert result == "done"
        assert trace == [0.0, 1.5, 2.0]

    def test_event_wait_and_value(self):
        sim = Simulator()
        gate = sim.event()

        def waiter():
            value = yield gate
            return value

        process = sim.spawn(waiter(), "waiter")
        sim.schedule(2.0, gate.succeed, "the value")
        sim.run()
        assert process.result == "the value"
        assert not process.alive

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed(7)

        def waiter():
            return (yield gate)

        assert sim.run_process(waiter()) == 7

    def test_double_trigger_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimError, match="already"):
            gate.succeed()

    def test_bad_yield_type(self):
        sim = Simulator()

        def bad():
            yield "not a delay"

        with pytest.raises(SimError, match="yielded"):
            sim.run_process(bad())

    def test_negative_delay_in_process(self):
        sim = Simulator()

        def bad():
            yield -1.0

        with pytest.raises(SimError, match="negative"):
            sim.run_process(bad())

    def test_deadlocked_process_detected(self):
        sim = Simulator()
        never = sim.event()

        def stuck():
            yield never

        with pytest.raises(SimError, match="did not finish"):
            sim.run_process(stuck())

    def test_done_event_chains_processes(self):
        sim = Simulator()

        def inner():
            yield 1.0
            return 5

        def outer():
            process = sim.spawn(inner(), "inner")
            value = yield process.done_event
            return value * 2

        assert sim.run_process(outer()) == 10

    def test_all_of(self):
        sim = Simulator()
        gates = [sim.event() for _ in range(3)]

        def waiter():
            values = yield sim.all_of(gates)
            return values

        process = sim.spawn(waiter(), "w")
        for index, gate in enumerate(gates):
            sim.schedule(0.1 * (index + 1), gate.succeed, index)
        sim.run()
        assert process.result == [0, 1, 2]

    def test_all_of_empty(self):
        sim = Simulator()

        def waiter():
            return (yield sim.all_of([]))

        assert sim.run_process(waiter()) == []


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def proc(tag, delay):
                for _ in range(3):
                    yield delay
                    trace.append((tag, round(sim.now, 9)))

            sim.spawn(proc("a", 0.1), "a")
            sim.spawn(proc("b", 0.07), "b")
            sim.run()
            return trace

        assert run_once() == run_once()
