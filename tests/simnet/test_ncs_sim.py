"""Real NCS engines driven by the discrete-event kernel."""

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.link import AtmLinkModel, Link
from repro.simnet.ncs_sim import connect_pair

MESSAGE = bytes(range(256)) * 256  # 64 KB


def clean_pair(sim, **options):
    return connect_pair(sim, AtmLinkModel(sim), AtmLinkModel(sim), **options)


class TestCleanTransfer:
    def test_delivery_and_completion(self):
        sim = Simulator()
        a, b = clean_pair(sim)
        done = a.send(MESSAGE)
        sim.run()
        assert done.triggered and done.value is not None
        assert b.delivered == [MESSAGE]

    def test_multiple_messages_in_order(self):
        sim = Simulator()
        a, b = clean_pair(sim)
        payloads = [bytes([i]) * 5000 for i in range(8)]
        events = [a.send(p) for p in payloads]
        sim.run()
        assert all(e.value is not None for e in events)
        assert b.delivered == payloads

    def test_bidirectional(self):
        sim = Simulator()
        a, b = clean_pair(sim)
        a.send(b"forward" * 100)
        b.send(b"backward" * 100)
        sim.run()
        assert b.delivered == [b"forward" * 100]
        assert a.delivered == [b"backward" * 100]

    @pytest.mark.parametrize("ec", ["selective_repeat", "go_back_n", "none"])
    @pytest.mark.parametrize("fc", ["credit", "window", "rate", "none"])
    def test_every_algorithm_combination(self, ec, fc):
        sim = Simulator()
        a, b = clean_pair(sim, error_control=ec, flow_control=fc)
        a.send(MESSAGE)
        sim.run()
        assert b.delivered == [MESSAGE]


class TestLossRecovery:
    @pytest.mark.parametrize("seed", range(4))
    def test_selective_repeat_recovers(self, seed):
        sim = Simulator()
        a, b = connect_pair(
            sim,
            AtmLinkModel(sim, cell_loss_rate=0.002, seed=seed),
            AtmLinkModel(sim, cell_loss_rate=0.002, seed=seed + 50),
        )
        done = a.send(MESSAGE)
        sim.run()
        assert done.value is not None, f"seed {seed}: message failed"
        assert b.delivered == [MESSAGE]
        assert a.ec_sender.retransmitted_sdus > 0 or True

    def test_go_back_n_recovers(self):
        sim = Simulator()
        a, b = connect_pair(
            sim,
            AtmLinkModel(sim, cell_loss_rate=0.001, seed=11),
            AtmLinkModel(sim, cell_loss_rate=0.001, seed=12),
            error_control="go_back_n",
        )
        done = a.send(MESSAGE)
        sim.run()
        assert done.value is not None
        assert b.delivered == [MESSAGE]

    def test_null_ec_loses_under_loss(self):
        sim = Simulator()
        a, b = connect_pair(
            sim,
            AtmLinkModel(sim, cell_loss_rate=0.01, seed=2),
            AtmLinkModel(sim, cell_loss_rate=0.01, seed=3),
            error_control="none",
        )
        a.send(MESSAGE)  # 16 SDUs; virtually certain to lose one
        sim.run()
        assert b.delivered == []

    def test_failure_reported_on_total_blackout(self):
        sim = Simulator()
        a, b = connect_pair(
            sim,
            AtmLinkModel(sim, cell_loss_rate=0.97, seed=4),
            AtmLinkModel(sim, cell_loss_rate=0.97, seed=5),
            max_retries=3,
            retransmit_timeout=0.02,
        )
        done = a.send(MESSAGE)
        sim.run()
        assert done.triggered
        assert done.value is None  # failure signal
        assert a.failed_msgs


class TestSeparationOfControlAndData:
    def test_control_pdus_ride_control_links(self):
        sim = Simulator()
        data_ab = AtmLinkModel(sim)
        data_ba = AtmLinkModel(sim)
        ctrl_ab = Link(sim)
        ctrl_ba = Link(sim)
        a, b = connect_pair(sim, data_ab, data_ba, ctrl_ab, ctrl_ba)
        a.send(MESSAGE)
        sim.run()
        assert b.delivered == [MESSAGE]
        # Data flowed only a->b on the data link; the reverse data link
        # carried nothing, all feedback used the control links.
        assert data_ba.frames_sent == 0
        assert ctrl_ba.frames_sent > 0  # credits + ACK bitmap


class TestDeterminism:
    def test_same_seeds_same_timeline(self):
        def run():
            sim = Simulator()
            a, b = connect_pair(
                sim,
                AtmLinkModel(sim, cell_loss_rate=0.003, seed=21),
                AtmLinkModel(sim, cell_loss_rate=0.003, seed=22),
            )
            done = a.send(MESSAGE)
            sim.run()
            return (done.value, a.sdus_transmitted, a.control_pdus_sent)

        assert run() == run()
