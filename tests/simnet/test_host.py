"""Simulated hosts: the single-CPU contention model."""

import pytest

from repro.simnet.host import SimHost
from repro.simnet.kernel import Simulator
from repro.simnet.platforms import RS6000_AIX41, SUN4_SUNOS55


class TestCompute:
    def test_compute_takes_requested_time(self):
        sim = Simulator()
        host = SimHost(sim, "h", SUN4_SUNOS55)

        def proc():
            yield host.compute(0.25)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(0.25)

    def test_cpu_serializes_concurrent_work(self):
        # One processor: two 100 ms jobs take 200 ms, not 100.
        sim = Simulator()
        host = SimHost(sim, "h", SUN4_SUNOS55)
        finish = []

        def proc(tag):
            yield host.compute(0.1)
            finish.append((tag, sim.now))

        sim.spawn(proc("a"), "a")
        sim.spawn(proc("b"), "b")
        sim.run()
        times = sorted(t for _tag, t in finish)
        assert times == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_busy_total_accumulates(self):
        sim = Simulator()
        host = SimHost(sim, "h", RS6000_AIX41)

        def proc():
            yield host.compute(0.1)
            yield host.compute(0.2)

        sim.run_process(proc())
        assert host.cpu_busy_total == pytest.approx(0.3)

    def test_negative_compute_rejected(self):
        sim = Simulator()
        host = SimHost(sim, "h", SUN4_SUNOS55)
        with pytest.raises(ValueError):
            host.compute(-0.1)

    def test_idle_query(self):
        sim = Simulator()
        host = SimHost(sim, "h", SUN4_SUNOS55)
        host.compute(1.0)
        assert not host.idle_at(0.5)
        assert host.idle_at(1.5)


class TestPlatformProfiles:
    def test_rs6000_moves_bytes_cheaper(self):
        assert RS6000_AIX41.memcpy_per_byte_s < SUN4_SUNOS55.memcpy_per_byte_s
        assert RS6000_AIX41.tcp_per_byte_s < SUN4_SUNOS55.tcp_per_byte_s

    def test_user_threads_cheaper_than_kernel(self):
        for platform in (SUN4_SUNOS55, RS6000_AIX41):
            assert platform.ctx_switch_user_s < platform.ctx_switch_kernel_s
            assert platform.sync_user_s < platform.sync_kernel_s

    def test_cost_helpers(self):
        cost = SUN4_SUNOS55.tcp_cost(1000)
        assert cost == pytest.approx(
            SUN4_SUNOS55.per_message_s + 1000 * SUN4_SUNOS55.tcp_per_byte_s
        )
        assert SUN4_SUNOS55.copy_cost(100, copies=2) == pytest.approx(
            200 * SUN4_SUNOS55.memcpy_per_byte_s
        )

    def test_heterogeneity_by_arch_code(self):
        from repro.simnet.platforms import heterogeneous

        assert heterogeneous(SUN4_SUNOS55, RS6000_AIX41)
        assert not heterogeneous(SUN4_SUNOS55, SUN4_SUNOS55)
