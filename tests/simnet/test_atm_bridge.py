"""NCS engines across the switched ATM fabric."""

import pytest

from repro.simnet.atm_bridge import CrossTrafficSource, build_switched_pair
from repro.simnet.kernel import Simulator

MESSAGE = bytes(range(256)) * 512  # 128 KB


class TestSwitchedFabric:
    def test_clean_delivery(self):
        sim = Simulator()
        a, b, _network = build_switched_pair(sim, retransmit_timeout=0.02)
        done = a.send(MESSAGE)
        sim.run()
        assert done.value is not None
        assert b.delivered == [MESSAGE]

    def test_bidirectional_over_distinct_vcs(self):
        sim = Simulator()
        a, b, network = build_switched_pair(sim, retransmit_timeout=0.02)
        a.send(b"a-to-b" * 1000)
        b.send(b"b-to-a" * 1000)
        sim.run()
        assert b.delivered == [b"a-to-b" * 1000]
        assert a.delivered == [b"b-to-a" * 1000]

    def test_vc_tables_installed(self):
        sim = Simulator()
        _a, _b, network = build_switched_pair(sim)
        # Two data VCs (one per direction) across both switches.
        assert len(network.switches["switch-1"].vc_table) == 2
        assert len(network.switches["switch-2"].vc_table) == 2

    def test_congestion_drops_then_recovery(self):
        sim = Simulator()
        a, b, network = build_switched_pair(
            sim,
            switch_queue_capacity=64,
            retransmit_timeout=0.02,
            max_retries=30,
        )
        network.add_host("n-src")
        network.add_host("n-dst")
        network.link("n-src", "switch-1", delay=5e-6)
        network.link("n-dst", "switch-2", delay=5e-6)
        noise = CrossTrafficSource(
            network, "n-src", "n-dst", frame_size=16384, rate_fps=1800.0
        )
        noise.start(duration=1.0)
        done = a.send(MESSAGE)
        sim.run(max_events=5_000_000)
        dropped = sum(
            s.stats()["dropped"] for s in network.switches.values()
        )
        assert dropped > 0, "fabric was not actually congested"
        assert done.value is not None, "error control failed to recover"
        assert b.delivered == [MESSAGE]

    def test_cross_traffic_counts_frames(self):
        sim = Simulator()
        _a, _b, network = build_switched_pair(sim)
        network.add_host("x-src")
        network.add_host("x-dst")
        network.link("x-src", "switch-1")
        network.link("x-dst", "switch-2")
        source = CrossTrafficSource(
            network, "x-src", "x-dst", frame_size=4096, rate_fps=1000.0
        )
        source.start(duration=0.05)
        sim.run()
        assert source.frames_injected == pytest.approx(50, abs=3)
