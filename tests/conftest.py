"""Shared fixtures for the NCS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig


@pytest.fixture
def node_factory():
    """Create nodes that are reliably torn down after the test."""
    nodes = []

    def make(name: str, **kwargs) -> Node:
        node = Node(NodeConfig(name=name, **kwargs))
        nodes.append(node)
        return node

    yield make
    for node in nodes:
        node.close()


@pytest.fixture
def connected_pair(node_factory):
    """A ready client/server connection over SCI with defaults."""

    def make(config: ConnectionConfig = None, **node_kwargs):
        client = node_factory("client", **node_kwargs)
        server = node_factory("server", **node_kwargs)
        conn = client.connect(
            server.address, config or ConnectionConfig(), peer_name="server"
        )
        peer = server.accept(timeout=5.0)
        assert peer is not None, "server never saw the connection"
        return conn, peer

    return make
