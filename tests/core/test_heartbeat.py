"""Heartbeat failure detection over the control plane."""

import time

import pytest

from repro.core.heartbeat import FailureDetector, is_reply, make_reply
from repro.protocol.pdus import HeartbeatPdu


class TestPduDiscrimination:
    def test_request_is_not_reply(self):
        assert not is_reply(HeartbeatPdu("a", 7))

    def test_reply_marked(self):
        reply = make_reply("b", HeartbeatPdu("a", 7))
        assert is_reply(reply)
        assert reply.sequence & 0x7FFFFFFF == 7
        assert reply.node == "b"


class TestDetector:
    def wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return False

    def test_live_peer_never_suspected(self, node_factory):
        a = node_factory("hb-a")
        b = node_factory("hb-b")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2, on_failure=failures.append
        )
        detector.monitor(b.address)
        assert self.wait_for(
            lambda: (detector.status(b.address) or None)
            and detector.status(b.address).replies >= 3
        )
        assert failures == []
        assert detector.alive_peers() == [b.address]
        detector.stop()

    def test_dead_peer_detected(self, node_factory):
        a = node_factory("hb-c")
        b = node_factory("hb-d")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.25, on_failure=failures.append
        )
        detector.monitor(b.address)
        assert self.wait_for(
            lambda: detector.status(b.address).replies >= 2
        ), "peer never answered while alive"
        b.close()
        assert self.wait_for(lambda: failures == [b.address], timeout=5.0)
        assert detector.status(b.address).suspected
        assert detector.alive_peers() == []
        detector.stop()

    def test_multiple_peers_tracked_independently(self, node_factory):
        a = node_factory("hb-e")
        alive = node_factory("hb-f")
        doomed = node_factory("hb-g")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.25, on_failure=failures.append
        )
        detector.monitor(alive.address)
        detector.monitor(doomed.address)
        assert self.wait_for(
            lambda: detector.status(alive.address).replies >= 2
            and detector.status(doomed.address).replies >= 2
        )
        doomed.close()
        assert self.wait_for(lambda: failures == [doomed.address])
        assert detector.alive_peers() == [alive.address]
        detector.stop()

    def test_unmonitor_stops_probing(self, node_factory):
        a = node_factory("hb-h")
        b = node_factory("hb-i")
        detector = FailureDetector(a, interval=0.03, suspect_after=0.2)
        detector.monitor(b.address)
        detector.unmonitor(b.address)
        assert detector.status(b.address) is None
        detector.stop()

    def test_bad_parameters_rejected(self, node_factory):
        a = node_factory("hb-j")
        with pytest.raises(ValueError, match="suspect_after"):
            FailureDetector(a, interval=0.1, suspect_after=0.05)


class TestOutageSemantics:
    """on_failure fires exactly once per outage and re-arms on recovery."""

    def wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return False

    def test_failure_fires_once_per_outage(self, node_factory):
        a = node_factory("hb-once-a")
        b = node_factory("hb-once-b")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2, on_failure=failures.append
        )
        detector.monitor(b.address)
        assert self.wait_for(lambda: detector.status(b.address).replies >= 2)
        b.close()
        assert self.wait_for(lambda: len(failures) == 1)
        # Three more suspicion windows of continued silence: no repeats.
        time.sleep(3 * 0.2)
        assert failures == [b.address]
        detector.stop()

    def test_detector_rearms_after_recovery(self, node_factory):
        a = node_factory("hb-arm-a")
        b = node_factory("hb-arm-b")
        failures, recoveries = [], []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2,
            on_failure=failures.append, on_recovery=recoveries.append,
        )
        detector.monitor(b.address)
        assert self.wait_for(lambda: detector.status(b.address).replies >= 2)

        # Mute the probes: to the detector the peer has gone silent.
        real_probe = detector._probe
        detector._probe = lambda status: None
        assert self.wait_for(lambda: len(failures) == 1)

        # Speech resumes: recovery fires, and the next outage counts anew.
        detector._probe = real_probe
        assert self.wait_for(lambda: recoveries == [b.address])
        assert not detector.status(b.address).suspected
        detector._probe = lambda status: None
        assert self.wait_for(lambda: len(failures) == 2)
        assert failures == [b.address, b.address]
        detector.stop()

    def test_dial_failure_counts_as_silence(self, node_factory):
        import socket

        a = node_factory("hb-dial-a")
        # A port that refuses connections: bound, closed, never listening.
        probe_sock = socket.socket()
        probe_sock.bind(("127.0.0.1", 0))
        dead_address = probe_sock.getsockname()
        probe_sock.close()
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2, on_failure=failures.append
        )
        detector.monitor(dead_address)
        assert self.wait_for(lambda: failures == [dead_address]), (
            "an undialable peer must be reported, not probed forever"
        )
        assert detector.status(dead_address).probes == 0
        detector.stop()

    def test_added_listeners_fire_alongside_callbacks(self, node_factory):
        a = node_factory("hb-lsn-a")
        b = node_factory("hb-lsn-b")
        primary, secondary = [], []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2, on_failure=primary.append
        )
        detector.add_listener(on_failure=secondary.append)
        detector.monitor(b.address)
        assert self.wait_for(lambda: detector.status(b.address).replies >= 2)
        b.close()
        assert self.wait_for(lambda: primary == [b.address])
        assert self.wait_for(lambda: secondary == [b.address])
        detector.stop()
