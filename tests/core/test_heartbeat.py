"""Heartbeat failure detection over the control plane."""

import time

import pytest

from repro.core.heartbeat import FailureDetector, is_reply, make_reply
from repro.protocol.pdus import HeartbeatPdu


class TestPduDiscrimination:
    def test_request_is_not_reply(self):
        assert not is_reply(HeartbeatPdu("a", 7))

    def test_reply_marked(self):
        reply = make_reply("b", HeartbeatPdu("a", 7))
        assert is_reply(reply)
        assert reply.sequence & 0x7FFFFFFF == 7
        assert reply.node == "b"


class TestDetector:
    def wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return False

    def test_live_peer_never_suspected(self, node_factory):
        a = node_factory("hb-a")
        b = node_factory("hb-b")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.2, on_failure=failures.append
        )
        detector.monitor(b.address)
        assert self.wait_for(
            lambda: (detector.status(b.address) or None)
            and detector.status(b.address).replies >= 3
        )
        assert failures == []
        assert detector.alive_peers() == [b.address]
        detector.stop()

    def test_dead_peer_detected(self, node_factory):
        a = node_factory("hb-c")
        b = node_factory("hb-d")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.25, on_failure=failures.append
        )
        detector.monitor(b.address)
        assert self.wait_for(
            lambda: detector.status(b.address).replies >= 2
        ), "peer never answered while alive"
        b.close()
        assert self.wait_for(lambda: failures == [b.address], timeout=5.0)
        assert detector.status(b.address).suspected
        assert detector.alive_peers() == []
        detector.stop()

    def test_multiple_peers_tracked_independently(self, node_factory):
        a = node_factory("hb-e")
        alive = node_factory("hb-f")
        doomed = node_factory("hb-g")
        failures = []
        detector = FailureDetector(
            a, interval=0.03, suspect_after=0.25, on_failure=failures.append
        )
        detector.monitor(alive.address)
        detector.monitor(doomed.address)
        assert self.wait_for(
            lambda: detector.status(alive.address).replies >= 2
            and detector.status(doomed.address).replies >= 2
        )
        doomed.close()
        assert self.wait_for(lambda: failures == [doomed.address])
        assert detector.alive_peers() == [alive.address]
        detector.stop()

    def test_unmonitor_stops_probing(self, node_factory):
        a = node_factory("hb-h")
        b = node_factory("hb-i")
        detector = FailureDetector(a, interval=0.03, suspect_after=0.2)
        detector.monitor(b.address)
        detector.unmonitor(b.address)
        assert detector.status(b.address) is None
        detector.stop()

    def test_bad_parameters_rejected(self, node_factory):
        a = node_factory("hb-j")
        with pytest.raises(ValueError, match="suspect_after"):
            FailureDetector(a, interval=0.1, suspect_after=0.05)
