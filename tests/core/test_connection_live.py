"""Live connection behaviour: primitives, handles, stats, teardown."""

import pytest

from repro.core import (
    ConnectionClosedError,
    ConnectionConfig,
    SendStatus,
)


class TestSendRecv:
    def test_send_wait_blocks_until_acked(self, connected_pair):
        conn, peer = connected_pair()
        handle = conn.send(b"acked message", wait=True, timeout=5.0)
        assert handle.status is SendStatus.COMPLETED
        assert peer.recv(timeout=5.0) == b"acked message"

    def test_async_send_returns_pending_handle(self, connected_pair):
        conn, peer = connected_pair()
        handle = conn.send(b"fire and check later")
        assert peer.recv(timeout=5.0) == b"fire and check later"
        assert handle.wait(timeout=5.0)

    def test_empty_message(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(b"", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b""

    def test_message_larger_than_sdu(self, connected_pair):
        conn, peer = connected_pair()
        payload = bytes(range(256)) * 256  # 64 KB = 16 SDUs
        conn.send(payload, wait=True, timeout=10.0)
        assert peer.recv(timeout=5.0) == payload

    def test_many_messages_in_order(self, connected_pair):
        conn, peer = connected_pair()
        for index in range(50):
            conn.send(f"msg-{index:03d}".encode())
        received = [peer.recv(timeout=5.0) for _ in range(50)]
        assert received == [f"msg-{i:03d}".encode() for i in range(50)]

    def test_bidirectional_traffic(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(b"ping", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b"ping"
        peer.send(b"pong", wait=True, timeout=5.0)
        assert conn.recv(timeout=5.0) == b"pong"

    def test_recv_timeout_none_message(self, connected_pair):
        conn, _ = connected_pair()
        assert conn.recv(timeout=0.05) is None

    def test_try_recv(self, connected_pair):
        conn, peer = connected_pair()
        assert peer.try_recv() is None
        conn.send(b"polled", wait=True, timeout=5.0)
        for _ in range(200):
            frame = peer.try_recv()
            if frame is not None:
                break
        assert frame == b"polled"


class TestInstrumentation:
    def test_stamps_recorded_in_order(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(flow_control="none", error_control="none")
        )
        stamps = {}
        conn.send(b"x", instrument=stamps)
        assert peer.recv(timeout=5.0) == b"x"
        # The peer can hold the message before the Send Thread executes
        # its post-transmit stamp line; give it a beat.
        import time

        for _ in range(200):
            if "transmitted" in stamps:
                break
            time.sleep(0.002)
        expected_order = [
            "entry", "queued", "dequeued", "segmented",
            "flow_released", "send_thread_dequeued", "transmitted",
        ]
        assert all(key in stamps for key in expected_order)
        values = [stamps[key] for key in expected_order]
        assert values == sorted(values)


class TestStats:
    def test_counters_track_traffic(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(b"one", wait=True, timeout=5.0)
        conn.send(b"two", wait=True, timeout=5.0)
        peer.recv(timeout=5.0)
        peer.recv(timeout=5.0)
        assert conn.stats()["messages_sent"] == 2
        assert peer.stats()["messages_received"] == 2


class TestClose:
    def test_send_after_close_raises(self, connected_pair):
        conn, _ = connected_pair()
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.send(b"too late")

    def test_peer_learns_of_close(self, connected_pair):
        conn, peer = connected_pair()
        conn.close()
        with pytest.raises(ConnectionClosedError):
            for _ in range(100):
                peer.recv(timeout=0.1)

    def test_pending_data_drains_before_close_error(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(b"final words", wait=True, timeout=5.0)
        conn.close()
        assert peer.recv(timeout=5.0) == b"final words"

    def test_node_forgets_closed_connection(self, connected_pair):
        conn, _ = connected_pair()
        node = conn.node
        conn.close()
        assert conn not in node.connections()
