"""ConnectionConfig validation: the per-connection QOS contract."""

import pytest

from repro.core.config import ConnectionConfig, NodeConfig
from repro.interfaces.aci import ACI_MAX_SDU


class TestDefaults:
    def test_paper_defaults(self):
        config = ConnectionConfig()
        assert config.flow_control == "credit"
        assert config.error_control == "selective_repeat"
        assert config.sdu_size == 4096
        assert config.mode == "threaded"

    def test_presets(self):
        media = ConnectionConfig.media_stream()
        assert media.flow_control == "none"
        assert media.error_control == "none"
        assert media.interface == "aci"
        data = ConnectionConfig.reliable_data()
        assert data.error_control == "selective_repeat"


class TestValidation:
    def test_unknown_flow_control(self):
        with pytest.raises(ValueError, match="flow control"):
            ConnectionConfig(flow_control="magic")

    def test_unknown_error_control(self):
        with pytest.raises(ValueError, match="error control"):
            ConnectionConfig(error_control="parity")

    def test_unknown_interface(self):
        with pytest.raises(ValueError, match="interface"):
            ConnectionConfig(interface="rdma")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ConnectionConfig(mode="warp")

    def test_sdu_size_envelope(self):
        with pytest.raises(ValueError, match="SDU size"):
            ConnectionConfig(sdu_size=1024)
        with pytest.raises(ValueError, match="SDU size"):
            ConnectionConfig(sdu_size=128 * 1024)

    def test_aci_sdu_cap(self):
        # The ATM API limit (paper §3.2) applies only to the ACI.
        with pytest.raises(ValueError, match="ACI caps"):
            ConnectionConfig(interface="aci", sdu_size=ACI_MAX_SDU * 2)
        ConnectionConfig(interface="sci", sdu_size=64 * 1024)  # fine on SCI

    def test_credit_minimum(self):
        with pytest.raises(ValueError, match="initial_credits"):
            ConnectionConfig(initial_credits=0)

    def test_retransmit_timeout_positive(self):
        with pytest.raises(ValueError, match="retransmit_timeout"):
            ConnectionConfig(retransmit_timeout=0)


class TestOverrides:
    def test_with_overrides_revalidates(self):
        config = ConnectionConfig()
        faster = config.with_overrides(retransmit_timeout=0.05)
        assert faster.retransmit_timeout == 0.05
        assert config.retransmit_timeout == 0.2  # original untouched
        with pytest.raises(ValueError):
            config.with_overrides(sdu_size=1)

    def test_frozen(self):
        config = ConnectionConfig()
        with pytest.raises(Exception):
            config.sdu_size = 1


class TestNodeConfig:
    def test_defaults(self):
        config = NodeConfig(name="n")
        assert config.thread_package == "kernel"
        assert config.control_port == 0
