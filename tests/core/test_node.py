"""Node lifecycle, signaling, and connection management."""

import pytest

from repro.core import (
    ConnectionConfig,
    ConnectRejectedError,
    NcsError,
    Node,
    NodeConfig,
)


class TestLifecycle:
    def test_address_is_dialable(self, node_factory):
        node = node_factory("solo")
        host, port = node.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_context_manager(self):
        with Node("ctx") as node:
            assert node.address[1] > 0
        assert node._closed

    def test_close_idempotent(self, node_factory):
        node = node_factory("twice")
        node.close()
        node.close()

    def test_connect_after_close_rejected(self, node_factory):
        a = node_factory("a")
        b = node_factory("b")
        a.close()
        with pytest.raises(NcsError):
            a.connect(b.address)


class TestSignaling:
    def test_accept_returns_matching_connection(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        conn = a.connect(b.address, peer_name="bob")
        peer = b.accept(timeout=5.0)
        assert peer is not None
        assert peer.conn_id == conn.conn_id
        assert peer.peer_name == "alice"

    def test_accept_timeout_returns_none(self, node_factory):
        node = node_factory("lonely")
        assert node.accept(timeout=0.05) is None

    def test_config_negotiated_to_acceptor(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        config = ConnectionConfig(
            flow_control="window",
            error_control="go_back_n",
            interface="aci",
            sdu_size=8192,
            window_size=5,
        )
        a.connect(b.address, config, peer_name="bob")
        peer = b.accept(timeout=5.0)
        assert peer.config.flow_control == "window"
        assert peer.config.error_control == "go_back_n"
        assert peer.config.interface == "aci"
        assert peer.config.sdu_size == 8192

    def test_accept_handler_can_reject(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        b.accept_handler = lambda request: "policy says no"
        with pytest.raises(ConnectRejectedError, match="policy says no"):
            a.connect(b.address, timeout=5.0)

    def test_accept_handler_false_rejects(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        b.accept_handler = lambda request: False
        with pytest.raises(ConnectRejectedError):
            a.connect(b.address, timeout=5.0)

    def test_accept_handler_can_override_config(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        b.accept_handler = lambda request: ConnectionConfig(
            interface=request.interface, mode="bypass",
            flow_control="none", error_control="none",
        )
        conn = a.connect(
            b.address,
            ConnectionConfig(flow_control="none", error_control="none"),
            peer_name="bob",
        )
        peer = b.accept(timeout=5.0)
        assert peer.config.mode == "bypass"
        conn.send(b"hello")
        assert peer.recv(timeout=5.0) == b"hello"

    def test_multiple_connections_same_pair(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        conns = [a.connect(b.address, peer_name="bob") for _ in range(3)]
        peers = [b.accept(timeout=5.0) for _ in range(3)]
        assert len({c.conn_id for c in conns}) == 3
        # Traffic stays on its own connection.
        for index, conn in enumerate(conns):
            conn.send(f"msg-{index}".encode(), wait=True, timeout=5.0)
        by_id = {p.conn_id: p for p in peers}
        for index, conn in enumerate(conns):
            assert by_id[conn.conn_id].recv(timeout=5.0) == f"msg-{index}".encode()

    def test_connections_listing(self, node_factory):
        a = node_factory("alice")
        b = node_factory("bob")
        a.connect(b.address, peer_name="bob")
        b.accept(timeout=5.0)
        assert len(a.connections()) == 1
        assert len(b.connections()) == 1


class TestHpiSignaling:
    def test_hpi_rejected_across_fabrics(self, node_factory):
        from repro.interfaces.hpi import HpiFabric

        a = node_factory("alice", hpi_fabric=HpiFabric("left"))
        b = node_factory("bob", hpi_fabric=HpiFabric("right"))
        with pytest.raises(ConnectRejectedError, match="HPI offer"):
            a.connect(b.address, ConnectionConfig(interface="hpi"), timeout=5.0)

    def test_hpi_works_on_shared_fabric(self, node_factory):
        from repro.interfaces.hpi import HpiFabric

        fabric = HpiFabric("shared")
        a = node_factory("alice", hpi_fabric=fabric)
        b = node_factory("bob", hpi_fabric=fabric)
        conn = a.connect(b.address, ConnectionConfig(interface="hpi"))
        peer = b.accept(timeout=5.0)
        conn.send(b"trap", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b"trap"
