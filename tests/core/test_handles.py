"""Send handles."""

import threading

import pytest

from repro.core.errors import SendFailedError
from repro.core.handles import SendHandle, SendStatus


class TestSendHandle:
    def test_pending_initially(self):
        handle = SendHandle(1, 100)
        assert handle.status is SendStatus.PENDING
        assert not handle.done()

    def test_wait_timeout_returns_false(self):
        handle = SendHandle(1, 0)
        assert handle.wait(timeout=0.02) is False

    def test_completion_unblocks_wait(self):
        handle = SendHandle(1, 0)

        def complete_later():
            handle._resolve(SendStatus.COMPLETED)

        thread = threading.Timer(0.02, complete_later)
        thread.start()
        assert handle.wait(timeout=2.0) is True
        assert handle.status is SendStatus.COMPLETED
        thread.join()

    def test_failure_raises_on_wait(self):
        handle = SendHandle(9, 0)
        handle._resolve(SendStatus.FAILED)
        with pytest.raises(SendFailedError) as excinfo:
            handle.wait(timeout=1.0)
        assert excinfo.value.msg_id == 9

    def test_repr_mentions_state(self):
        handle = SendHandle(3, 10)
        assert "pending" in repr(handle)
