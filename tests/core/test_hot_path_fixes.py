"""Regression tests for the data-path bugfix batch.

Each class pins one of the bugs fixed alongside the vectored-send work:
recv-wait bookkeeping, send-after-transport-loss queue growth, and the
thread safety of the hot send counters.  (The reassembler's completed-
memory bugs are pinned in tests/protocol/test_segmentation.py.)
"""

import threading
import time

import pytest

from repro.core import ConnectionClosedError, ConnectionConfig


class TestRecvWaitTracking:
    """`recv_blocked_for` must report the oldest *surviving* waiter.

    The old bookkeeping kept one count plus the first waiter's start
    time, cleared only when the count hit zero — so a long-gone first
    waiter kept aging the clock for everyone after it.
    """

    def test_departed_first_waiter_does_not_age_survivors(self, connected_pair):
        conn, _ = connected_pair()
        clock = conn._clock
        token_old = conn._enter_recv_wait()
        time.sleep(0.30)
        token_young = conn._enter_recv_wait()
        conn._exit_recv_wait(token_old)  # the *old* waiter leaves
        assert conn.recv_waiters == 1
        blocked = conn.recv_blocked_for(clock.now())
        # Only the young waiter remains; its wait started just now.  The
        # buggy bookkeeping reported >= 0.30s here.
        assert blocked < 0.25
        conn._exit_recv_wait(token_young)
        assert conn.recv_waiters == 0
        assert conn.recv_blocked_for(clock.now()) == 0.0

    def test_oldest_survivor_wins(self, connected_pair):
        conn, _ = connected_pair()
        clock = conn._clock
        token_a = conn._enter_recv_wait()
        time.sleep(0.15)
        token_b = conn._enter_recv_wait()
        conn._exit_recv_wait(token_b)  # younger leaves, older stays
        assert conn.recv_blocked_for(clock.now()) >= 0.15
        conn._exit_recv_wait(token_a)

    def test_live_staggered_waiters(self, connected_pair):
        """Two real recv() calls: the short-timeout one comes and goes;
        afterwards the long one must still be counted and aged."""
        conn, _ = connected_pair()
        results = {}

        def long_waiter():
            results["long"] = conn.recv(timeout=1.2)

        thread = threading.Thread(target=long_waiter, daemon=True)
        thread.start()
        time.sleep(0.2)
        assert conn.recv(timeout=0.05) is None  # short waiter in and out
        assert conn.recv_waiters == 1
        blocked = conn.recv_blocked_for(conn._clock.now())
        assert blocked >= 0.15, "long waiter's age was lost"
        thread.join(timeout=3.0)
        assert results["long"] is None


class TestSendAfterTransportLoss:
    """Once the transport is gone the connection must stop feeding the
    Send Thread's channel: the thread has exited, so anything queued
    there is growth without a consumer."""

    def test_send_raises_once_peer_is_gone(self, connected_pair):
        conn, peer = connected_pair()
        conn.send(b"before", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b"before"
        # Sever the peer's transport abruptly: no Close handshake.
        peer.interface.close()
        # The sender notices via its receive thread (InterfaceClosed).
        deadline = time.monotonic() + 5.0
        while not conn.peer_gone and time.monotonic() < deadline:
            time.sleep(0.01)
        assert conn.peer_gone
        with pytest.raises(ConnectionClosedError):
            conn.send(b"after the loss")

    def test_no_send_channel_growth_after_loss(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(initial_credits=2, max_credits=4)
        )
        conn.send(b"warmup", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b"warmup"
        peer.interface.close()
        deadline = time.monotonic() + 5.0
        while not conn.peer_gone and time.monotonic() < deadline:
            time.sleep(0.01)
        assert conn.peer_gone
        # Anything the flow controller would now release must *not* be
        # pushed into the send channel (its consumer thread has exited).
        baseline = conn._send_chan.qsize()
        from repro.protocol.pdus import CreditPdu

        for _ in range(8):
            conn.on_control_pdu(CreditPdu(conn.conn_id, 4))
        time.sleep(0.2)
        assert conn._send_chan.qsize() <= baseline

    def test_queued_work_stays_with_flow_control_for_replay(self, connected_pair):
        """SDUs stranded by the loss remain reconstructible: the
        recovery layer replays pending_sends() over a new incarnation."""
        conn, peer = connected_pair(
            ConnectionConfig(initial_credits=1, max_credits=2)
        )
        conn.send(b"landed", wait=True, timeout=5.0)
        assert peer.recv(timeout=5.0) == b"landed"
        peer.interface.close()
        deadline = time.monotonic() + 5.0
        while not conn.peer_gone and time.monotonic() < deadline:
            time.sleep(0.01)
        # The message sent just before/after the loss is still pending.
        try:
            conn.send(b"stranded")
        except ConnectionClosedError:
            pass
        time.sleep(0.1)
        pending = conn.pending_sends()
        assert all(isinstance(m, int) for m, _ in pending)


class TestCounterThreadSafety:
    """messages_sent/bytes_sent are incremented from arbitrarily many
    app threads; the increments must not lose updates."""

    def test_concurrent_senders_count_exactly(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(flow_control="none", error_control="none")
        )
        threads_n, per_thread = 8, 150
        payload = b"m" * 32
        barrier = threading.Barrier(threads_n)

        def sender():
            barrier.wait()
            for _ in range(per_thread):
                conn.send(payload)

        threads = [
            threading.Thread(target=sender, daemon=True)
            for _ in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert conn.messages_sent == threads_n * per_thread
        assert conn.bytes_sent == threads_n * per_thread * len(payload)
        # Drain the peer so teardown isn't racing deliveries.
        got = 0
        deadline = time.monotonic() + 10.0
        while got < threads_n * per_thread and time.monotonic() < deadline:
            if peer.recv(timeout=0.2) is not None:
                got += 1
        assert got == threads_n * per_thread
