"""The §4.2 thread-bypass (procedure) variant of the primitives."""

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig, SendStatus


@pytest.fixture
def bypass_pair(node_factory):
    def make(config_overrides=None):
        client = node_factory("bp-client")
        server = node_factory("bp-server")
        server.accept_mode = "bypass"
        config = ConnectionConfig(
            interface="sci", mode="bypass", **(config_overrides or {})
        )
        conn = client.connect(server.address, config, peer_name="server")
        peer = server.accept(timeout=5.0)
        return conn, peer

    return make


class TestBypassPath:
    def test_no_data_threads_spawned(self, bypass_pair):
        conn, peer = bypass_pair()
        assert conn._threads == []
        assert peer._threads == []

    def test_send_recv(self, bypass_pair):
        conn, peer = bypass_pair()
        conn.send(b"procedural")
        assert peer.recv(timeout=5.0) == b"procedural"

    def test_multi_sdu_message(self, bypass_pair):
        conn, peer = bypass_pair()
        payload = b"B" * (5 * 4096)
        conn.send(payload)
        assert peer.recv(timeout=5.0) == payload

    def test_bidirectional(self, bypass_pair):
        conn, peer = bypass_pair()
        conn.send(b"there")
        assert peer.recv(timeout=5.0) == b"there"
        peer.send(b"back")
        assert conn.recv(timeout=5.0) == b"back"

    def test_reliable_send_completes_via_control_plane(self, bypass_pair):
        # ACKs arrive on the node's control reader thread and are applied
        # inline (procedures, not per-connection threads).
        conn, peer = bypass_pair()
        handle = conn.send(b"needs ack")
        assert peer.recv(timeout=5.0) == b"needs ack"
        assert handle.wait(timeout=5.0)
        assert handle.status is SendStatus.COMPLETED

    def test_try_recv_pumps_inline(self, bypass_pair):
        conn, peer = bypass_pair()
        conn.send(b"poll")
        for _ in range(500):
            frame = peer.try_recv()
            if frame is not None:
                break
        assert frame == b"poll"

    def test_mixed_modes_interoperate(self, node_factory):
        # Threaded client talking to a bypass server.  Note the ordering:
        # a bypass peer only pumps its receive path (and thus only emits
        # ACKs) inside recv(), so the sender must not block on the ACK
        # before the peer has called recv.
        client = node_factory("threaded-client")
        server = node_factory("bypass-server")
        server.accept_mode = "bypass"
        conn = client.connect(
            server.address, ConnectionConfig(interface="sci"), peer_name="s"
        )
        peer = server.accept(timeout=5.0)
        handle = conn.send(b"mixed")
        assert peer.recv(timeout=5.0) == b"mixed"
        assert handle.wait(timeout=5.0)

    def test_instrumentation_shows_fewer_stages(self, bypass_pair):
        conn, peer = bypass_pair()
        stamps = {}
        conn.send(b"x", instrument=stamps)
        peer.recv(timeout=5.0)
        # No protocol/send threads: no queued->dequeued hop.
        assert "dequeued" not in stamps
        assert "send_thread_dequeued" not in stamps
        assert stamps["transmitted"] >= stamps["entry"]
