"""Paper-style procedural primitives."""

from repro import (
    ConnectionConfig,
    NCS_recv,
    NCS_send,
    NCS_thread_sleep,
    NCS_thread_spawn,
    NCS_thread_yield,
)


def test_ncs_send_recv(connected_pair):
    conn, peer = connected_pair()
    handle = NCS_send(conn, b"procedural api", wait=True, timeout=5.0)
    assert handle.done()
    assert NCS_recv(peer, timeout=5.0) == b"procedural api"


def test_ncs_recv_timeout(connected_pair):
    conn, _ = connected_pair()
    assert NCS_recv(conn, timeout=0.05) is None


def test_compute_thread_spawn_and_yield(node_factory):
    node = node_factory("compute")
    log = []

    def compute_thread(tag):
        log.append(tag)
        NCS_thread_yield(node)
        NCS_thread_sleep(node, 0.01)
        return tag

    handles = [NCS_thread_spawn(node, compute_thread, i) for i in range(3)]
    for handle in handles:
        assert handle.join(5.0)
    assert sorted(log) == [0, 1, 2]
    assert [h.result for h in handles] == [0, 1, 2]


def test_ncs_send_timeout_is_typed_and_nonfatal(connected_pair):
    """The uniform timeout contract: an unconfirmed NCS_send(wait=True)
    raises NCSTimeout (a TimeoutError), and the handle stays valid —
    delivery can still complete afterwards."""
    import pytest

    from repro.core.errors import NCSTimeout, NcsError

    conn, peer = connected_pair()
    with pytest.raises(NCSTimeout) as excinfo:
        # Zero deadline: confirmation cannot possibly have arrived yet.
        NCS_send(conn, b"deadline-zero", wait=True, timeout=0.0)
    assert isinstance(excinfo.value, TimeoutError)
    assert isinstance(excinfo.value, NcsError)
    # The timeout aborted the wait, not the transfer.
    assert NCS_recv(peer, timeout=5.0) == b"deadline-zero"
