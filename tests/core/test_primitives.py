"""Paper-style procedural primitives."""

from repro import (
    ConnectionConfig,
    NCS_recv,
    NCS_send,
    NCS_thread_sleep,
    NCS_thread_spawn,
    NCS_thread_yield,
)


def test_ncs_send_recv(connected_pair):
    conn, peer = connected_pair()
    handle = NCS_send(conn, b"procedural api", wait=True, timeout=5.0)
    assert handle.done()
    assert NCS_recv(peer, timeout=5.0) == b"procedural api"


def test_ncs_recv_timeout(connected_pair):
    conn, _ = connected_pair()
    assert NCS_recv(conn, timeout=0.05) is None


def test_compute_thread_spawn_and_yield(node_factory):
    node = node_factory("compute")
    log = []

    def compute_thread(tag):
        log.append(tag)
        NCS_thread_yield(node)
        NCS_thread_sleep(node, 0.01)
        return tag

    handles = [NCS_thread_spawn(node, compute_thread, i) for i in range(3)]
    for handle in handles:
        assert handle.join(5.0)
    assert sorted(log) == [0, 1, 2]
    assert [h.result for h in handles] == [0, 1, 2]
