"""Null flow control."""

from repro.flowcontrol.null import NullFlowReceiver, NullFlowSender
from repro.protocol.pdus import CreditPdu
from repro.protocol.segmentation import segment_message

SDU = 4096
CONN = 9


def test_everything_released_at_once():
    sender = NullFlowSender(CONN)
    sdus = segment_message(CONN, 1, b"x" * (20 * SDU), SDU)
    sender.offer(sdus)
    assert sender.pull(0.0) == sdus
    assert sender.queued() == 0


def test_idle_after_drain():
    sender = NullFlowSender(CONN)
    sender.offer(segment_message(CONN, 1, b"x", SDU))
    sender.pull(0.0)
    assert sender.idle()


def test_controls_ignored():
    sender = NullFlowSender(CONN)
    sender.on_control(CreditPdu(CONN, 5), 0.0)
    assert sender.pull(0.0) == []


def test_receiver_counts_but_grants_nothing():
    receiver = NullFlowReceiver(CONN)
    sdus = segment_message(CONN, 1, b"x" * SDU, SDU)
    assert receiver.on_sdu(sdus[0], 0.0) == []
    assert receiver.packets_seen == 1
