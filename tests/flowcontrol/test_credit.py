"""Credit-based flow control: the paper's default (Fig. 7/8)."""

import pytest

from repro.flowcontrol.credit import CreditReceiver, CreditSender
from repro.protocol.pdus import CreditPdu
from repro.protocol.segmentation import segment_message

SDU = 4096
CONN = 4


def sdus(count, msg_id=1):
    return segment_message(CONN, msg_id, b"x" * (count * SDU), SDU)


class TestSender:
    def test_never_exceeds_credits(self):
        sender = CreditSender(CONN, initial_credits=3)
        sender.offer(sdus(10))
        released = sender.pull(0.0)
        assert len(released) == 3
        assert sender.credits == 0
        assert sender.queued() == 7

    def test_credits_release_more(self):
        sender = CreditSender(CONN, initial_credits=2)
        sender.offer(sdus(5))
        sender.pull(0.0)
        sender.on_control(CreditPdu(CONN, 2), 0.0)
        assert len(sender.pull(0.0)) == 2
        assert sender.queued() == 1

    def test_fifo_release_order(self):
        sender = CreditSender(CONN, initial_credits=10)
        batch = sdus(4)
        sender.offer(batch)
        released = sender.pull(0.0)
        assert [s.header.seqno for s in released] == [0, 1, 2, 3]

    def test_foreign_connection_credit_ignored(self):
        sender = CreditSender(CONN, initial_credits=1)
        sender.offer(sdus(2))
        sender.pull(0.0)
        sender.on_control(CreditPdu(CONN + 1, 5), 0.0)
        assert sender.pull(0.0) == []

    def test_initial_credits_must_be_positive(self):
        with pytest.raises(ValueError):
            CreditSender(CONN, initial_credits=0)

    def test_peak_queue_tracked(self):
        sender = CreditSender(CONN, initial_credits=1)
        sender.offer(sdus(6))
        assert sender.peak_queue == 6


class TestResync:
    def test_stall_raises_request_then_falls_back(self):
        # Paper context: on an unreliable wire, lost packets destroy
        # credits; resynchronization restores the pool.  Two phases:
        # first a request toward the receiver, then — if it goes wholly
        # unanswered for another resync_timeout — a unilateral restore.
        sender = CreditSender(CONN, initial_credits=2, resync_timeout=0.1)
        sender.offer(sdus(4))
        assert len(sender.pull(0.0)) == 2  # pool exhausted, 2 queued
        assert sender.pull(0.05) == []     # still stalled, before deadline
        assert sender.pull(0.2) == []      # deadline passed: request raised
        assert sender.take_resync_request() is True
        assert sender.take_resync_request() is False  # consumed once
        assert sender.resync_requests == 1
        assert sender.resyncs == 0         # no unilateral restore yet
        recovered = sender.pull(0.35)      # request unanswered: fallback
        assert len(recovered) == 2
        assert sender.resyncs == 1

    def test_grant_reply_answers_request(self):
        sender = CreditSender(CONN, initial_credits=2, resync_timeout=0.1)
        sender.offer(sdus(4))
        sender.pull(0.0)
        sender.pull(0.05)  # blocked: stall clock starts
        sender.pull(0.2)   # deadline passed: request raised
        assert sender.take_resync_request() is True
        sender.on_control(CreditPdu(CONN, 2), 0.25)  # receiver's grant
        assert len(sender.pull(0.25)) == 2
        assert sender.resyncs == 0  # never needed the fallback

    def test_zero_credit_reply_keeps_sender_pinned(self):
        # A gated receiver answers "stay pinned": no credit, and both
        # the re-request and fallback clocks restart — the window stays
        # closed as long as the receiver keeps answering.
        sender = CreditSender(CONN, initial_credits=2, resync_timeout=0.1)
        sender.offer(sdus(4))
        sender.pull(0.0)
        sender.pull(0.05)  # blocked: stall clock starts
        sender.pull(0.2)   # deadline passed: request raised
        sender.take_resync_request()
        sender.on_control(CreditPdu(CONN, 0), 0.25)  # pinned reply
        assert sender.pinned_replies == 1
        assert sender.credits == 0
        assert sender.pull(0.3) == []   # still pinned, no fallback
        assert sender.resyncs == 0
        # The cycle repeats: next deadline raises another request.
        assert sender.pull(0.4) == []
        assert sender.take_resync_request() is True
        assert sender.resync_requests == 2

    def test_credit_arrival_cancels_stall(self):
        sender = CreditSender(CONN, initial_credits=1, resync_timeout=0.1)
        sender.offer(sdus(3))
        sender.pull(0.0)
        sender.on_control(CreditPdu(CONN, 1), 0.05)
        assert len(sender.pull(0.06)) == 1
        # Stall clock restarted: no resync request at the old deadline.
        assert sender.pull(0.11) == []
        assert sender.take_resync_request() is False
        assert sender.resyncs == 0

    def test_next_ready_time_reports_resync_deadline(self):
        sender = CreditSender(CONN, initial_credits=1, resync_timeout=0.1)
        sender.offer(sdus(2))
        sender.pull(1.0)
        assert sender.next_ready_time(1.0) == pytest.approx(1.1)
        sender.pull(1.1)   # blocked: stall clock starts here
        sender.pull(1.2)   # request raised
        # With a request outstanding, the next deadline is the fallback.
        assert sender.next_ready_time(1.2) == pytest.approx(1.3)

    def test_next_ready_none_when_credits_available(self):
        sender = CreditSender(CONN, initial_credits=5)
        sender.offer(sdus(2))
        assert sender.next_ready_time(0.0) is None


class TestReceiver:
    def test_one_credit_per_packet(self):
        receiver = CreditReceiver(CONN)
        grants = [receiver.on_sdu(sdu, 0.0) for sdu in sdus(3)]
        assert all(len(g) == 1 and g[0].credits == 1 for g in grants)

    def test_foreign_connection_ignored(self):
        receiver = CreditReceiver(CONN)
        foreign = segment_message(CONN + 1, 1, b"x" * SDU, SDU)
        assert receiver.on_sdu(foreign[0], 0.0) == []

    def test_active_connection_gets_bonus(self):
        # Paper §3.3: "active connections get more credits".
        receiver = CreditReceiver(
            CONN, initial_credits=4, adjust_interval=4,
            active_threshold_pps=100.0,
        )
        grants = []
        now = 0.0
        for sdu in sdus(4):
            now += 0.001  # 1000 pps: very active
            grants += receiver.on_sdu(sdu, now)
        bonus = [g for g in grants if g.credits > 1]
        assert len(bonus) == 1
        assert receiver.allotment == 8  # doubled
        assert receiver.bonus_grants == 1

    def test_idle_connection_shrinks_allotment(self):
        receiver = CreditReceiver(
            CONN, initial_credits=4, adjust_interval=4,
            active_threshold_pps=100.0,
        )
        # Activity burst first: grow the allotment.
        now = 0.0
        for sdu in sdus(4, msg_id=1):
            now += 0.001
            receiver.on_sdu(sdu, now)
        assert receiver.allotment == 8
        # Then a slow trickle: 1 packet/s, far below threshold.
        for sdu in sdus(4, msg_id=2):
            now += 1.0
            receiver.on_sdu(sdu, now)
        assert receiver.allotment == 4  # halved back toward the floor

    def test_allotment_caps_at_max(self):
        receiver = CreditReceiver(
            CONN, initial_credits=4, max_credits=8, adjust_interval=2,
        )
        now = 0.0
        for sdu in sdus(8):
            now += 0.0001
            receiver.on_sdu(sdu, now)
        assert receiver.allotment <= 8
