"""make_flow_control factory."""

import pytest

from repro.flowcontrol import (
    ALGORITHMS,
    CreditSender,
    NullFlowSender,
    RateSender,
    WindowSender,
    make_flow_control,
)


def test_all_algorithms_constructible():
    for name in ALGORITHMS:
        sender, receiver = make_flow_control(name, 1)
        assert sender.connection_id == 1


def test_credit_options():
    sender, receiver = make_flow_control(
        "credit", 1, initial_credits=7, max_credits=32, adjust_interval=8,
        resync_timeout=0.5,
    )
    assert isinstance(sender, CreditSender)
    assert sender.credits == 7
    assert sender.resync_timeout == 0.5
    assert receiver.max_credits == 32
    assert receiver.adjust_interval == 8


def test_window_option():
    sender, receiver = make_flow_control("window", 1, window_size=5)
    assert isinstance(sender, WindowSender)
    assert sender.window_size == 5
    assert receiver.window_size == 5


def test_rate_options():
    sender, _ = make_flow_control("rate", 1, rate_pps=50.0, burst=2.0)
    assert isinstance(sender, RateSender)


def test_null():
    sender, _ = make_flow_control("none", 1)
    assert isinstance(sender, NullFlowSender)


def test_unknown_rejected():
    with pytest.raises(ValueError, match="unknown flow control"):
        make_flow_control("tcp-reno", 1)


def test_unexpected_options_rejected():
    with pytest.raises(TypeError, match="unexpected options"):
        make_flow_control("window", 1, rate_pps=5.0)
