"""Static sliding-window flow control."""

import pytest

from repro.flowcontrol.window import WindowReceiver, WindowSender
from repro.protocol.pdus import CreditPdu
from repro.protocol.segmentation import segment_message

SDU = 4096
CONN = 6


def sdus(count):
    return segment_message(CONN, 1, b"x" * (count * SDU), SDU)


class TestWindowSender:
    def test_outstanding_capped_at_window(self):
        sender = WindowSender(CONN, window_size=3)
        sender.offer(sdus(8))
        assert len(sender.pull(0.0)) == 3
        assert sender.outstanding == 3

    def test_updates_open_window(self):
        sender = WindowSender(CONN, window_size=2)
        sender.offer(sdus(4))
        sender.pull(0.0)
        sender.on_control(CreditPdu(CONN, 2), 0.0)
        assert sender.outstanding == 0
        assert len(sender.pull(0.0)) == 2

    def test_window_never_negative(self):
        sender = WindowSender(CONN, window_size=2)
        sender.on_control(CreditPdu(CONN, 5), 0.0)
        assert sender.outstanding == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowSender(CONN, window_size=0)

    def test_stall_recovery_reopens_window(self):
        sender = WindowSender(CONN, window_size=2)
        sender.offer(sdus(4))
        sender.pull(0.0)  # window full
        assert sender.pull(0.1) == []  # stall clock starts here
        recovered = sender.pull(0.1 + sender.STALL_RECOVERY_TIMEOUT + 0.01)
        assert len(recovered) == 2
        assert sender.stall_recoveries == 1

    def test_next_ready_time_when_stalled(self):
        sender = WindowSender(CONN, window_size=1)
        sender.offer(sdus(2))
        sender.pull(2.0)
        assert sender.next_ready_time(2.0) == pytest.approx(
            2.0 + sender.STALL_RECOVERY_TIMEOUT
        )


class TestWindowReceiver:
    def test_one_update_per_packet(self):
        receiver = WindowReceiver(CONN)
        for sdu in sdus(3):
            (grant,) = receiver.on_sdu(sdu, 0.0)
            assert grant.credits == 1
        assert receiver.packets_seen == 3

    def test_foreign_connection_ignored(self):
        receiver = WindowReceiver(CONN)
        foreign = segment_message(CONN + 1, 1, b"x" * SDU, SDU)
        assert receiver.on_sdu(foreign[0], 0.0) == []
