"""Rate-based flow control (open-loop pacing)."""

import pytest

from repro.flowcontrol.rate import RateReceiver, RateSender
from repro.protocol.pdus import CreditPdu
from repro.protocol.segmentation import segment_message

SDU = 4096
CONN = 8


def sdus(count):
    return segment_message(CONN, 1, b"x" * (count * SDU), SDU)


class TestRateSender:
    def test_burst_released_immediately(self):
        sender = RateSender(CONN, rate_pps=100.0, burst=4.0)
        sender.offer(sdus(10))
        assert len(sender.pull(0.0)) == 4

    def test_pacing_after_burst(self):
        sender = RateSender(CONN, rate_pps=100.0, burst=2.0)
        sender.offer(sdus(6))
        assert len(sender.pull(0.0)) == 2
        assert sender.pull(0.001) == []          # tokens exhausted
        assert len(sender.pull(0.010)) == 1      # one token refilled
        assert len(sender.pull(0.030)) == 2      # two more

    def test_average_rate_respected(self):
        sender = RateSender(CONN, rate_pps=1000.0, burst=1.0)
        sender.offer(sdus(100))
        released = 0
        now = 0.0
        while now < 0.05:
            released += len(sender.pull(now))
            now += 0.0005
        # 50 ms at 1000 pps = ~50 packets (+1 initial token)
        assert released == pytest.approx(50, abs=3)

    def test_receiver_feedback_ignored(self):
        sender = RateSender(CONN, rate_pps=10.0, burst=1.0)
        sender.offer(sdus(3))
        sender.pull(0.0)
        sender.on_control(CreditPdu(CONN, 100), 0.0)
        assert sender.pull(0.001) == []  # still token-bound

    def test_next_ready_time(self):
        sender = RateSender(CONN, rate_pps=10.0, burst=1.0)
        sender.offer(sdus(2))
        sender.pull(0.0)
        ready = sender.next_ready_time(0.0)
        assert ready == pytest.approx(0.1, abs=0.01)

    def test_next_ready_none_when_queue_empty(self):
        sender = RateSender(CONN, rate_pps=10.0)
        assert sender.next_ready_time(0.0) is None


class TestRateReceiver:
    def test_passive(self):
        receiver = RateReceiver(CONN)
        for sdu in sdus(3):
            assert receiver.on_sdu(sdu, 0.0) == []
        assert receiver.packets_seen == 3
