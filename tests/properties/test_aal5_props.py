"""Property tests: AAL5 SAR identity and damage detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm.aal5 import Aal5Error, aal5_reassemble, aal5_segment
from repro.atm.cell import AtmCell


@given(
    frame=st.binary(max_size=20_000),
    vpi=st.integers(0, 255),
    vci=st.integers(32, 65535),
)
@settings(max_examples=50, deadline=None)
def test_sar_identity(frame, vpi, vci):
    cells = aal5_segment(frame, vpi, vci)
    assert aal5_reassemble(cells) == frame
    assert all((c.vpi, c.vci) == (vpi, vci) for c in cells)


@given(
    frame=st.binary(min_size=1, max_size=5000),
    drop_index=st.integers(min_value=0),
)
@settings(max_examples=50, deadline=None)
def test_any_lost_cell_detected(frame, drop_index):
    cells = aal5_segment(frame, 0, 32)
    victim = drop_index % len(cells)
    survivors = cells[:victim] + cells[victim + 1 :]
    with pytest.raises(Aal5Error):
        aal5_reassemble(survivors)


@given(
    frame=st.binary(min_size=1, max_size=5000),
    cell_index=st.integers(min_value=0),
    byte_index=st.integers(0, 47),
    bit=st.integers(0, 7),
)
@settings(max_examples=50, deadline=None)
def test_any_payload_corruption_detected(frame, cell_index, byte_index, bit):
    cells = aal5_segment(frame, 0, 32)
    victim = cell_index % len(cells)
    damaged = bytearray(cells[victim].payload)
    damaged[byte_index] ^= 1 << bit
    cells[victim] = AtmCell(
        cells[victim].vpi,
        cells[victim].vci,
        cells[victim].pti,
        cells[victim].clp,
        bytes(damaged),
    )
    with pytest.raises(Aal5Error):
        aal5_reassemble(cells)
