"""Property tests: protocol-engine invariants in virtual time.

The strongest claims in the system — exactly-once in-order delivery
under arbitrary loss, and credit safety — checked over randomized loss
patterns with the real engines on the deterministic simulator.
"""

from hypothesis import given, settings, strategies as st

from repro.flowcontrol.credit import CreditReceiver, CreditSender
from repro.protocol.segmentation import segment_message
from repro.simnet.kernel import Simulator
from repro.simnet.link import AtmLinkModel
from repro.simnet.ncs_sim import connect_pair


@given(
    seed=st.integers(0, 10_000),
    loss=st.sampled_from([0.0, 5e-4, 2e-3]),
    size_kb=st.integers(1, 96),
)
@settings(max_examples=25, deadline=None)
def test_reliable_delivery_under_any_loss_seed(seed, loss, size_kb):
    """Selective repeat delivers exactly once, intact, for any loss seed
    (or reports failure — never silent corruption)."""
    sim = Simulator()
    a, b = connect_pair(
        sim,
        AtmLinkModel(sim, cell_loss_rate=loss, seed=seed),
        AtmLinkModel(sim, cell_loss_rate=loss, seed=seed + 1),
        retransmit_timeout=0.02,
        max_retries=30,
    )
    payload = bytes(range(256)) * (size_kb * 4)  # size_kb KB
    done = a.send(payload)
    sim.run(max_events=2_000_000)
    if done.value is not None:
        assert b.delivered == [payload]
    else:
        assert b.delivered in ([], [payload])  # failure never corrupts


@given(
    seed=st.integers(0, 10_000),
    count=st.integers(2, 6),
)
@settings(max_examples=20, deadline=None)
def test_per_connection_fifo_order(seed, count):
    """Messages on one connection deliver in send order, even with loss
    forcing retransmissions to interleave."""
    sim = Simulator()
    a, b = connect_pair(
        sim,
        AtmLinkModel(sim, cell_loss_rate=1e-3, seed=seed),
        AtmLinkModel(sim, cell_loss_rate=1e-3, seed=seed + 7),
        retransmit_timeout=0.02,
        max_retries=30,
    )
    payloads = [bytes([i]) * 9000 for i in range(count)]
    events = [a.send(p) for p in payloads]
    sim.run(max_events=2_000_000)
    if all(e.value is not None for e in events):
        assert b.delivered == payloads


@given(
    offers=st.lists(st.integers(1, 20), min_size=1, max_size=10),
    credits=st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_credit_invariant_inflight_never_exceeds_grants(offers, credits):
    """At every instant, packets released minus credits returned never
    exceeds the total credit ever granted — the receiver-buffer safety
    property behind Fig. 7."""
    sender = CreditSender(1, initial_credits=credits)
    receiver = CreditReceiver(1, initial_credits=credits)
    released_total = 0
    returned_total = 0
    now = 0.0
    msg = 0
    for burst in offers:
        msg += 1
        sender.offer(segment_message(1, msg, b"x" * (burst * 4096), 4096))
        now += 0.001
        released = sender.pull(now)
        released_total += len(released)
        assert released_total <= credits + returned_total
        for sdu in released:
            for pdu in receiver.on_sdu(sdu, now):
                returned_total += pdu.credits
                sender.on_control(pdu, now)
