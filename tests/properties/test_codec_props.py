"""Property tests: wire codecs."""

from hypothesis import given, settings, strategies as st

from repro.protocol.headers import Sdu, SduHeader
from repro.protocol.pdus import (
    AckPdu,
    ConnectRequestPdu,
    CreditPdu,
    CumAckPdu,
    decode_control_pdu,
)
from repro.util.bitmap import AckBitmap
from repro.util.codec import XdrDecoder, XdrEncoder

U32 = st.integers(0, 2**32 - 1)


@given(
    conn=U32,
    msg=U32,
    seqno=U32,
    total=U32,
    payload=st.binary(max_size=1000),
    end=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_sdu_frame_roundtrip(conn, msg, seqno, total, payload, end):
    sdu = Sdu.build(conn, msg, seqno, total, payload, end)
    again = Sdu.decode(sdu.encode())
    assert again.header == sdu.header
    assert again.payload == payload
    assert again.payload_intact()


@given(conn=U32, msg=U32, size=st.integers(0, 300), marks=st.sets(st.integers(0, 299)))
@settings(max_examples=60, deadline=None)
def test_ack_pdu_roundtrip(conn, msg, size, marks):
    bitmap = AckBitmap(size)
    for seqno in marks:
        if seqno < size:
            bitmap.mark_received(seqno)
    pdu = AckPdu(conn, msg, bitmap)
    again = decode_control_pdu(pdu.encode())
    assert again == pdu


@given(conn=U32, credits=U32)
@settings(max_examples=40, deadline=None)
def test_credit_pdu_roundtrip(conn, credits):
    pdu = CreditPdu(conn, credits)
    assert decode_control_pdu(pdu.encode()) == pdu


@given(conn=U32, msg=U32, next_expected=U32)
@settings(max_examples=40, deadline=None)
def test_cum_ack_roundtrip(conn, msg, next_expected):
    pdu = CumAckPdu(conn, msg, next_expected)
    assert decode_control_pdu(pdu.encode()) == pdu


@given(
    src=st.text(max_size=40),
    dst=st.text(max_size=40),
    port=st.integers(0, 65535),
)
@settings(max_examples=40, deadline=None)
def test_connect_request_roundtrip(src, dst, port):
    pdu = ConnectRequestPdu(
        connection_id=1,
        src_node=src,
        dst_node=dst,
        src_data_port=port,
        flow_control="credit",
        error_control="selective_repeat",
        interface="sci",
        sdu_size=4096,
        initial_credits=4,
        window_size=8,
        rate_pps=1000.0,
    )
    assert decode_control_pdu(pdu.encode()) == pdu


@given(
    values=st.lists(
        st.one_of(
            st.integers(-(2**31), 2**31 - 1),
            st.binary(max_size=100),
            st.text(max_size=50),
        ),
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_xdr_stream_roundtrip(values):
    encoder = XdrEncoder()
    for value in values:
        if isinstance(value, int):
            encoder.pack_int(value)
        elif isinstance(value, bytes):
            encoder.pack_opaque(value)
        else:
            encoder.pack_string(value)
    decoder = XdrDecoder(encoder.getvalue())
    for value in values:
        if isinstance(value, int):
            assert decoder.unpack_int() == value
        elif isinstance(value, bytes):
            assert decoder.unpack_opaque() == value
        else:
            assert decoder.unpack_string() == value
    assert decoder.done()
