"""Property tests: CRC correctness and error detection."""

from hypothesis import given, settings, strategies as st

from repro.util.crc import crc10, crc10_bitwise, crc32_aal5, crc32_aal5_reference


@given(data=st.binary(max_size=2000))
@settings(max_examples=80, deadline=None)
def test_crc32_fast_equals_reference(data):
    assert crc32_aal5(data) == crc32_aal5_reference(data)


@given(left=st.binary(max_size=500), right=st.binary(max_size=500))
@settings(max_examples=60, deadline=None)
def test_crc32_incremental_composition(left, right):
    chained = crc32_aal5(right, crc32_aal5(left) ^ 0xFFFFFFFF)
    assert chained == crc32_aal5(left + right)


@given(
    data=st.binary(min_size=1, max_size=1000),
    bit=st.integers(min_value=0),
)
@settings(max_examples=80, deadline=None)
def test_crc32_detects_any_single_bit_flip(data, bit):
    """CRC-32 detects every single-bit error (guaranteed by polynomial)."""
    position = bit % (len(data) * 8)
    damaged = bytearray(data)
    damaged[position // 8] ^= 1 << (position % 8)
    assert crc32_aal5(bytes(damaged)) != crc32_aal5(data)


@given(data=st.binary(max_size=500))
@settings(max_examples=80, deadline=None)
def test_crc10_table_equals_bitwise(data):
    assert crc10(data) == crc10_bitwise(data)


@given(
    data=st.binary(min_size=1, max_size=200),
    bit=st.integers(min_value=0),
)
@settings(max_examples=60, deadline=None)
def test_crc10_detects_single_bit_flips(data, bit):
    position = bit % (len(data) * 8)
    damaged = bytearray(data)
    damaged[position // 8] ^= 1 << (position % 8)
    assert crc10(bytes(damaged)) != crc10(data)
