"""Property tests: the multicast spanning tree really spans."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.multicast.tree import spanning_tree_children, tree_parent


@given(
    count=st.integers(1, 60),
    origin_index=st.integers(min_value=0),
    fanout=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_edges_always_form_spanning_tree(count, origin_index, fanout):
    members = [f"node-{i:02d}" for i in range(count)]
    origin = members[origin_index % count]
    graph = nx.DiGraph()
    graph.add_nodes_from(members)
    for member in members:
        for child in spanning_tree_children(members, origin, member, fanout):
            graph.add_edge(member, child)
    # Every member reachable from the origin, exactly n-1 edges, acyclic.
    reachable = nx.descendants(graph, origin) | {origin}
    assert reachable == set(members)
    assert graph.number_of_edges() == count - 1
    assert nx.is_directed_acyclic_graph(graph)


@given(
    count=st.integers(2, 60),
    origin_index=st.integers(min_value=0),
    member_index=st.integers(min_value=0),
    fanout=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_parent_child_duality(count, origin_index, member_index, fanout):
    members = [f"node-{i:02d}" for i in range(count)]
    origin = members[origin_index % count]
    me = members[member_index % count]
    parent = tree_parent(members, origin, me, fanout)
    if me == origin:
        assert parent is None
    else:
        assert me in spanning_tree_children(members, origin, parent, fanout)


@given(count=st.integers(1, 40), fanout=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_same_tree_for_any_origin_permutation(count, fanout):
    import random

    members = [f"node-{i:02d}" for i in range(count)]
    shuffled = members[:]
    random.Random(42).shuffle(shuffled)
    origin = members[0]
    for member in members:
        assert spanning_tree_children(
            members, origin, member, fanout
        ) == spanning_tree_children(shuffled, origin, member, fanout)
