"""Property tests: ACK bitmap algebra."""

from hypothesis import given, settings, strategies as st

from repro.util.bitmap import AckBitmap


@given(size=st.integers(0, 500), marks=st.lists(st.integers(0, 499)))
@settings(max_examples=60, deadline=None)
def test_pending_equals_unmarked(size, marks):
    bitmap = AckBitmap(size)
    applied = set()
    for seqno in marks:
        if seqno < size:
            bitmap.mark_received(seqno)
            applied.add(seqno)
    assert bitmap.pending() == sorted(set(range(size)) - applied)
    assert bitmap.all_received() == (applied == set(range(size)))


@given(size=st.integers(0, 500), marks=st.sets(st.integers(0, 499)))
@settings(max_examples=60, deadline=None)
def test_wire_roundtrip_preserves_state(size, marks):
    bitmap = AckBitmap(size)
    for seqno in marks:
        if seqno < size:
            bitmap.mark_received(seqno)
    again = AckBitmap.from_bytes(bitmap.to_bytes(), size)
    assert again == bitmap
    assert again.pending() == bitmap.pending()


@given(
    size=st.integers(1, 200),
    received=st.sets(st.integers(0, 199)),
    errored=st.sets(st.integers(0, 199)),
)
@settings(max_examples=60, deadline=None)
def test_mark_error_overrides_received(size, received, errored):
    bitmap = AckBitmap(size)
    for seqno in received:
        if seqno < size:
            bitmap.mark_received(seqno)
    for seqno in errored:
        if seqno < size:
            bitmap.mark_error(seqno)
    for seqno in errored:
        if seqno < size:
            assert bitmap.is_pending(seqno)


@given(
    size=st.integers(1, 100),
    left_errors=st.sets(st.integers(0, 99)),
    right_errors=st.sets(st.integers(0, 99)),
)
@settings(max_examples=60, deadline=None)
def test_merge_is_union(size, left_errors, right_errors):
    left = AckBitmap(size, all_set=False)
    right = AckBitmap(size, all_set=False)
    for seqno in left_errors:
        if seqno < size:
            left.mark_error(seqno)
    for seqno in right_errors:
        if seqno < size:
            right.mark_error(seqno)
    expected = sorted(
        {s for s in left_errors | right_errors if s < size}
    )
    left.merge_errors(right)
    assert left.pending() == expected
