"""Property tests: segmentation/reassembly invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.protocol.segmentation import Reassembler, segment_message

SDU_SIZES = st.sampled_from([4096, 8192, 16384, 65536])
PAYLOADS = st.binary(min_size=0, max_size=200_000)


@given(payload=PAYLOADS, sdu_size=SDU_SIZES)
@settings(max_examples=40, deadline=None)
def test_segment_reassemble_identity(payload, sdu_size):
    """segment . reassemble == identity, for any payload and SDU size."""
    sdus = segment_message(1, 1, payload, sdu_size)
    reassembler = Reassembler()
    result = None
    for sdu in sdus:
        result = reassembler.add(sdu)
    assert result == payload


@given(payload=PAYLOADS, sdu_size=SDU_SIZES, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_identity_under_any_arrival_order(payload, sdu_size, seed):
    """Reassembly is order-independent (the network may reorder)."""
    sdus = segment_message(1, 1, payload, sdu_size)
    random.Random(seed).shuffle(sdus)
    reassembler = Reassembler()
    results = [reassembler.add(sdu) for sdu in sdus]
    completed = [r for r in results if r is not None]
    assert completed == [payload]


@given(payload=PAYLOADS, sdu_size=SDU_SIZES, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_identity_under_duplication(payload, sdu_size, seed):
    """Duplicated SDUs (retransmission races) never corrupt delivery."""
    sdus = segment_message(1, 1, payload, sdu_size)
    rng = random.Random(seed)
    stream = sdus + [rng.choice(sdus) for _ in range(len(sdus))]
    rng.shuffle(stream)
    reassembler = Reassembler()
    completed = [r for r in (reassembler.add(s) for s in stream) if r is not None]
    assert completed == [payload]


@given(payload=st.binary(min_size=1, max_size=100_000), sdu_size=SDU_SIZES)
@settings(max_examples=40, deadline=None)
def test_structural_invariants(payload, sdu_size):
    """Exactly one end bit, contiguous seqnos, sizes within the SDU cap,
    concatenated payloads equal the message."""
    sdus = segment_message(1, 1, payload, sdu_size)
    assert [s.header.seqno for s in sdus] == list(range(len(sdus)))
    assert sum(s.header.end_bit for s in sdus) == 1
    assert sdus[-1].header.end_bit
    assert all(len(s.payload) <= sdu_size for s in sdus)
    assert b"".join(s.payload for s in sdus) == payload
    assert all(s.header.total_sdus == len(sdus) for s in sdus)
