"""Admission policies, slow-consumer credit gating, and batch_max
validation — integration tests over real node pairs."""

import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig
from repro.core.errors import NCSOverloaded, NCSTimeout
from repro.pressure import PressureConfig


def make_pair(node_factory, pressure, client_cfg=None, **node_kwargs):
    client = node_factory("client", pressure=pressure, **node_kwargs)
    server = node_factory("server", pressure=pressure, **node_kwargs)
    conn = client.connect(
        server.address, client_cfg or ConnectionConfig(), peer_name="server"
    )
    peer = server.accept(timeout=5.0)
    assert peer is not None
    return client, server, conn, peer


SMALL = PressureConfig(
    node_bytes=16 * 1024, conn_bytes=16 * 1024, delivery_quota_bytes=8 * 1024
)


class TestFailFast:
    def test_rejects_when_budget_exhausted(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="fail-fast")
        )
        client.pressure.force_reserve("send", conn.conn_id, SMALL.conn_bytes)
        with pytest.raises(NCSOverloaded) as excinfo:
            conn.send(b"x" * 64)
        assert excinfo.value.site == "send"
        assert client.pressure.snapshot()["admission_rejections"] == 1
        client.pressure.release("send", conn.conn_id, SMALL.conn_bytes)
        # Budget freed: the same send now goes through.
        conn.send(b"x" * 64, wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"x" * 64

    def test_rejection_is_fast(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="fail-fast")
        )
        client.pressure.force_reserve("send", conn.conn_id, SMALL.conn_bytes)
        samples = []
        for _ in range(30):
            started = time.perf_counter()
            with pytest.raises(NCSOverloaded):
                conn.send(b"y")
            samples.append(time.perf_counter() - started)
        samples.sort()
        assert samples[len(samples) // 2] < 0.001  # median < 1 ms
        client.pressure.release("send", conn.conn_id, SMALL.conn_bytes)


class TestBlock:
    def test_blocks_then_times_out(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="block")
        )
        client.pressure.force_reserve("send", conn.conn_id, SMALL.conn_bytes)
        started = time.monotonic()
        with pytest.raises(NCSTimeout):
            conn.send(b"z" * 64, wait=True, timeout=0.3)
        assert 0.25 <= time.monotonic() - started < 2.0
        assert client.pressure.snapshot()["admission_waits"] >= 1
        client.pressure.release("send", conn.conn_id, SMALL.conn_bytes)

    def test_blocked_send_proceeds_when_budget_frees(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="block")
        )
        client.pressure.force_reserve("send", conn.conn_id, SMALL.conn_bytes)

        def free_later():
            time.sleep(0.2)
            client.pressure.release("send", conn.conn_id, SMALL.conn_bytes)

        import threading

        threading.Thread(target=free_later, daemon=True).start()
        conn.send(b"w" * 64, wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"w" * 64


class TestShedOldest:
    def test_sheds_stalest_delivery_to_admit_send(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="shed-oldest")
        )
        # Fill the *client's* delivery site: the server sends messages
        # the client application never picks up.
        for index in range(3):
            peer.send(bytes([index]) * 4096, wait=True, timeout=5.0)
        deadline = time.monotonic() + 5.0
        while (
            client.pressure.site_used("delivery", conn.conn_id) < 3 * 4096
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        # A large send no longer fits; shed-oldest evicts parked
        # deliveries (oldest first) instead of failing.
        conn.send(b"s" * 8192, wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"s" * 8192
        snap = client.pressure.snapshot()
        assert snap["deliveries_shed"] >= 1
        assert snap["shed_bytes"] >= 4096
        assert snap["shed_control_pdus"] == 0
        # The evicted message is message 0 (the stalest); a later recv
        # yields a younger survivor, not the shed one.
        survivor = conn.recv(1.0)
        assert survivor is not None and survivor[0] != 0

    def test_raises_when_nothing_left_to_shed(self, node_factory):
        client, server, conn, peer = make_pair(
            node_factory, SMALL, ConnectionConfig(admission="shed-oldest")
        )
        client.pressure.force_reserve("send", conn.conn_id, SMALL.conn_bytes)
        with pytest.raises(NCSOverloaded):
            conn.send(b"x" * 64)
        client.pressure.release("send", conn.conn_id, SMALL.conn_bytes)


class TestSlowConsumer:
    def test_credit_gate_closes_and_reopens(self, node_factory):
        pressure = PressureConfig(
            node_bytes=1 << 20,
            conn_bytes=1 << 20,
            delivery_quota_bytes=8 * 1024,
        )
        client, server, conn, peer = make_pair(node_factory, pressure)
        for _ in range(40):
            conn.send(b"m" * 2048)
        deadline = time.monotonic() + 5.0
        while not peer.credit_gate_closed and time.monotonic() < deadline:
            time.sleep(0.02)
        assert peer.credit_gate_closed
        stats = peer.stats()
        assert stats["slow_consumer_trips"] >= 1
        assert stats["credits_withheld"] > 0
        # The stalled sender shows up in its flow-control counters.
        sender_deadline = time.monotonic() + 5.0
        while (
            conn.metrics_totals().get("fc_tx_credit_stalls", 0) == 0
            and time.monotonic() < sender_deadline
        ):
            time.sleep(0.05)
        assert conn.metrics_totals()["fc_tx_credit_stalls"] > 0
        # Draining the queue reopens the gate and flushes the withheld
        # credits in one coalesced grant; traffic resumes.
        drained = 0
        while peer.recv(0.5) is not None:
            drained += 1
        assert drained == 40
        assert not peer.credit_gate_closed
        conn.send(b"after", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"after"

    def test_gated_peer_stays_pinned_under_resync(self, node_factory):
        # Regression for the credit-trickle leak: a stalled sender's
        # credit *resynchronization* must not mint fresh credits while
        # the receiver's slow-consumer gate is closed.  The two-phase
        # protocol sends a CreditResyncPdu instead; the gated receiver
        # answers with a zero-credit pin, and the send window stays shut
        # until the application drains below resume_fraction.
        pressure = PressureConfig(
            node_bytes=1 << 20,
            conn_bytes=1 << 20,
            delivery_quota_bytes=8 * 1024,
        )
        client, server, conn, peer = make_pair(node_factory, pressure)
        conn.fc_sender.resync_timeout = 0.1  # several cycles per second
        for _ in range(40):
            conn.send(b"m" * 2048)
        deadline = time.monotonic() + 5.0
        while not peer.credit_gate_closed and time.monotonic() < deadline:
            time.sleep(0.02)
        assert peer.credit_gate_closed
        # The sender stalls, raises a resync request, and gets pinned.
        deadline = time.monotonic() + 5.0
        while (
            conn.metrics_totals().get("fc_tx_pinned_replies", 0) == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        totals = conn.metrics_totals()
        assert totals["fc_tx_resync_requests"] >= 1
        assert totals["fc_tx_pinned_replies"] >= 1
        assert peer.resync_requests_answered >= 1
        released = totals["fc_tx_released_sdus"]
        # Many resync cycles later: still no unilateral restore, and not
        # one extra SDU released — the window is pinned, not trickling.
        time.sleep(0.5)
        totals = conn.metrics_totals()
        assert totals["fc_tx_resyncs"] == 0
        assert totals["fc_tx_released_sdus"] == released
        assert peer.credit_gate_closed
        # Draining below resume_fraction reopens the gate and flushes
        # the withheld grants; everything queued arrives.
        drained = 0
        while peer.recv(1.0) is not None:
            drained += 1
        assert drained == 40
        assert not peer.credit_gate_closed
        conn.send(b"after", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"after"

    def test_budget_returns_to_zero_after_traffic(self, node_factory):
        client, server, conn, peer = make_pair(node_factory, SMALL)
        for _ in range(5):
            conn.send(b"q" * 1024, wait=True, timeout=5.0)
            assert peer.recv(5.0) is not None
        deadline = time.monotonic() + 5.0
        while (
            client.pressure.used() + server.pressure.used() > 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert client.pressure.used() == 0
        assert server.pressure.used() == 0


class TestHealthIntegration:
    def test_credit_gate_surfaces_overloaded(self, node_factory):
        pressure = PressureConfig(
            node_bytes=1 << 20,
            conn_bytes=1 << 20,
            delivery_quota_bytes=4 * 1024,
        )
        client, server, conn, peer = make_pair(node_factory, pressure)
        for _ in range(20):
            conn.send(b"h" * 2048)
        deadline = time.monotonic() + 5.0
        while not peer.credit_gate_closed and time.monotonic() < deadline:
            time.sleep(0.02)
        report = server.health()
        assert report["state"] in ("OVERLOADED", "STALLED", "DEGRADED")
        assert "pressure" in report
        states = [c["state"] for c in report["connections"]]
        assert "OVERLOADED" in states


class TestBatchMaxValidation:
    def test_nonpositive_batch_max_rejected(self, node_factory):
        from repro.core.node import _PendingConnect
        from repro.protocol.pdus import ConnectRequestPdu

        client = node_factory("client")
        server = node_factory("server")
        conn_id = client._new_conn_id()
        pending = _PendingConnect()
        client._pending[conn_id] = pending
        request = ConnectRequestPdu(
            connection_id=conn_id,
            src_node=client.name,
            dst_node="server",
            src_data_port=0,
            flow_control="none",
            error_control="none",
            interface="sci",
            sdu_size=1024,
            initial_credits=16,
            window_size=16,
            rate_pps=0.0,
            batch_max=0,  # hostile: the dataclass is bypassable on the wire
        )
        client.control_send(client.control_link(server.address), request)
        assert pending.event.wait(5.0)
        assert pending.reject_reason is not None
        assert "batch_max" in pending.reject_reason
        client._pending.pop(conn_id, None)

    def test_huge_batch_max_clamped_to_ceiling(self, node_factory):
        client = node_factory("client")
        server = node_factory("server", batch_max_ceiling=8)
        conn = client.connect(
            server.address,
            ConnectionConfig(batch_max=500),
            peer_name="server",
        )
        peer = server.accept(timeout=5.0)
        assert peer is not None
        assert peer.config.batch_max == 8
        # The clamped connection still moves data.
        conn.send(b"clamped", wait=True, timeout=5.0)
        assert peer.recv(5.0) == b"clamped"

    def test_normal_batch_max_passes_through(self, node_factory):
        client = node_factory("client")
        server = node_factory("server")
        conn = client.connect(
            server.address, ConnectionConfig(batch_max=4), peer_name="server"
        )
        peer = server.accept(timeout=5.0)
        assert peer.config.batch_max == 4
