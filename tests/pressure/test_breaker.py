"""CircuitBreaker state machine with an explicit (injected) clock."""

import pytest

from repro.pressure import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)


def make(threshold=3, **kwargs):
    kwargs.setdefault("window", 1.0)
    kwargs.setdefault("open_base", 0.5)
    kwargs.setdefault("open_max", 4.0)
    kwargs.setdefault("jitter", 0.0)
    return CircuitBreaker(failure_threshold=threshold, **kwargs)


def test_trips_after_threshold_failures_in_window():
    breaker = make(threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure(0.2)
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 1


def test_failures_outside_window_do_not_trip():
    breaker = make(threshold=3, window=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.5)
    breaker.record_failure(2.0)  # first two pruned by now
    assert breaker.state == BREAKER_CLOSED


def test_open_rejects_until_probe_deadline():
    breaker = make(threshold=1, open_base=0.5)
    breaker.record_failure(0.0)
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow(0.1)
    assert not breaker.allow(0.4)
    assert breaker.rejected == 2
    assert breaker.probe_eta(0.4) == pytest.approx(0.1)
    # Deadline passed: one probe allowed, state HALF_OPEN.
    assert breaker.allow(0.6)
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.probes == 1


def test_half_open_failure_reopens_with_doubled_hold():
    breaker = make(threshold=1, open_base=0.5, open_max=4.0)
    breaker.record_failure(0.0)  # hold 0.5
    assert breaker.allow(0.6)
    breaker.record_failure(0.6)  # re-open: hold 1.0
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow(1.5)
    assert breaker.allow(1.7)


def test_open_hold_caps_at_open_max():
    breaker = make(threshold=1, open_base=1.0, open_max=2.0)
    now = 0.0
    for _ in range(5):
        breaker.record_failure(now)
        eta = breaker.probe_eta(now)
        assert eta <= 2.0
        now += eta
        assert breaker.allow(now)


def test_success_resets_everything():
    breaker = make(threshold=2)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.allow(1.0)  # half-open probe
    breaker.record_success(1.0)
    assert breaker.state == BREAKER_CLOSED
    status = breaker.status()
    assert status["recent_failures"] == 0
    assert status["consecutive_opens"] == 0
    # History cleared: takes a full threshold again to re-trip.
    breaker.record_failure(1.1)
    assert breaker.state == BREAKER_CLOSED


def test_seeded_jitter_is_deterministic():
    a = CircuitBreaker(failure_threshold=1, jitter=0.2, seed=42)
    b = CircuitBreaker(failure_threshold=1, jitter=0.2, seed=42)
    a.record_failure(0.0)
    b.record_failure(0.0)
    assert a.probe_eta(0.0) == b.probe_eta(0.0)
    c = CircuitBreaker(failure_threshold=1, jitter=0.2, seed=43)
    c.record_failure(0.0)
    assert c.probe_eta(0.0) != a.probe_eta(0.0)


def test_threshold_zero_disables():
    breaker = CircuitBreaker(failure_threshold=0)
    for _ in range(100):
        breaker.record_failure(0.0)
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow(0.0)
    assert breaker.trips == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=-1)
    with pytest.raises(ValueError):
        CircuitBreaker(window=0)
    with pytest.raises(ValueError):
        CircuitBreaker(jitter=1.0)


def test_status_shape():
    breaker = make(threshold=1)
    breaker.record_failure(0.0)
    breaker.allow(0.0)
    status = breaker.status()
    assert status["state"] == BREAKER_OPEN
    assert status["trips"] == 1
    assert status["rejected"] == 1
