"""MemoryBudget accounting: ceilings, oversize exemption, overdraft."""

import threading
import time

import pytest

from repro.pressure import MemoryBudget, PressureConfig, pressure_from_env
from repro.pressure.budget import SITES, _parse_bytes


def test_reserve_and_release_round_trip():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    assert budget.try_reserve("send", 1, 400)
    assert budget.used() == 400
    assert budget.used(1) == 400
    assert budget.site_used("send") == 400
    budget.release("send", 1, 400)
    assert budget.used() == 0


def test_node_ceiling_rejects_across_connections():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    assert budget.try_reserve("send", 1, 600)
    assert not budget.try_reserve("send", 2, 600)
    assert budget.try_reserve("send", 2, 400)


def test_conn_ceiling_rejects_within_connection():
    budget = MemoryBudget(node_bytes=10_000, conn_bytes=500)
    assert budget.try_reserve("send", 1, 400)
    assert not budget.try_reserve("send", 1, 200)
    # A different connection still has room under the node ceiling.
    assert budget.try_reserve("send", 2, 400)


def test_conn_ceiling_counts_all_sites_together():
    budget = MemoryBudget(node_bytes=10_000, conn_bytes=500)
    assert budget.try_reserve("send", 1, 300)
    budget.force_reserve("delivery", 1, 150)
    assert not budget.try_reserve("reassembly", 1, 100)


def test_oversize_message_admitted_only_when_idle():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    # Bigger than the ceiling but nothing else in flight: admitted, so a
    # single huge message serializes instead of deadlocking.
    assert budget.try_reserve("send", 1, 250)
    # ...but never stacked on top of existing usage.
    assert not budget.try_reserve("send", 1, 250)
    assert not budget.try_reserve("send", 2, 10)
    budget.release("send", 1, 250)
    assert budget.try_reserve("send", 2, 10)


def test_force_reserve_overdrafts_and_counts():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    assert budget.try_reserve("send", 1, 90)
    budget.force_reserve("delivery", 2, 50)
    assert budget.used() == 140
    snap = budget.snapshot()
    assert snap["forced_bytes"] == 40  # only the part past the ceiling


def test_release_clamps_to_held():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    assert budget.try_reserve("send", 1, 100)
    budget.release("send", 1, 9999)
    assert budget.used() == 0
    budget.release("send", 7, 50)  # unknown connection: no-op
    assert budget.used() == 0


def test_set_level_syncs_absolute():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    budget.set_level("reassembly", 1, 300)
    assert budget.site_used("reassembly", 1) == 300
    budget.set_level("reassembly", 1, 120)
    assert budget.site_used("reassembly", 1) == 120
    budget.set_level("reassembly", 1, 0)
    assert budget.used() == 0


def test_forget_connection_frees_everything():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    assert budget.try_reserve("send", 1, 100)
    budget.force_reserve("delivery", 1, 200)
    budget.forget_connection(1)
    assert budget.used() == 0
    assert budget.used(1) == 0
    for site in SITES:
        assert budget.site_used(site) == 0


def test_peaks_and_snapshot_shape():
    budget = MemoryBudget(node_bytes=1000, conn_bytes=1000)
    assert budget.try_reserve("send", 1, 700)
    budget.release("send", 1, 700)
    snap = budget.snapshot()
    assert snap["peak_used"] == 700
    assert snap["site_peaks"]["send"] == 700
    assert snap["used"] == 0
    assert snap["shed_control_pdus"] == 0
    assert snap["connections"] == {}  # empty slots are elided


def test_reserve_blocking_ok_after_release():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    assert budget.try_reserve("send", 1, 100)
    done = []

    def blocked():
        done.append(budget.reserve_blocking("send", 2, 50))

    thread = threading.Thread(target=blocked, daemon=True)
    thread.start()
    time.sleep(0.1)
    assert not done  # still waiting
    budget.release("send", 1, 100)
    thread.join(timeout=2.0)
    assert done == ["ok"]
    assert budget.snapshot()["admission_waits"] == 1


def test_reserve_blocking_timeout():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    assert budget.try_reserve("send", 1, 100)
    started = time.monotonic()
    outcome = budget.reserve_blocking(
        "send", 2, 50, deadline=time.monotonic() + 0.2
    )
    assert outcome == "timeout"
    assert time.monotonic() - started >= 0.15
    assert budget.snapshot()["admission_wait_seconds"] > 0


def test_reserve_blocking_abort():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    assert budget.try_reserve("send", 1, 100)
    outcome = budget.reserve_blocking(
        "send", 2, 50, should_abort=lambda: True
    )
    assert outcome == "aborted"


def test_invalid_site_and_sizes_raise():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    with pytest.raises(ValueError):
        budget.try_reserve("bogus", 1, 10)
    with pytest.raises(ValueError):
        budget.try_reserve("send", 1, -1)
    with pytest.raises(ValueError):
        MemoryBudget(node_bytes=0, conn_bytes=100)


def test_record_shed_telemetry():
    budget = MemoryBudget(node_bytes=100, conn_bytes=100)
    budget.record_shed(42)
    budget.count_rejection()
    snap = budget.snapshot()
    assert snap["deliveries_shed"] == 1
    assert snap["shed_bytes"] == 42
    assert snap["admission_rejections"] == 1


def test_pressure_config_validation():
    with pytest.raises(ValueError):
        PressureConfig(node_bytes=0)
    with pytest.raises(ValueError):
        PressureConfig(resume_fraction=1.5)
    with pytest.raises(ValueError):
        PressureConfig(policy="drop-newest")


def test_parse_bytes_suffixes():
    assert _parse_bytes("512") == 512
    assert _parse_bytes("4k") == 4096
    assert _parse_bytes("2M") == 2 << 20
    assert _parse_bytes("1g") == 1 << 30
    with pytest.raises(ValueError):
        _parse_bytes("0")


def test_pressure_from_env(monkeypatch):
    monkeypatch.setenv("NCS_PRESSURE_NODE_BYTES", "8m")
    monkeypatch.setenv("NCS_PRESSURE_CONN_BYTES", "2m")
    monkeypatch.setenv("NCS_PRESSURE_DELIVERY_BYTES", "256k")
    monkeypatch.setenv("NCS_PRESSURE_POLICY", "fail-fast")
    cfg = pressure_from_env()
    assert cfg.enabled
    assert cfg.node_bytes == 8 << 20
    assert cfg.conn_bytes == 2 << 20
    assert cfg.delivery_quota_bytes == 256 << 10
    assert cfg.policy == "fail-fast"
    monkeypatch.setenv("NCS_PRESSURE", "off")
    assert not pressure_from_env().enabled
