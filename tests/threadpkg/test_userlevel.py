"""User-level (QuickThreads-model) package specifics."""

import threading
import time

import pytest

from repro.threadpkg import DeadlockError, UserLevelThreadPackage


@pytest.fixture
def pkg():
    package = UserLevelThreadPackage()
    yield package
    package.shutdown()


class TestCooperativeSemantics:
    def test_single_thread_runs_at_a_time(self, pkg):
        """Without a yield, one thread runs to completion before others."""
        order = []

        def worker(tag):
            for _ in range(5):
                order.append(tag)  # no yield: must not interleave

        a = pkg.spawn(worker, "a")
        b = pkg.spawn(worker, "b")
        a.join(5.0)
        b.join(5.0)
        assert order == ["a"] * 5 + ["b"] * 5

    def test_yield_rotates_round_robin(self, pkg):
        order = []
        start = pkg.semaphore(0)

        def worker(tag):
            start.acquire()  # park until every worker is registered
            for _ in range(3):
                order.append(tag)
                pkg.yield_control()

        handles = [pkg.spawn(worker, tag) for tag in "abc"]
        start.release(3)
        for handle in handles:
            handle.join(5.0)
        # Strict round-robin: the first cycle visits each thread once and
        # every later cycle repeats it exactly.  (Which thread leads
        # depends on when the external release lands, so assert the
        # rotation, not the absolute phase.)
        assert sorted(order[:3]) == ["a", "b", "c"]
        assert order == order[:3] * 3

    def test_yield_without_peers_keeps_running(self, pkg):
        def lonely():
            pkg.yield_control()
            return "still me"

        handle = pkg.spawn(lonely)
        handle.join(5.0)
        assert handle.result == "still me"

    def test_switch_count_increases_with_yields(self, pkg):
        start = pkg.semaphore(0)

        def worker():
            start.acquire()
            for _ in range(10):
                pkg.yield_control()

        a = pkg.spawn(worker)
        b = pkg.spawn(worker)
        start.release(2)
        a.join(5.0)
        b.join(5.0)
        assert pkg.switch_count >= 20

    def test_current_identifies_thread(self, pkg):
        def worker():
            return pkg.current().name

        handle = pkg.spawn(worker, name="identity")
        handle.join(5.0)
        assert handle.result.startswith("identity")

    def test_current_is_none_for_external_thread(self, pkg):
        assert pkg.current() is None


class TestBlockingStallsProcess:
    def test_real_blocking_call_stalls_siblings(self, pkg):
        """The paper's §4.1 hazard: a blocking syscall in one user-level
        thread prevents every other thread from running."""
        progress = []

        def blocker():
            time.sleep(0.1)  # real blocking call while holding the baton
            progress.append(("blocker_done", time.monotonic()))

        def sibling():
            progress.append(("sibling_ran", time.monotonic()))

        blocker_handle = pkg.spawn(blocker)
        handle = pkg.spawn(sibling)
        blocker_handle.join(5.0)
        handle.join(5.0)
        events = dict((name, t) for name, t in progress)
        # The sibling could only run after the blocker's sleep finished.
        assert events["sibling_ran"] >= events["blocker_done"]

    def test_cooperative_sleep_does_not_stall_siblings(self, pkg):
        progress = []

        def cooperative_blocker():
            pkg.sleep(0.1)  # package sleep: baton is handed over
            progress.append(("blocker_done", time.monotonic()))

        def sibling():
            progress.append(("sibling_ran", time.monotonic()))

        blocker_handle = pkg.spawn(cooperative_blocker)
        handle = pkg.spawn(sibling)
        blocker_handle.join(5.0)
        handle.join(5.0)
        events = dict(progress)
        assert events["sibling_ran"] < events["blocker_done"]


class TestDeadlockDetection:
    def test_classic_ab_ba_deadlock_detected(self):
        pkg = UserLevelThreadPackage(deadlock_detection=True)
        m1, m2 = pkg.mutex(), pkg.mutex()

        def t1():
            m1.acquire()
            pkg.sleep(0.01)
            m2.acquire()

        def t2():
            m2.acquire()
            pkg.sleep(0.01)
            m1.acquire()

        a, b = pkg.spawn(t1), pkg.spawn(t2)
        assert a.join(5.0) and b.join(5.0)
        assert any(
            isinstance(h.exception, DeadlockError) for h in (a, b)
        )

    def test_no_false_positive_on_healthy_program(self):
        pkg = UserLevelThreadPackage(deadlock_detection=True)
        sem = pkg.semaphore(0)

        def consumer():
            return sem.acquire(timeout=5.0)

        def producer():
            pkg.sleep(0.02)
            sem.release()

        c = pkg.spawn(consumer)
        pkg.spawn(producer)
        c.join(5.0)
        assert c.result is True
        assert c.exception is None


class TestExternalJoin:
    def test_join_from_os_thread(self, pkg):
        handle = pkg.spawn(lambda: "done")
        result = {}

        def outside():
            handle.join(5.0)
            result["value"] = handle.result

        thread = threading.Thread(target=outside)
        thread.start()
        thread.join(5.0)
        assert result["value"] == "done"

    def test_join_self_rejected(self, pkg):
        def selfjoin():
            return pkg.current().join(1.0)

        handle = pkg.spawn(selfjoin)
        handle.join(5.0)
        assert isinstance(handle.exception, RuntimeError)

    def test_cooperative_join(self, pkg):
        def inner():
            pkg.sleep(0.02)
            return 7

        def outer():
            handle = pkg.spawn(inner)
            assert handle.join(5.0)
            return handle.result

        handle = pkg.spawn(outer)
        handle.join(5.0)
        assert handle.result == 7
