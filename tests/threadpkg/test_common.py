"""Behaviour shared by both thread packages (parametrized)."""

import time

import pytest

from repro.threadpkg import make_thread_package


@pytest.fixture(params=["kernel", "user"])
def pkg(request):
    package = make_thread_package(request.param)
    yield package
    package.shutdown()


class TestSpawnJoin:
    def test_result_propagates(self, pkg):
        handle = pkg.spawn(lambda: 41 + 1, name="worker")
        assert handle.join(5.0)
        assert handle.result == 42
        assert not handle.is_alive()

    def test_exception_captured_not_raised(self, pkg):
        def boom():
            raise ValueError("intentional")

        handle = pkg.spawn(boom, name="boom")
        assert handle.join(5.0)
        assert isinstance(handle.exception, ValueError)

    def test_args_passed(self, pkg):
        handle = pkg.spawn(lambda a, b: a * b, 6, 7)
        handle.join(5.0)
        assert handle.result == 42

    def test_many_threads_all_finish(self, pkg):
        handles = [pkg.spawn(lambda i=i: i, name=f"w{i}") for i in range(20)]
        for handle in handles:
            assert handle.join(5.0)
        assert sorted(h.result for h in handles) == list(range(20))

    def test_spawn_after_shutdown_rejected(self, pkg):
        pkg.shutdown()
        with pytest.raises(RuntimeError):
            pkg.spawn(lambda: None)


class TestYieldAndSleep:
    def test_yield_interleaves_threads(self, pkg):
        order = []

        def worker(tag):
            for _ in range(3):
                order.append(tag)
                pkg.yield_control()

        handles = [pkg.spawn(worker, tag) for tag in "ab"]
        for handle in handles:
            handle.join(5.0)
        # Both tags appear; on the cooperative package they strictly
        # alternate, on the kernel package at least both ran.
        assert set(order) == {"a", "b"}
        assert len(order) == 6

    def test_sleep_duration_respected(self, pkg):
        def sleeper():
            start = time.monotonic()
            pkg.sleep(0.05)
            return time.monotonic() - start

        handle = pkg.spawn(sleeper)
        handle.join(5.0)
        assert handle.result >= 0.045

    def test_sleepers_wake_in_deadline_order(self, pkg):
        order = []

        def sleeper(tag, duration):
            pkg.sleep(duration)
            order.append(tag)

        slow = pkg.spawn(sleeper, "slow", 0.08)
        fast = pkg.spawn(sleeper, "fast", 0.02)
        slow.join(5.0)
        fast.join(5.0)
        assert order == ["fast", "slow"]


class TestMutex:
    def test_mutual_exclusion_counter(self, pkg):
        mutex = pkg.mutex()
        state = {"count": 0}

        def worker():
            for _ in range(200):
                with mutex:
                    current = state["count"]
                    pkg.yield_control()  # force interleaving windows
                    state["count"] = current + 1

        handles = [pkg.spawn(worker) for _ in range(3)]
        for handle in handles:
            assert handle.join(20.0)
        assert state["count"] == 600

    def test_release_unlocked_raises(self, pkg):
        mutex = pkg.mutex()
        handle = pkg.spawn(mutex.release)
        handle.join(5.0)
        assert isinstance(handle.exception, RuntimeError)


class TestSemaphore:
    def test_producer_consumer_handoff(self, pkg):
        items = []
        ready = pkg.semaphore(0)

        def producer():
            for i in range(5):
                items.append(i)
                ready.release()

        def consumer():
            taken = 0
            while taken < 5:
                assert ready.acquire(timeout=5.0)
                taken += 1
            return taken

        c = pkg.spawn(consumer)
        p = pkg.spawn(producer)
        p.join(5.0)
        c.join(5.0)
        assert c.result == 5

    def test_timeout_returns_false(self, pkg):
        sem = pkg.semaphore(0)
        handle = pkg.spawn(lambda: sem.acquire(timeout=0.05))
        handle.join(5.0)
        assert handle.result is False

    def test_initial_value_consumable(self, pkg):
        sem = pkg.semaphore(3)
        handle = pkg.spawn(
            lambda: [sem.acquire(timeout=0.5) for _ in range(4)]
        )
        handle.join(5.0)
        assert handle.result == [True, True, True, False]

    def test_release_many(self, pkg):
        sem = pkg.semaphore(0)

        def taker():
            return all(sem.acquire(timeout=2.0) for _ in range(3))

        handle = pkg.spawn(taker)
        pkg.spawn(lambda: sem.release(3)).join(5.0)
        handle.join(5.0)
        assert handle.result is True


class TestChannel:
    def test_fifo_order(self, pkg):
        channel = pkg.channel()

        def producer():
            for i in range(10):
                channel.put(i)

        def consumer():
            return [channel.get(timeout=5.0) for _ in range(10)]

        c = pkg.spawn(consumer)
        pkg.spawn(producer).join(5.0)
        c.join(5.0)
        assert c.result == list(range(10))

    def test_bounded_capacity_blocks_put(self, pkg):
        channel = pkg.channel(capacity=2)

        def producer():
            results = [channel.put(i, timeout=0.05) for i in range(3)]
            return results

        handle = pkg.spawn(producer)
        handle.join(5.0)
        assert handle.result == [True, True, False]

    def test_get_timeout_raises(self, pkg):
        channel = pkg.channel()

        def getter():
            try:
                channel.get(timeout=0.05)
                return "got"
            except TimeoutError:
                return "timeout"

        handle = pkg.spawn(getter)
        handle.join(5.0)
        assert handle.result == "timeout"

    def test_try_get(self, pkg):
        channel = pkg.channel()
        channel.put("item")
        ok, item = channel.try_get()
        assert ok and item == "item"
        ok, item = channel.try_get()
        assert not ok and item is None

    def test_external_producer_internal_consumer(self, pkg):
        # Application code (not a package thread) feeding a node channel.
        channel = pkg.channel(capacity=4)
        handle = pkg.spawn(lambda: [channel.get(timeout=5.0) for _ in range(6)])
        for i in range(6):
            channel.put(i)
        handle.join(5.0)
        assert handle.result == list(range(6))

    def test_qsize(self, pkg):
        channel = pkg.channel()
        channel.put(1)
        channel.put(2)
        assert channel.qsize() == 2
        assert not channel.empty()


class TestCondition:
    def test_notify_wakes_waiter(self, pkg):
        cond = pkg.condition()
        state = {"flag": False}

        def waiter():
            while not state["flag"]:
                if not cond.wait(timeout=2.0):
                    return False
            return True

        handle = pkg.spawn(waiter)

        def signaller():
            pkg.sleep(0.02)
            state["flag"] = True
            cond.notify()

        pkg.spawn(signaller)
        handle.join(5.0)
        assert handle.result is True

    def test_notify_all(self, pkg):
        cond = pkg.condition()
        woken = []

        def waiter(tag):
            if cond.wait(timeout=2.0):
                woken.append(tag)

        handles = [pkg.spawn(waiter, i) for i in range(3)]

        def signaller():
            pkg.sleep(0.05)
            cond.notify_all()

        pkg.spawn(signaller)
        for handle in handles:
            handle.join(5.0)
        assert sorted(woken) == [0, 1, 2]


class TestContextSwitchProbe:
    def test_probe_returns_positive_cost(self, pkg):
        cost = pkg.context_switch_cost_probe(rounds=50)
        assert 0 < cost < 0.01  # sane: under 10 ms per switch
