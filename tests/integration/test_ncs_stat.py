"""The ncs_stat CLI: snapshot loading, error paths, and the health demo.

Runs main() in process (argv-style) rather than spawning interpreters;
the multiprocess tool coverage lives in test_tools_multiprocess.py.
"""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.tools.ncs_stat import (
    SnapshotError,
    format_health,
    load_snapshot,
    main,
)


@pytest.fixture
def snapshot_file(tmp_path):
    registry = MetricsRegistry(enabled=True)
    registry.counter("ncs_messages_sent_total").inc(42)
    path = tmp_path / "run.json"
    registry.dump(str(path))
    return str(path)


class TestLoadSnapshot:
    def test_valid_snapshot_round_trips(self, snapshot_file):
        snap = load_snapshot(snapshot_file)
        assert snap["counters"][0]["name"] == "ncs_messages_sent_total"
        # All three sections present even if the file omitted some.
        assert set(snap) >= {"counters", "gauges", "histograms"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="not found"):
            load_snapshot(str(tmp_path / "nope.json"))

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{", encoding="utf-8")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            load_snapshot(str(path))

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        with pytest.raises(SnapshotError, match="not a metrics snapshot"):
            load_snapshot(str(path))


class TestSnapshotCommand:
    def test_loads_and_renders(self, snapshot_file, capsys):
        assert main(["snapshot", snapshot_file]) == 0
        assert "ncs_messages_sent_total" in capsys.readouterr().out

    def test_load_flag_spelling(self, snapshot_file, capsys):
        assert main(["snapshot", "--load", snapshot_file]) == 0
        assert "ncs_messages_sent_total" in capsys.readouterr().out

    def test_legacy_top_level_load_flag(self, snapshot_file, capsys):
        assert main(["--load", snapshot_file]) == 0
        assert "ncs_messages_sent_total" in capsys.readouterr().out

    def test_json_output(self, snapshot_file, capsys):
        assert main(["snapshot", snapshot_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"][0]["value"] == 42.0

    def test_missing_file_exits_nonzero_with_message(self, tmp_path, capsys):
        assert main(["snapshot", str(tmp_path / "gone.json")]) == 1
        err = capsys.readouterr().err
        assert "ncs_stat: error" in err and "not found" in err

    def test_corrupt_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("not json at all", encoding="utf-8")
        assert main(["snapshot", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_no_path_exits_two(self, capsys):
        assert main(["snapshot"]) == 2
        assert "no snapshot file" in capsys.readouterr().err


class TestTraceCommand:
    def test_missing_trace_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "none.jsonl")]) == 1
        assert "cannot read trace file" in capsys.readouterr().err


class TestHealthCommand:
    def test_healthy_demo_exits_zero(self, capsys):
        assert main(["health", "--period", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "node health-a: OK" in out
        assert "watchdog samples" in out

    def test_starved_demo_exits_nonzero_and_dumps(self, capsys):
        assert main(["health", "--starve", "--period", "0.2"]) == 1
        out = capsys.readouterr().out
        assert "STALLED" in out
        assert "flight recorder dump" in out

    def test_format_health_renders_reasons(self):
        report = {
            "node": "n",
            "state": "STALLED",
            "connections": [
                {
                    "conn_id": 1,
                    "peer": "p",
                    "queued": 9,
                    "retransmits": 0,
                    "state": "STALLED",
                    "reasons": ["credit starvation: wedged"],
                }
            ],
            "samples_taken": 4,
            "recorder_dumps": 1,
        }
        text = format_health(report)
        assert "node n: STALLED" in text
        assert "conn 1 peer=p queued=9" in text
        assert "credit starvation" in text
