"""Reliability under injected faults on the live runtime."""

import pytest

from repro.core import ConnectionConfig

PAYLOAD = bytes(range(256)) * 200  # 50 KB -> 13 SDUs


class TestLossRecovery:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_selective_repeat_over_lossy_aci(self, connected_pair, seed):
        conn, peer = connected_pair(
            ConnectionConfig(
                interface="aci",
                error_control="selective_repeat",
                loss_rate=0.15,
                fault_seed=seed,
                retransmit_timeout=0.08,
                max_retries=16,
            )
        )
        conn.send(PAYLOAD, wait=True, timeout=30.0)
        assert peer.recv(timeout=10.0) == PAYLOAD
        stats = conn.stats()
        assert stats["injected_drops"] > 0
        assert stats["retransmitted_sdus"] >= stats["injected_drops"]

    def test_go_back_n_over_lossy_aci(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(
                interface="aci",
                error_control="go_back_n",
                loss_rate=0.08,
                fault_seed=5,
                retransmit_timeout=0.08,
                max_retries=16,
            )
        )
        conn.send(PAYLOAD, wait=True, timeout=30.0)
        assert peer.recv(timeout=10.0) == PAYLOAD

    def test_corruption_detected_and_repaired(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(
                interface="aci",
                error_control="selective_repeat",
                corrupt_rate=0.2,
                fault_seed=9,
                retransmit_timeout=0.08,
                max_retries=16,
            )
        )
        conn.send(PAYLOAD, wait=True, timeout=30.0)
        assert peer.recv(timeout=10.0) == PAYLOAD
        # The per-SDU CRC (the AAL5 stand-in) caught the damage.
        assert peer.stats()["corrupted_count"] > 0

    def test_multiple_messages_survive_loss(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(
                interface="aci",
                error_control="selective_repeat",
                loss_rate=0.1,
                fault_seed=13,
                retransmit_timeout=0.08,
                max_retries=16,
            )
        )
        payloads = [bytes([i]) * 10000 for i in range(5)]
        handles = [conn.send(p) for p in payloads]
        received = [peer.recv(timeout=15.0) for _ in payloads]
        for handle in handles:
            assert handle.wait(timeout=30.0)
        assert received == payloads  # reliable AND ordered per connection


class TestUnreliableByChoice:
    def test_null_ec_drops_silently(self, connected_pair):
        """The media configuration: loss is tolerated, never repaired."""
        conn, peer = connected_pair(
            ConnectionConfig(
                interface="aci",
                flow_control="none",
                error_control="none",
                loss_rate=0.5,
                fault_seed=3,
            )
        )
        sent = 60
        for index in range(sent):
            conn.send(bytes([index]) * 100)
        received = 0
        while peer.recv(timeout=0.3) is not None:
            received += 1
        assert 0 < received < sent
        assert conn.stats()["injected_drops"] > 0
