"""CLI tools across real OS processes.

The rest of the suite runs all nodes in one process for determinism;
these tests prove the wire protocol is genuinely process-agnostic by
spawning the echo server as a subprocess and driving it with the client
and ping tools.
"""

import subprocess
import sys
import time

import pytest


@pytest.fixture
def server_process():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.echo_server",
         "--max-connections", "4"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("LISTENING "), line
    address = line.split(" ", 1)[1]
    yield address, process
    process.terminate()
    process.wait(timeout=10)


class TestMultiprocess:
    def test_ping(self, server_process):
        address, _process = server_process
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.ping", address, "--count", "3"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("ok") == 3

    def test_echo_client_sweep(self, server_process):
        address, _process = server_process
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.echo_client", address,
             "--sizes", "1,4096,65536", "--iterations", "10"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "rtt_us" in result.stdout
        assert "64K" in result.stdout

    def test_echo_client_bypass_mode(self, server_process):
        address, _process = server_process
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.echo_client", address,
             "--sizes", "1,1024", "--iterations", "5", "--mode", "bypass",
             "--flow-control", "none", "--error-control", "none"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr

    def test_in_process_client_against_subprocess_server(self, server_process):
        address, _process = server_process
        host, _, port = address.rpartition(":")
        from repro.core import ConnectionConfig, Node

        node = Node("xproc-client")
        try:
            connection = node.connect(
                (host, int(port)), ConnectionConfig(interface="sci"),
                peer_name="server",
            )
            connection.send(b"cross-process", wait=True, timeout=10.0)
            assert connection.recv(timeout=10.0) == b"cross-process"
        finally:
            node.close()
