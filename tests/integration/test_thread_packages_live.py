"""Whole-node runs on the user-level thread package (§4.1)."""

import pytest

from repro.core import ConnectionConfig


class TestUserLevelNodes:
    def test_user_package_end_to_end(self, node_factory):
        a = node_factory("ul-a", thread_package="user")
        b = node_factory("ul-b", thread_package="user")
        conn = a.connect(b.address, ConnectionConfig(interface="sci"),
                         peer_name="b")
        peer = b.accept(timeout=5.0)
        payload = b"user-level" * 1000
        conn.send(payload, wait=True, timeout=15.0)
        assert peer.recv(timeout=10.0) == payload

    def test_mixed_package_pairs(self, node_factory):
        """A user-level node and a kernel-level node interoperate — the
        wire protocol doesn't know which threads run it."""
        a = node_factory("mix-user", thread_package="user")
        b = node_factory("mix-kernel", thread_package="kernel")
        conn = a.connect(b.address, ConnectionConfig(interface="aci"),
                         peer_name="b")
        peer = b.accept(timeout=5.0)
        conn.send(b"from user pkg", wait=True, timeout=10.0)
        assert peer.recv(timeout=5.0) == b"from user pkg"
        peer.send(b"from kernel pkg", wait=True, timeout=10.0)
        assert conn.recv(timeout=5.0) == b"from kernel pkg"

    def test_user_package_receive_thread_polls(self, node_factory):
        """The receive path on the user package must use try_recv (the
        §4.1 non-blocking rule) — verified by it simply working: a
        blocking recv would stall the whole node."""
        a = node_factory("poll-a", thread_package="user")
        b = node_factory("poll-b", thread_package="user")
        conns = [
            a.connect(b.address, ConnectionConfig(interface="sci"),
                      peer_name="b")
            for _ in range(3)
        ]
        peers = [b.accept(timeout=5.0) for _ in range(3)]
        # All three connections stay live simultaneously: if any receive
        # thread blocked the process, the others would starve.
        by_id = {p.conn_id: p for p in peers}
        for index, conn in enumerate(conns):
            conn.send(f"stream-{index}".encode(), wait=True, timeout=15.0)
        for index, conn in enumerate(conns):
            assert by_id[conn.conn_id].recv(timeout=5.0) == (
                f"stream-{index}".encode()
            )
