"""End-to-end matrix: every interface x flow control x error control.

The paper's flexibility claim is exactly this matrix: "users can
configure efficient point-to-point primitives by selecting suitable flow
control, error control algorithms, and communication interfaces on a
per-connection basis" — and the primitives behave identically afterwards.
"""

import pytest

from repro.core import ConnectionConfig

INTERFACES = ["sci", "aci", "hpi"]
FLOW_CONTROLS = ["credit", "window", "rate", "none"]
ERROR_CONTROLS = ["selective_repeat", "go_back_n", "none"]

PAYLOAD = bytes(range(256)) * 80  # 20 KB -> 5 SDUs


@pytest.mark.parametrize("interface", INTERFACES)
@pytest.mark.parametrize("flow_control", FLOW_CONTROLS)
def test_interface_flow_matrix(connected_pair, interface, flow_control):
    conn, peer = connected_pair(
        ConnectionConfig(
            interface=interface,
            flow_control=flow_control,
            error_control="selective_repeat",
            rate_pps=20000.0,
        )
    )
    conn.send(PAYLOAD, wait=True, timeout=10.0)
    assert peer.recv(timeout=5.0) == PAYLOAD


@pytest.mark.parametrize("interface", INTERFACES)
@pytest.mark.parametrize("error_control", ERROR_CONTROLS)
def test_interface_error_matrix(connected_pair, interface, error_control):
    conn, peer = connected_pair(
        ConnectionConfig(
            interface=interface,
            flow_control="credit",
            error_control=error_control,
        )
    )
    handle = conn.send(PAYLOAD)
    assert peer.recv(timeout=5.0) == PAYLOAD
    assert handle.wait(timeout=10.0)


@pytest.mark.parametrize("mode", ["threaded", "bypass"])
def test_modes_with_defaults(node_factory, mode):
    client = node_factory(f"m-{mode}-c")
    server = node_factory(f"m-{mode}-s")
    server.accept_mode = mode
    conn = client.connect(
        server.address,
        ConnectionConfig(interface="sci", mode=mode),
        peer_name="s",
    )
    peer = server.accept(timeout=5.0)
    handle = conn.send(PAYLOAD)
    assert peer.recv(timeout=5.0) == PAYLOAD
    assert handle.wait(timeout=10.0)


def test_concurrent_connections_with_different_configs(node_factory):
    """The Fig. 2 shape: three differently-configured connections between
    one node pair, all live at once."""
    a = node_factory("multi-a")
    b = node_factory("multi-b")
    configs = {
        "media": ConnectionConfig(
            interface="aci", flow_control="none", error_control="none"
        ),
        "paced": ConnectionConfig(
            interface="aci", flow_control="rate", error_control="none",
            rate_pps=50000.0,
        ),
        "reliable": ConnectionConfig(
            interface="sci", flow_control="credit",
            error_control="selective_repeat",
        ),
    }
    conns = {name: a.connect(b.address, config, peer_name="b")
             for name, config in configs.items()}
    peers = {}
    for _ in configs:
        peer = b.accept(timeout=5.0)
        for name, conn in conns.items():
            if conn.conn_id == peer.conn_id:
                peers[name] = peer
    for name, conn in conns.items():
        conn.send(f"on-{name}".encode())
    for name, peer in peers.items():
        assert peer.recv(timeout=5.0) == f"on-{name}".encode()


def test_large_transfer_across_many_sdus(connected_pair):
    conn, peer = connected_pair(
        ConnectionConfig(interface="sci", sdu_size=4096)
    )
    payload = bytes(range(256)) * 2048  # 512 KB = 128 SDUs
    conn.send(payload, wait=True, timeout=30.0)
    assert peer.recv(timeout=10.0) == payload


def test_interleaved_sends_from_both_ends(connected_pair):
    conn, peer = connected_pair()
    for index in range(10):
        conn.send(f"c{index}".encode())
        peer.send(f"s{index}".encode())
    client_got = [conn.recv(timeout=5.0) for _ in range(10)]
    server_got = [peer.recv(timeout=5.0) for _ in range(10)]
    assert client_got == [f"s{i}".encode() for i in range(10)]
    assert server_got == [f"c{i}".encode() for i in range(10)]
