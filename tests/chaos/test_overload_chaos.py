"""Chaos under overload: fault injection and memory pressure together.

Three shapes, all pinned to the same invariants — no deadlock, budget
occupancy stays bounded, the application sees exactly-once delivery,
and the control plane is never load-shed:

1. supervised echo under 25% frame loss at 2x offered load with a
   mid-stream transport severing, on nodes with tight memory budgets;
2. a shed-oldest bulk connection and a block-policy session sharing one
   node budget — the bulk traffic sheds, the session loses nothing;
3. a circuit breaker facing a dead peer — reconnect attempts are
   rate-limited by OPEN windows instead of storming.
"""

import threading
import time

import pytest

from repro.core import ConnectionConfig, Node, NodeConfig
from repro.core.errors import NCSUnavailable, NcsError
from repro.faults import parse_fault_plan
from repro.pressure import PressureConfig
from repro.recovery import CONNECTED, RecoveryPolicy

from tests.chaos.harness import (
    assert_exactly_once,
    sever_transport,
    supervised_echo_pair,
)

#: Tight enough that the admission gate is live during the test, loose
#: enough that a 256-byte message stream keeps moving under 25% loss.
TIGHT = PressureConfig(
    node_bytes=4096, conn_bytes=4096, delivery_quota_bytes=4096
)
#: Forced (already-acked) inbound deliveries may overdraft the node
#: ceiling until the credit gate bites: one delivery quota plus one
#: credit window (initial_credits * sdu_size) of slack.
FORCED_SLACK = 4096 + 4 * 4096


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_overloaded_echo_survives_loss_and_severing(node_factory, seed):
    config = ConnectionConfig(
        fault_plan=parse_fault_plan(f"drop:rate=0.25;seed:{seed}"),
    )
    sup, echo = supervised_echo_pair(
        node_factory,
        config=config,
        session=f"ovl{seed}",
        pressure=TIGHT,
    )
    received = []
    done = threading.Event()

    def collector(expected_count):
        end = time.monotonic() + 90.0
        while len(received) < expected_count and time.monotonic() < end:
            try:
                got = sup.recv(timeout=0.2)
            except NcsError:
                time.sleep(0.05)
                continue
            if got is not None:
                received.append(got)
        done.set()

    try:
        expected = [b"ovl-%03d" % i for i in range(40)]
        drain = threading.Thread(
            target=collector, args=(len(expected),), daemon=True
        )
        drain.start()
        for index, payload in enumerate(expected):
            if index == 20:
                sever_transport(sup)
            sup.send(payload)  # 2x load: no pacing at all
        assert done.wait(90.0), (
            f"echo stream wedged: {len(received)}/{len(expected)} "
            f"(state={sup.state})"
        )
        assert_exactly_once(sup, expected, received)
        assert sup.state == CONNECTED, sup.status()
        client_node = sup.node
        snap = client_node.pressure.snapshot()
        # Admission-gated sites never pass the ceiling; forced inbound
        # deliveries may overdraft by at most the documented slack.
        assert snap["site_peaks"]["send"] <= TIGHT.node_bytes
        assert snap["peak_used"] <= TIGHT.node_bytes + FORCED_SLACK
        assert snap["shed_control_pdus"] == 0
    finally:
        sup.close()
        echo.close()


def test_shed_bulk_spares_the_session(node_factory):
    """A shed-oldest bulk connection and a block session share one tight
    node budget: bulk deliveries get evicted, the session stream does
    not lose a single message, and no control PDU is ever shed."""
    pressure = PressureConfig(
        node_bytes=24 * 1024,
        conn_bytes=20 * 1024,
        delivery_quota_bytes=16 * 1024,
    )
    client = node_factory("shed-client", pressure=pressure)
    server = node_factory("shed-server", pressure=pressure)

    bulk = client.connect(
        server.address,
        ConnectionConfig(admission="shed-oldest"),
        peer_name="shed-server",
    )
    bulk_peer = server.accept(timeout=5.0)
    session = client.connect(
        server.address,
        ConnectionConfig(admission="block"),
        peer_name="shed-server",
    )
    session_peer = server.accept(timeout=5.0)

    # Park inbound bulk on the client without ever reading it.
    for index in range(4):
        bulk_peer.send(bytes([index]) * 4096, wait=True, timeout=5.0)
    deadline = time.monotonic() + 5.0
    while (
        client.pressure.site_used("delivery", bulk.conn_id) < 4 * 4096
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)

    # The session stream now runs under the remaining budget; bulk
    # sends force evictions of the parked bulk deliveries, and once
    # nothing sheddable remains the *bulk* connection eats the
    # overload error — never the session.
    from repro.core.errors import NCSOverloaded

    expected = [b"sess-%03d" % i for i in range(20)]
    bulk_overloads = 0
    for payload in expected:
        try:
            bulk.send(b"B" * 4096)  # sheds parked deliveries as needed
        except NCSOverloaded:
            bulk_overloads += 1
        session.send(payload, wait=True, timeout=10.0)
    got = []
    while len(got) < len(expected):
        message = session_peer.recv(5.0)
        assert message is not None, f"session lost a message at {len(got)}"
        got.append(message)
    assert got == expected  # exactly-once, in order

    snap = client.pressure.snapshot()
    assert snap["deliveries_shed"] >= 1, "bulk never shed"
    assert snap["shed_control_pdus"] == 0
    assert snap["peak_used"] <= pressure.node_bytes + 4 * 4096


def test_breaker_rate_limits_reconnects_to_a_dead_peer(node_factory):
    policy = RecoveryPolicy(
        backoff_base=0.02,
        backoff_max=0.05,
        jitter=0.0,
        max_attempts=10,
        connect_timeout=0.3,
        breaker_failures=3,
        breaker_window=5.0,
        breaker_open_secs=0.1,
        breaker_open_max=0.4,
    )
    sup, echo = supervised_echo_pair(
        node_factory, policy=policy, session="breaker"
    )
    try:
        sup.send(b"alive")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                if sup.recv(timeout=0.2) is not None:
                    break
            except NcsError:
                time.sleep(0.05)
        # Kill the peer for good: every reconnect attempt must fail.
        before = sup.status()
        attempts_before = before["reconnect_attempts"]
        outages_before = before["outages"]
        echo.close()
        server_node = echo.responder.node
        server_node.close()
        sever_transport(sup)
        deadline = time.monotonic() + 30.0
        while sup.state != "UNAVAILABLE" and time.monotonic() < deadline:
            time.sleep(0.05)
        status = sup.status()
        assert sup.state == "UNAVAILABLE", status
        breaker = status["breaker"]
        assert breaker["trips"] >= 1, breaker
        assert breaker["rejected"] > 0, breaker
        # The breaker shapes the schedule; the per-outage attempt
        # budget still bounds the total work.  (Closing the peer can
        # race one doomed adoption through the half-closed listener,
        # which counts as its own outage with its own budget.)
        outages = max(1, status["outages"] - outages_before)
        assert (
            status["reconnect_attempts"] - attempts_before
            <= policy.max_attempts * outages
        )
        with pytest.raises(NCSUnavailable):
            sup.send(b"too late")
    finally:
        sup.close()
