"""End-to-end chaos: supervised echo over live SCI under fault schedules.

The core invariant of the recovery layer, asserted under every schedule:
the application sees **every message exactly once**, the session returns
to CONNECTED, and recovery time stays bounded.
"""

import time

import pytest

from repro.core import ConnectionConfig
from repro.faults import parse_fault_plan
from repro.recovery import CONNECTED, RecoveryPolicy

from tests.chaos.harness import (
    assert_exactly_once,
    collect_echoes,
    sever_transport,
    supervised_echo_pair,
)

#: Generous wall-clock bound on one outage's recovery (reconnect with
#: FAST_POLICY typically lands in the first attempt, ~20 ms).
RECOVERY_BOUND = 5.0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_echo_survives_drops_and_a_severed_transport(node_factory, seed):
    """Seeded frame drops the whole way through, plus one abrupt
    transport severing mid-stream (the classic crashed-peer shape)."""
    config = ConnectionConfig(
        fault_plan=parse_fault_plan(f"drop:rate=0.05;seed:{seed}"),
    )
    sup, echo = supervised_echo_pair(
        node_factory, config=config, session=f"drops{seed}"
    )
    try:
        expected = [b"chaos-%03d" % i for i in range(30)]
        for index, payload in enumerate(expected):
            if index == 15:
                sever_transport(sup)
            sup.send(payload)
            time.sleep(0.005)
        received = collect_echoes(sup, len(expected), deadline=60.0)
        assert_exactly_once(sup, expected, received)
        status = sup.status()
        assert sup.state == CONNECTED, status
        assert status["outages"] >= 1, "the severing went unnoticed"
        assert status["incarnations"] >= 2
        assert status["last_downtime"] < RECOVERY_BOUND
        sup.flush(timeout=10.0)
        assert sup.status()["outstanding"] == 0
    finally:
        sup.close()
        echo.close()


def test_echo_survives_repeated_injected_crashes(node_factory):
    """A peer_crash spec severs every incarnation 0.4 s in; the stream
    still completes exactly-once across the resulting reconnects."""
    config = ConnectionConfig(
        fault_plan=parse_fault_plan("peer_crash:at=0.4"),
    )
    sup, echo = supervised_echo_pair(
        node_factory, config=config, session="crashloop"
    )
    try:
        expected = [b"crash-%03d" % i for i in range(20)]
        for payload in expected:
            sup.send(payload)
            time.sleep(0.05)  # stretch the stream across >1 crash
        received = collect_echoes(sup, len(expected), deadline=60.0)
        assert_exactly_once(sup, expected, received)
        status = sup.status()
        assert status["incarnations"] >= 2, status
        assert status["replayed_messages"] >= 1, (
            "crashes mid-stream must force at least one replay"
        )
    finally:
        sup.close()
        echo.close()


def test_partition_window_delays_but_loses_nothing(node_factory):
    """A 0.6 s link partition: messages sent into the void are ledgered
    or retransmitted, and all arrive after the window closes."""
    config = ConnectionConfig(
        fault_plan=parse_fault_plan("partition:start=0.2,stop=0.8"),
    )
    policy = RecoveryPolicy(
        backoff_base=0.05, backoff_max=0.3, jitter=0.1,
        max_attempts=20, connect_timeout=2.0,
    )
    sup, echo = supervised_echo_pair(
        node_factory, config=config, policy=policy, session="partition"
    )
    try:
        expected = [b"part-%03d" % i for i in range(12)]
        for payload in expected:
            sup.send(payload)
            time.sleep(0.08)  # straddles the partition window
        received = collect_echoes(sup, len(expected), deadline=60.0)
        assert_exactly_once(sup, expected, received)
    finally:
        sup.close()
        echo.close()


def test_recovery_steps_reach_the_flight_recorder(node_factory):
    sup, echo = supervised_echo_pair(node_factory, session="recorded")
    try:
        sup.send(b"first")
        assert sup.recv(timeout=5.0) == b"first"
        sever_transport(sup)
        sup.send(b"second")
        assert collect_echoes(sup, 1, deadline=30.0) == [b"second"]
        events = [
            entry["name"]
            for entry in sup.node.recorder.snapshot()
            if entry["category"] == "recovery"
        ]
        assert "outage" in events
        assert "reconnect_attempt" in events
        assert "reconnected" in events
    finally:
        sup.close()
        echo.close()
