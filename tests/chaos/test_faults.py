"""Fault plans: grammar, validation, and deterministic execution."""

import pytest

from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    PlannedInjector,
    parse_fault_plan,
    plan_from_env,
)


class TestGrammar:
    def test_single_spec(self):
        plan = parse_fault_plan("drop:rate=0.1")
        assert len(plan.specs) == 1
        assert plan.specs[0].kind == "drop"
        assert plan.specs[0].rate == pytest.approx(0.1)

    def test_multi_spec_with_seed(self):
        plan = parse_fault_plan(
            "drop:rate=0.05,burst=3;corrupt:rate=0.02;seed:42"
        )
        assert [s.kind for s in plan.specs] == ["drop", "corrupt"]
        assert plan.specs[0].burst == 3
        assert plan.seed == 42

    def test_partition_window(self):
        plan = parse_fault_plan("partition:start=1.0,stop=2.5")
        spec = plan.specs[0]
        assert spec.active(1.5)
        assert not spec.active(0.5)
        assert not spec.active(2.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            parse_fault_plan("explode:rate=1.0")

    def test_unknown_knob_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown knob"):
            parse_fault_plan("drop:frequency=0.1")

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultPlanError, match="rate"):
            parse_fault_plan("drop:rate=1.5")

    def test_bad_window_rejected(self):
        with pytest.raises(FaultPlanError, match="stop"):
            parse_fault_plan("drop:rate=0.1,start=2.0,stop=1.0")

    def test_peer_crash_needs_trigger_time(self):
        with pytest.raises(FaultPlanError, match="trigger time"):
            parse_fault_plan("peer_crash:")
        assert parse_fault_plan("peer_crash:at=5").specs[0].crash_time() == 5.0

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="seed"):
            parse_fault_plan("seed:abc")

    def test_describe_covers_every_spec(self):
        plan = parse_fault_plan(
            "drop:rate=0.1;delay:rate=0.2,delay=0.01;partition:start=1,stop=2;"
            "peer_crash:at=3"
        )
        lines = plan.describe()
        assert len(lines) == 4
        assert any("drop" in line for line in lines)
        assert any("at 3s" in line for line in lines)


class TestEnv:
    def test_unset_means_no_plan(self):
        assert plan_from_env(environ={}) is None
        assert plan_from_env(environ={FAULTS_ENV: "  "}) is None

    def test_set_parses(self):
        plan = plan_from_env(environ={FAULTS_ENV: "drop:rate=0.2;seed:7"})
        assert plan.seed == 7
        assert plan.specs[0].rate == pytest.approx(0.2)

    def test_malformed_env_raises(self):
        # A typo'd chaos schedule must fail loudly, not silently no-op.
        with pytest.raises(FaultPlanError):
            plan_from_env(environ={FAULTS_ENV: "dorp:rate=0.2"})


class TestInjector:
    def make(self, text, t):
        return PlannedInjector(parse_fault_plan(text), clock=lambda: t[0])

    def test_drop_all(self):
        t = [0.0]
        inj = self.make("drop:rate=1.0", t)
        assert inj.decide(b"x") == []
        assert inj.dropped == 1

    def test_delay_shifts_delivery(self):
        t = [0.0]
        inj = self.make("delay:rate=1.0,delay=0.5", t)
        [(extra, data)] = inj.decide(b"payload")
        assert extra == pytest.approx(0.5)
        assert data == b"payload"

    def test_duplicate_doubles_delivery(self):
        t = [0.0]
        inj = self.make("duplicate:rate=1.0,delay=0.01", t)
        deliveries = inj.decide(b"twin")
        assert len(deliveries) == 2
        assert all(data == b"twin" for _, data in deliveries)
        assert deliveries[1][0] > deliveries[0][0]

    def test_corrupt_flips_exactly_one_bit(self):
        t = [0.0]
        inj = self.make("corrupt:rate=1.0", t)
        [(_, damaged)] = inj.decide(b"\x00" * 64)
        assert damaged != b"\x00" * 64
        diff = sum(
            bin(a ^ b).count("1") for a, b in zip(damaged, b"\x00" * 64)
        )
        assert diff == 1

    def test_partition_window_in_virtual_time(self):
        t = [0.0]
        inj = self.make("partition:start=1.0,stop=2.0", t)
        assert inj.decide(b"before") != []
        t[0] = 1.5
        assert inj.decide(b"during") == []
        t[0] = 2.5
        assert inj.decide(b"after") != []
        assert inj.partition_drops == 1

    def test_crash_fires_once_at_trigger_time(self):
        t = [0.0]
        inj = self.make("peer_crash:at=1.0", t)
        assert not inj.crash_due()
        t[0] = 1.25
        assert inj.crash_due()
        assert not inj.crash_due()  # one-shot
        assert inj.crashes == 1

    def test_burst_extends_a_trigger(self):
        spec = FaultSpec("drop", rate=1.0, burst=4)
        t = [0.0]
        inj = PlannedInjector(FaultPlan((spec,)), clock=lambda: t[0])
        for _ in range(4):
            assert inj.decide(b"x") == []
        assert inj.dropped == 4

    def test_same_seed_same_schedule(self):
        def run(seed):
            t = [0.0]
            inj = PlannedInjector(
                parse_fault_plan(f"drop:rate=0.3;seed:{seed}"),
                clock=lambda: t[0],
            )
            return [bool(inj.decide(b"f%d" % i)) for i in range(200)]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_on_fault_reports_each_injection(self):
        t = [0.0]
        events = []
        inj = PlannedInjector(
            parse_fault_plan("drop:rate=1.0"),
            clock=lambda: t[0],
            on_fault=lambda kind, **detail: events.append(kind),
        )
        inj.decide(b"x")
        inj.decide(b"y")
        assert events == ["drop", "drop"]
