"""Chaos suite: seeded fault schedules against the recovery layer.

Every test here runs a deterministic :class:`repro.faults.FaultPlan`
(or an abrupt manual severing) against live connections or the simnet
kernel and asserts the recovery invariants: no application-visible
message loss, no duplicates, and bounded recovery time.
"""
