"""Batched data path under seeded faults.

The coalesced control plane concentrates many credit grants into few
PDUs, so losing one hurts more — these tests pin that the existing
credit resynchronization still guarantees progress, and that batching
changes nothing about end-to-end reliability under loss.
"""

import pytest

from repro.core import ConnectionConfig


class TestCoalescedCreditsUnderLoss:
    def test_lossy_credit_path_never_deadlocks(self, connected_pair):
        """25% frame loss on the data path with credit FC + selective
        repeat: every send must still complete (lost coalesced grants
        are recovered by credit resync, lost SDUs by retransmission)."""
        conn, peer = connected_pair(
            ConnectionConfig(
                loss_rate=0.25,
                fault_seed=1234,
                initial_credits=2,
                max_credits=16,
                retransmit_timeout=0.1,
                max_retries=40,
            )
        )
        payload = bytes(range(256)) * 128  # 32 KB = 8 SDUs
        for index in range(6):
            conn.send(payload, wait=True, timeout=30.0)
        for _ in range(6):
            assert peer.recv(timeout=30.0) == payload
        totals = conn.metrics_totals()
        # The run must have exercised the lossy path, not gotten lucky.
        assert totals.get("if_injected_drops", 0) > 0

    def test_batch_max_one_disables_batching_but_still_works(self, connected_pair):
        conn, peer = connected_pair(
            ConnectionConfig(
                batch_max=1,
                loss_rate=0.15,
                fault_seed=77,
                retransmit_timeout=0.1,
                max_retries=40,
            )
        )
        payload = b"z" * (16 * 1024)
        conn.send(payload, wait=True, timeout=30.0)
        assert peer.recv(timeout=30.0) == payload
        assert conn.metrics_totals()["if_batched_sends"] == 0


class TestBatchingCounters:
    def test_batched_path_surfaces_in_metrics(self, connected_pair):
        """A clean 1 MB transfer must light up the new observability:
        vectored sends on the sender's interface, coalesced credits and
        deduplicated ACKs on the receiver."""
        conn, peer = connected_pair(
            ConnectionConfig(initial_credits=4, max_credits=64)
        )
        payload = bytes(1024) * 1024  # 1 MB = 256 SDUs
        for _ in range(3):
            conn.send(payload, wait=True, timeout=30.0)
            assert peer.recv(timeout=30.0) == payload
        sender = conn.metrics_totals()
        receiver = peer.metrics_totals()
        assert sender["if_batched_sends"] > 0
        assert sender["if_batched_frames"] > sender["if_batched_sends"]
        assert receiver["fc_rx_coalesced_credits"] > 0
        # Coalescing must actually shrink the control plane: far fewer
        # credit PDUs than packets seen.
        assert (
            receiver["fc_rx_credit_pdus_sent"]
            < receiver["fc_rx_packets_seen"] / 2
        )
