"""Shared machinery for the chaos suite: supervised echo workloads."""

from __future__ import annotations

import threading
import time

from repro.core import ConnectionConfig
from repro.core.errors import NcsError
from repro.recovery import RecoveryPolicy, Responder, Supervisor

#: Aggressive reconnect settings so chaos tests converge in seconds.
FAST_POLICY = RecoveryPolicy(
    backoff_base=0.02,
    backoff_max=0.25,
    jitter=0.1,
    max_attempts=12,
    connect_timeout=2.0,
)


class EchoServer:
    """A Responder that echoes every received message back."""

    def __init__(self, node, session: str = "chaos"):
        self.responder = Responder(node, session=session)
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="chaos-echo", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while self._running:
            try:
                payload = self.responder.recv(timeout=0.1)
            except NcsError:
                # UNAVAILABLE or closed; poll until the test tears down.
                time.sleep(0.05)
                continue
            if payload is not None:
                try:
                    self.responder.send(payload)
                except NcsError:
                    pass

    def close(self) -> None:
        self._running = False
        self.responder.close()
        self._thread.join(timeout=2.0)


def supervised_echo_pair(node_factory, config=None, policy=None,
                         session: str = "chaos", **node_kwargs):
    """(supervisor, echo_server) over two fresh nodes.

    Extra keyword arguments (e.g. ``pressure=``) flow into both nodes'
    :class:`NodeConfig`."""
    server_node = node_factory(f"{session}-server", **node_kwargs)
    client_node = node_factory(f"{session}-client", **node_kwargs)
    echo = EchoServer(server_node, session=session)
    sup = Supervisor(
        client_node,
        server_node.address,
        config=config or ConnectionConfig(),
        session=session,
        policy=policy or FAST_POLICY,
    )
    return sup, echo


def sever_transport(supervisor) -> None:
    """Abruptly kill the supervisor's current transport (no handshake),
    as a crashed peer or yanked cable would."""
    conn = supervisor.connection
    if conn is None:
        return
    interface = conn.interface
    inner = getattr(interface, "_inner", interface)
    inner.close()


def collect_echoes(supervisor, count: int, deadline: float = 30.0) -> list:
    """Drain up to ``count`` echoed messages within ``deadline``."""
    received = []
    end = time.monotonic() + deadline
    while len(received) < count and time.monotonic() < end:
        try:
            got = supervisor.recv(timeout=0.2)
        except NcsError:
            time.sleep(0.05)
            continue
        if got is not None:
            received.append(got)
    return received


def assert_exactly_once(supervisor, expected: list, received: list) -> None:
    """No loss, no duplicates, and nothing extra trailing in the pipe."""
    assert sorted(received) == sorted(expected), (
        f"lost={set(expected) - set(received)} "
        f"extra={set(received) - set(expected)}"
    )
    leftover = supervisor.recv(timeout=0.3)
    assert leftover is None, f"duplicate delivery after the fact: {leftover!r}"
