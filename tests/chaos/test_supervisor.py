"""Recovery layer units: dedup, envelope, policy, budget exhaustion."""

import time

import pytest

from repro.core import ConnectionConfig
from repro.core.errors import NCSUnavailable
from repro.errorcontrol.go_back_n import GoBackNSender
from repro.errorcontrol.selective_repeat import SelectiveRepeatSender
from repro.recovery import (
    CONNECTED,
    UNAVAILABLE,
    DedupFilter,
    RecoveryPolicy,
    Supervisor,
    decode_envelope,
    encode_envelope,
)

from tests.chaos.harness import FAST_POLICY, supervised_echo_pair


class TestDedupFilter:
    def test_accepts_fresh_ids(self):
        dedup = DedupFilter()
        assert all(dedup.accept(i) for i in (1, 2, 3))
        assert dedup.accepted == 3

    def test_rejects_replayed_ids(self):
        dedup = DedupFilter()
        dedup.accept(1)
        dedup.accept(2)
        assert not dedup.accept(1)
        assert not dedup.accept(2)
        assert dedup.rejected == 2

    def test_out_of_order_then_backfill(self):
        dedup = DedupFilter()
        assert dedup.accept(3)  # reordered ahead
        assert dedup.accept(1)
        assert dedup.accept(2)
        assert not dedup.accept(3)  # replay of the straggler
        assert dedup.accept(4)

    def test_watermark_bounds_memory(self):
        dedup = DedupFilter()
        for i in range(1, 1000):
            dedup.accept(i)
        assert len(dedup._seen) == 0  # all contiguous, all compacted


class TestEnvelope:
    def test_roundtrip(self):
        msg_id, flags, payload = decode_envelope(
            encode_envelope(42, b"hello", flags=1)
        )
        assert (msg_id, flags, payload) == (42, 1, b"hello")

    def test_plain_payload_passes_through(self):
        assert decode_envelope(b"just bytes") is None
        assert decode_envelope(b"") is None


class TestRecoveryPolicy:
    def test_native_sci_has_no_fallback(self):
        assert RecoveryPolicy().ladder_for("sci") == ("sci",)

    def test_unreliable_interfaces_fail_over_to_sci(self):
        assert RecoveryPolicy().ladder_for("aci") == ("aci", "sci")

    def test_explicit_ladder_wins(self):
        policy = RecoveryPolicy(ladder=("hpi", "aci", "sci"))
        assert policy.ladder_for("aci") == ("hpi", "aci", "sci")


class TestECPendingView:
    """The engines' pending() view is the recovery replay buffer."""

    @pytest.mark.parametrize("engine_cls", [SelectiveRepeatSender, GoBackNSender])
    def test_unacked_sends_are_pending(self, engine_cls):
        sender = engine_cls(connection_id=1, sdu_size=4096)
        sender.send(1, b"alpha", now=0.0)
        sender.send(2, b"beta", now=0.0)
        assert sender.pending() == [(1, b"alpha"), (2, b"beta")]

    @pytest.mark.parametrize("engine_cls", [SelectiveRepeatSender, GoBackNSender])
    def test_completed_sends_leave_the_window(self, engine_cls):
        sender = engine_cls(connection_id=1, sdu_size=4096)
        effects = sender.send(1, b"alpha", now=0.0)
        for control in self._acks_for(sender, effects):
            sender.on_control(control, now=0.0)
        assert sender.pending() == []

    @staticmethod
    def _acks_for(sender, effects):
        """Feed every transmitted SDU into a paired receiver; return the
        resulting ACK controls."""
        from repro.errorcontrol.go_back_n import GoBackNReceiver, GoBackNSender
        from repro.errorcontrol.selective_repeat import SelectiveRepeatReceiver

        receiver = (
            GoBackNReceiver(connection_id=1)
            if isinstance(sender, GoBackNSender)
            else SelectiveRepeatReceiver(connection_id=1)
        )
        controls = []
        for sdu in effects.transmits:
            result = receiver.on_sdu(sdu, now=0.0)
            controls.extend(result.controls)
        return controls


class TestSupervisorLifecycle:
    def test_unreachable_peer_exhausts_budget(self, node_factory):
        node = node_factory("budget")
        policy = RecoveryPolicy(
            backoff_base=0.01, backoff_max=0.02, max_attempts=2,
            connect_timeout=0.2,
        )
        with pytest.raises(NCSUnavailable) as info:
            Supervisor(
                node, ("127.0.0.1", 1), config=ConnectionConfig(),
                session="doomed", policy=policy,
            )
        assert info.value.attempts == 2
        assert "127.0.0.1:1" in str(info.value)

    def test_clean_exchange_exactly_once(self, node_factory):
        sup, echo = supervised_echo_pair(node_factory, session="clean")
        try:
            expected = [b"clean-%d" % i for i in range(5)]
            for payload in expected:
                sup.send(payload)
            received = [sup.recv(timeout=5.0) for _ in expected]
            assert received == expected
            assert sup.state == CONNECTED
            sup.flush(timeout=5.0)
            assert sup.status()["outstanding"] == 0
        finally:
            sup.close()
            echo.close()

    def test_dead_server_degrades_to_unavailable(self, node_factory):
        policy = RecoveryPolicy(
            backoff_base=0.01, backoff_max=0.05, jitter=0.0,
            max_attempts=3, connect_timeout=0.3,
        )
        sup, echo = supervised_echo_pair(
            node_factory, policy=policy, session="degrade"
        )
        try:
            sup.send(b"probe")
            assert sup.recv(timeout=5.0) == b"probe"
            # Kill the whole server node: nothing left to re-dial.
            echo.close()
            echo.responder.node.close()
            deadline = time.monotonic() + 15.0
            while sup.state != UNAVAILABLE and time.monotonic() < deadline:
                time.sleep(0.05)
            assert sup.state == UNAVAILABLE
            with pytest.raises(NCSUnavailable):
                sup.send(b"after the end")
            status = sup.status()
            assert status["outages"] >= 1
            assert status["unavailable_reason"]
        finally:
            sup.close()

    def test_status_shape(self, node_factory):
        sup, echo = supervised_echo_pair(node_factory, session="shape")
        try:
            status = sup.status()
            assert status["state"] == CONNECTED
            assert status["session"] == "shape"
            assert status["incarnations"] == 1
            assert status["interface"] == "sci"
        finally:
            sup.close()
            echo.close()
