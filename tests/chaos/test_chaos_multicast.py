"""Multicast graceful degradation: a crashed tree child must not cost
its whole subtree the message, and the coordinator must repair the
membership so later multicasts run clean.
"""

import time

import pytest

from repro.multicast import GroupManager
from repro.multicast.tree import spanning_tree_children


@pytest.fixture
def team(node_factory):
    """Five nodes with managers; node 0 coordinates group 'team'."""
    nodes = [node_factory(f"c{i}") for i in range(5)]
    managers = [GroupManager(node) for node in nodes]
    managers[0].create("team")
    for manager in managers[1:]:
        manager.join("team", nodes[0].address, timeout=5.0)
    return nodes, managers


def first_tree_child_index(managers) -> int:
    """Index of the coordinator's first spanning-tree child — the member
    whose death orphans the largest subtree."""
    coordinator = managers[0]
    view = coordinator.view("team")
    children = spanning_tree_children(
        view.members, origin=coordinator.me, me=coordinator.me,
        fanout=coordinator.fanout,
    )
    victim = children[0]
    return next(i for i, m in enumerate(managers) if m.me == victim)


def drain_all(managers, skip, payload, timeout=10.0):
    for index, manager in enumerate(managers):
        if index in skip:
            continue
        assert manager.recv("team", timeout=timeout) == payload, (
            f"member {index} missed {payload!r}"
        )


def test_route_around_a_crashed_child(team):
    nodes, managers = team
    managers[0].multicast("team", b"baseline", wait=True)
    drain_all(managers, {0}, b"baseline")

    victim = first_tree_child_index(managers)
    nodes[victim].close()  # crash: no leave handshake

    managers[0].multicast("team", b"after the crash", wait=True, timeout=20.0)
    drain_all(managers, {0, victim}, b"after the crash", timeout=20.0)

    metrics = managers[0].metrics()
    assert metrics["members_marked_dead"] >= 1
    assert metrics["route_arounds"] >= 1, (
        "the dead child's subtree must be re-covered by direct sends"
    )


def test_coordinator_repairs_membership_after_crash(team):
    nodes, managers = team
    victim = first_tree_child_index(managers)
    nodes[victim].close()

    managers[0].multicast("team", b"discovery", wait=True, timeout=20.0)
    drain_all(managers, {0, victim}, b"discovery", timeout=20.0)

    # The coordinator evicts the dead member and pushes the new view.
    survivors = [m for i, m in enumerate(managers) if i != victim]
    for _ in range(200):
        if all(len(m.view("team").members) == 4 for m in survivors):
            break
        time.sleep(0.02)
    for manager in survivors:
        assert len(manager.view("team").members) == 4, (
            "membership repair never propagated"
        )

    # Post-repair the tree no longer contains the dead node: multicasts
    # run clean, with no further route-arounds.
    before = managers[0].metrics()["route_arounds"]
    managers[0].multicast("team", b"steady state", wait=True, timeout=20.0)
    drain_all(managers, {0, victim}, b"steady state", timeout=20.0)
    assert managers[0].metrics()["route_arounds"] == before


def test_forwarder_detects_death_of_its_own_child(team):
    """A crash deeper in the tree is discovered by the forwarding member,
    not the origin; the subtree is still covered."""
    nodes, managers = team
    view = managers[0].view("team")
    # The origin's first child forwards to its own children; kill one of
    # those grandchildren.
    children = spanning_tree_children(
        view.members, origin=managers[0].me, me=managers[0].me,
        fanout=managers[0].fanout,
    )
    grandchildren = spanning_tree_children(
        view.members, origin=managers[0].me, me=children[0],
        fanout=managers[0].fanout,
    )
    if not grandchildren:
        pytest.skip("tree too shallow for a grandchild at this fanout")
    victim = next(
        i for i, m in enumerate(managers) if m.me == grandchildren[0]
    )
    nodes[victim].close()

    managers[0].multicast("team", b"deep crash", wait=True, timeout=20.0)
    drain_all(managers, {0, victim}, b"deep crash", timeout=20.0)
    forwarder = next(i for i, m in enumerate(managers) if m.me == children[0])
    assert managers[forwarder].metrics()["members_marked_dead"] >= 1
