"""Fault schedules in virtual time: the simnet links run the same
PlannedInjector as live interfaces, clocked by the simulator.

Two layers are exercised: raw links (deterministic drop/delay/duplicate/
crash semantics at frame granularity) and full EC engines over faulty
links (selective repeat turns scheduled faults into mere latency).
"""

from repro.faults import parse_fault_plan
from repro.simnet.kernel import Simulator
from repro.simnet.link import AtmLinkModel, Link
from repro.simnet.ncs_sim import connect_pair

MESSAGE = bytes(range(256)) * 64  # 16 KB


def faulty_link(sim, spec: str, **kw) -> Link:
    return Link(sim, fault_plan=parse_fault_plan(spec), **kw)


def run_frames(sim, link, count: int, spacing: float = 0.01):
    """Offer ``count`` distinct frames at ``spacing`` intervals; return
    the (time, payload) deliveries observed at the far end."""
    arrivals = []

    def deliver(data: bytes) -> None:
        arrivals.append((sim.now, data))

    for i in range(count):
        frame = b"frame-%03d" % i
        sim.schedule(i * spacing, link.transfer, frame, deliver)
    sim.run()
    return arrivals


class TestRawLinkFaults:
    def test_seeded_drops_are_deterministic(self):
        outcomes = []
        for _run in range(2):
            sim = Simulator()
            link = faulty_link(sim, "drop:rate=0.3;seed:7")
            arrivals = run_frames(sim, link, 40)
            outcomes.append([data for _t, data in arrivals])
            assert link.frames_dropped > 0, "rate=0.3 over 40 frames"
        assert outcomes[0] == outcomes[1], "same seed, same schedule"

    def test_different_seeds_differ(self):
        outcomes = []
        for seed in (1, 2):
            sim = Simulator()
            link = faulty_link(sim, f"drop:rate=0.3;seed:{seed}")
            outcomes.append([d for _t, d in run_frames(sim, link, 40)])
        assert outcomes[0] != outcomes[1]

    def test_delay_shifts_arrival_without_loss(self):
        sim = Simulator()
        link = faulty_link(sim, "delay:rate=1,delay=0.05")
        baseline_sim = Simulator()
        baseline = Link(baseline_sim)
        delayed = run_frames(sim, link, 5)
        clean = run_frames(baseline_sim, baseline, 5)
        assert [d for _t, d in delayed] == [d for _t, d in clean]
        for (t_delayed, _), (t_clean, _) in zip(delayed, clean):
            assert abs((t_delayed - t_clean) - 0.05) < 1e-9

    def test_duplicate_doubles_frame_deliveries(self):
        sim = Simulator()
        link = faulty_link(sim, "duplicate:rate=1")
        arrivals = run_frames(sim, link, 6)
        assert len(arrivals) == 12
        payloads = sorted(d for _t, d in arrivals)
        assert payloads == sorted([b"frame-%03d" % i for i in range(6)] * 2)

    def test_partition_window_in_virtual_time(self):
        sim = Simulator()
        link = faulty_link(sim, "partition:start=0.05,stop=0.15")
        arrivals = run_frames(sim, link, 20, spacing=0.01)
        delivered = {d for _t, d in arrivals}
        for i in range(20):
            inside = 0.05 <= i * 0.01 < 0.15
            frame = b"frame-%03d" % i
            if inside:
                assert frame not in delivered, f"{frame} sent mid-partition"
            else:
                assert frame in delivered, f"{frame} sent outside the window"

    def test_peer_crash_severs_the_link_for_good(self):
        sim = Simulator()
        link = faulty_link(sim, "peer_crash:at=0.05")
        arrivals = run_frames(sim, link, 20, spacing=0.01)
        delivered = {d for _t, d in arrivals}
        assert link.severed
        assert b"frame-000" in delivered
        for i in range(6, 20):  # everything offered after the crash
            assert b"frame-%03d" % i not in delivered


class TestEngineOverFaultyLinks:
    """Selective repeat over scheduled faults: loss becomes latency."""

    def _pair(self, sim, spec: str, **options):
        return connect_pair(
            sim,
            AtmLinkModel(sim, fault_plan=parse_fault_plan(spec)),
            AtmLinkModel(sim),
            **options,
        )

    def test_recovers_from_seeded_drops(self):
        sim = Simulator()
        a, b = self._pair(sim, "drop:rate=0.25;seed:3")
        payloads = [bytes([i]) * 16000 for i in range(4)]
        events = [a.send(p) for p in payloads]
        sim.run()
        assert all(e.triggered and e.value is not None for e in events)
        assert b.delivered == payloads
        assert a.ec_sender.retransmitted_sdus > 0

    def test_partition_delays_delivery_past_the_window(self):
        sim = Simulator()
        a, b = self._pair(sim, "partition:start=0.0,stop=0.4")
        done = a.send(MESSAGE)
        sim.run()
        assert done.value is not None, "retry budget must outlive the window"
        assert b.delivered == [MESSAGE]
        assert b.last_delivery_at >= 0.4, "nothing crosses a partition"

    def test_duplicated_frames_deliver_exactly_once(self):
        sim = Simulator()
        a, b = self._pair(sim, "duplicate:rate=1,delay=0.001")
        payloads = [bytes([i]) * 5000 for i in range(4)]
        for p in payloads:
            a.send(p)
        sim.run()
        assert b.delivered == payloads, "reassembler must absorb duplicates"

    def test_crash_fails_the_send_cleanly(self):
        sim = Simulator()
        a, b = self._pair(sim, "peer_crash:at=0.0005")
        a.send(bytes(40000))  # ten SDUs; serialization straddles the crash
        sim.run()
        # The sender burns its retry budget into a dead link and reports
        # failure (no hang, no partial delivery surfacing as success).
        assert a.failed_msgs == [1]
        assert b.delivered == []
