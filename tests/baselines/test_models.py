"""Baseline system models: structural properties."""

import pytest

from repro.baselines import MpiModel, NcsModel, P4Model, PvmModel, SYSTEMS
from repro.simnet.platforms import RS6000_AIX41, SUN4_SUNOS55


class TestCostStructure:
    def test_all_systems_registered(self):
        assert set(SYSTEMS) == {"NCS", "p4", "MPI", "PVM"}

    def test_costs_scale_with_size(self):
        for model_cls in SYSTEMS.values():
            model = model_cls()
            small = model.send_cpu(64, SUN4_SUNOS55, SUN4_SUNOS55)
            large = model.send_cpu(65536, SUN4_SUNOS55, SUN4_SUNOS55)
            assert large > small

    def test_ncs_single_copy_beats_p4_on_sun(self):
        ncs, p4 = NcsModel(), P4Model()
        size = 65536
        ncs_total = ncs.send_cpu(size, SUN4_SUNOS55, SUN4_SUNOS55) + ncs.recv_cpu(
            size, SUN4_SUNOS55, SUN4_SUNOS55
        )
        p4_total = p4.send_cpu(size, SUN4_SUNOS55, SUN4_SUNOS55) + p4.recv_cpu(
            size, SUN4_SUNOS55, SUN4_SUNOS55
        )
        assert ncs_total < p4_total

    def test_mpi_rendezvous_above_eager_threshold(self):
        mpi = MpiModel()
        assert mpi.handshake_rtts(1024) == 0
        assert mpi.handshake_rtts(32768) == 1

    def test_pvm_daemon_routing_only_on_rs6000(self):
        pvm = PvmModel()
        assert pvm._daemon_routed(RS6000_AIX41)
        assert not pvm._daemon_routed(SUN4_SUNOS55)

    def test_wire_overhead_present(self):
        for model_cls in SYSTEMS.values():
            model = model_cls()
            assert model.wire_size(1000) > 1000


class TestConversion:
    def test_homogeneous_pairs_never_convert(self):
        for model_cls in SYSTEMS.values():
            model = model_cls()
            send, recv = model.conversion_cpu(65536, SUN4_SUNOS55, SUN4_SUNOS55)
            assert send == 0.0 and recv == 0.0

    def test_ncs_never_converts(self):
        send, recv = NcsModel().conversion_cpu(
            65536, SUN4_SUNOS55, RS6000_AIX41
        )
        assert send == 0.0 and recv == 0.0

    def test_mpi_converts_both_directions(self):
        send, recv = MpiModel().conversion_cpu(
            65536, SUN4_SUNOS55, RS6000_AIX41
        )
        assert send > 0 and recv > 0

    def test_p4_converts_at_sender_only(self):
        send, recv = P4Model().conversion_cpu(
            65536, SUN4_SUNOS55, RS6000_AIX41
        )
        assert send > 0 and recv == 0.0

    def test_pvm_conversion_cheaper_than_mpi(self):
        size = 65536
        pvm = sum(PvmModel().conversion_cpu(size, SUN4_SUNOS55, RS6000_AIX41))
        mpi = sum(MpiModel().conversion_cpu(size, SUN4_SUNOS55, RS6000_AIX41))
        assert pvm < mpi


class TestNcsVariants:
    def test_bypass_cheaper_than_threaded(self):
        threaded = NcsModel(threaded=True)
        bypass = NcsModel(threaded=False)
        assert bypass.send_cpu(1, SUN4_SUNOS55, SUN4_SUNOS55) < threaded.send_cpu(
            1, SUN4_SUNOS55, SUN4_SUNOS55
        )

    def test_sdu_size_changes_per_message_overheads(self):
        small_sdu = NcsModel(sdu_size=4096)
        large_sdu = NcsModel(sdu_size=32768)
        size = 65536
        assert large_sdu.send_cpu(size, SUN4_SUNOS55, SUN4_SUNOS55) < (
            small_sdu.send_cpu(size, SUN4_SUNOS55, SUN4_SUNOS55)
        )
