"""Echo driver over the simulated testbed."""

import pytest

from repro.baselines import SYSTEMS, echo_roundtrip, one_way_process
from repro.simnet.host import SimHost
from repro.simnet.kernel import Simulator
from repro.simnet.link import AtmLinkModel
from repro.simnet.platforms import RS6000_AIX41, SUN4_SUNOS55


def rig(platform_a=SUN4_SUNOS55, platform_b=SUN4_SUNOS55):
    sim = Simulator()
    return (
        sim,
        SimHost(sim, "a", platform_a),
        SimHost(sim, "b", platform_b),
        AtmLinkModel(sim),
        AtmLinkModel(sim),
    )


class TestEchoDriver:
    def test_roundtrip_positive_and_finite(self):
        for system, model_cls in SYSTEMS.items():
            sim, a, b, ab, ba = rig()
            rt = echo_roundtrip(sim, model_cls(), a, b, ab, ba, 1024)
            assert 0 < rt < 10.0, system

    def test_roundtrip_monotonic_in_size(self):
        for system, model_cls in SYSTEMS.items():
            times = []
            for size in (1, 4096, 65536):
                sim, a, b, ab, ba = rig()
                times.append(
                    echo_roundtrip(sim, model_cls(), a, b, ab, ba, size)
                )
            assert times == sorted(times), system

    def test_one_way_uses_both_cpus(self):
        sim, a, b, ab, ba = rig()
        sim.run_process(
            one_way_process(sim, SYSTEMS["NCS"](), a, b, ab, ba, 65536)
        )
        assert a.cpu_busy_total > 0
        assert b.cpu_busy_total > 0

    def test_mpi_handshake_crosses_wire(self):
        sim, a, b, ab, ba = rig()
        sim.run_process(
            one_way_process(sim, SYSTEMS["MPI"](), a, b, ab, ba, 65536)
        )
        # Rendezvous: control frame went forward AND backward.
        assert ba.frames_sent >= 1

    def test_deterministic(self):
        def run():
            sim, a, b, ab, ba = rig()
            return echo_roundtrip(sim, SYSTEMS["PVM"](), a, b, ab, ba, 8192)

        assert run() == run()
