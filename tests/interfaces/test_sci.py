"""SCI: framed TCP interface."""

import threading

import pytest

from repro.interfaces.base import InterfaceClosed
from repro.interfaces.sci import SciListener, sci_connect, sci_pair


@pytest.fixture
def pair():
    a, b = sci_pair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        a.send(b"framed message")
        assert b.recv(1.0) == b"framed message"

    def test_boundaries_preserved_across_stream(self, pair):
        a, b = pair
        frames = [bytes([i]) * (i * 100 + 1) for i in range(10)]
        for frame in frames:
            a.send(frame)
        for frame in frames:
            assert b.recv(1.0) == frame

    def test_large_frame(self, pair):
        a, b = pair
        big = bytes(range(256)) * 1024  # 256 KB
        a.send(big)
        assert b.recv(5.0) == big

    def test_empty_frame(self, pair):
        a, b = pair
        a.send(b"")
        assert b.recv(1.0) == b""

    def test_timeout_preserves_stream_sync(self, pair):
        a, b = pair
        assert b.recv(0.02) is None  # timeout mid-wait
        a.send(b"after the timeout")
        assert b.recv(1.0) == b"after the timeout"

    def test_try_recv(self, pair):
        a, b = pair
        assert b.try_recv() is None
        a.send(b"polled")
        # Poll until the kernel delivers (loopback: quick).
        for _ in range(1000):
            frame = b.try_recv()
            if frame is not None:
                break
        assert frame == b"polled"


class TestLifecycle:
    def test_peer_address(self, pair):
        a, b = pair
        host, port = a.peer_address()
        assert host == "127.0.0.1"
        assert port > 0

    def test_send_after_close(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")

    def test_recv_detects_peer_close(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            # May take one timeout cycle for the FIN to arrive.
            for _ in range(50):
                b.recv(0.1)

    def test_oversized_frame_rejected(self, pair):
        a, _ = pair
        a.max_frame = 10
        with pytest.raises(ValueError, match="exceeds"):
            a.send(b"x" * 11)


class TestListener:
    def test_accept_timeout(self):
        listener = SciListener()
        assert listener.accept(timeout=0.05) is None
        listener.close()

    def test_nonblocking_accept(self):
        listener = SciListener()
        assert listener.accept(timeout=0.0) is None
        listener.close()

    def test_accept_connect(self):
        listener = SciListener()
        result = {}

        def dial():
            result["iface"] = sci_connect(listener.host, listener.port)

        thread = threading.Thread(target=dial)
        thread.start()
        accepted = listener.accept(timeout=2.0)
        thread.join(2.0)
        assert accepted is not None
        result["iface"].send(b"hi")
        assert accepted.recv(1.0) == b"hi"
        accepted.close()
        result["iface"].close()
        listener.close()


class TestMidFrameStall:
    def test_half_a_frame_fails_cleanly(self, pair):
        """A peer that sends a length header and then goes quiet must
        produce a transport error within the mid-frame deadline — not
        hang the receiver forever."""
        import struct
        import time

        from repro.interfaces.sci import _LEN_FMT

        a, b = pair
        b.mid_frame_timeout = 0.3
        a._sock.sendall(struct.pack(_LEN_FMT, 100) + b"only-a-prefix")
        started = time.monotonic()
        with pytest.raises(InterfaceClosed, match="stalled mid-frame"):
            b.recv(timeout=5.0)
        assert time.monotonic() - started < 2.0, "deadline was not bounded"
        assert b.mid_frame_stalls == 1
        # The interface is dead, not wedged: later calls fail fast too.
        with pytest.raises(InterfaceClosed):
            b.recv(timeout=0.1)

    def test_slow_but_progressing_frame_survives(self, pair):
        """The deadline punishes stalls, not slowness: a frame trickling
        in chunks inside the window is still delivered."""
        a, b = pair
        b.mid_frame_timeout = 2.0
        payload = bytes(range(200)) * 10

        def trickle():
            import struct

            from repro.interfaces.sci import _LEN_FMT

            a._sock.sendall(struct.pack(_LEN_FMT, len(payload)))
            for i in range(0, len(payload), 500):
                a._sock.sendall(payload[i:i + 500])
                threading.Event().wait(0.05)

        thread = threading.Thread(target=trickle)
        thread.start()
        assert b.recv(timeout=10.0) == payload
        thread.join(5.0)
        assert b.mid_frame_stalls == 0
