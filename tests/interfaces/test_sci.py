"""SCI: framed TCP interface."""

import select
import socket
import struct
import threading
import time

import pytest

from repro.interfaces.base import InterfaceClosed
from repro.interfaces.sci import (
    _LEN_FMT,
    _LEN_SIZE,
    SciInterface,
    SciListener,
    sci_connect,
    sci_pair,
)


def throttled_sci_pair(snd=8192, rcv=8192):
    """A loopback TCP pair with tiny kernel buffers, so a large frame
    cannot be absorbed in one write and the sender must track partial
    progress."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcv)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, snd)
    client.connect(listener.getsockname())
    server, _ = listener.accept()
    listener.close()
    return SciInterface(client), SciInterface(server)


@pytest.fixture
def pair():
    a, b = sci_pair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        a.send(b"framed message")
        assert b.recv(1.0) == b"framed message"

    def test_boundaries_preserved_across_stream(self, pair):
        a, b = pair
        frames = [bytes([i]) * (i * 100 + 1) for i in range(10)]
        for frame in frames:
            a.send(frame)
        for frame in frames:
            assert b.recv(1.0) == frame

    def test_large_frame(self, pair):
        a, b = pair
        big = bytes(range(256)) * 1024  # 256 KB
        a.send(big)
        assert b.recv(5.0) == big

    def test_empty_frame(self, pair):
        a, b = pair
        a.send(b"")
        assert b.recv(1.0) == b""

    def test_timeout_preserves_stream_sync(self, pair):
        a, b = pair
        assert b.recv(0.02) is None  # timeout mid-wait
        a.send(b"after the timeout")
        assert b.recv(1.0) == b"after the timeout"

    def test_try_recv(self, pair):
        a, b = pair
        assert b.try_recv() is None
        a.send(b"polled")
        # Poll until the kernel delivers (loopback: quick).
        for _ in range(1000):
            frame = b.try_recv()
            if frame is not None:
                break
        assert frame == b"polled"


class TestLifecycle:
    def test_peer_address(self, pair):
        a, b = pair
        host, port = a.peer_address()
        assert host == "127.0.0.1"
        assert port > 0

    def test_send_after_close(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")

    def test_recv_detects_peer_close(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            # May take one timeout cycle for the FIN to arrive.
            for _ in range(50):
                b.recv(0.1)

    def test_oversized_frame_rejected(self, pair):
        a, _ = pair
        a.max_frame = 10
        with pytest.raises(ValueError, match="exceeds"):
            a.send(b"x" * 11)


class TestListener:
    def test_accept_timeout(self):
        listener = SciListener()
        assert listener.accept(timeout=0.05) is None
        listener.close()

    def test_nonblocking_accept(self):
        listener = SciListener()
        assert listener.accept(timeout=0.0) is None
        listener.close()

    def test_accept_connect(self):
        listener = SciListener()
        result = {}

        def dial():
            result["iface"] = sci_connect(listener.host, listener.port)

        thread = threading.Thread(target=dial)
        thread.start()
        accepted = listener.accept(timeout=2.0)
        thread.join(2.0)
        assert accepted is not None
        result["iface"].send(b"hi")
        assert accepted.recv(1.0) == b"hi"
        accepted.close()
        result["iface"].close()
        listener.close()


class TestPartialWrite:
    """Regression tests for the partial-``send`` desync bug: a transmit
    that cannot finish must tear the interface down with a typed error —
    a later send resuming mid-frame would shift every subsequent length
    prefix and desynchronize the peer's parser."""

    def test_stalled_transmit_tears_down_typed(self):
        a, b = throttled_sci_pair()
        a.send_stall_timeout = 0.3
        started = time.monotonic()
        with pytest.raises(InterfaceClosed, match="stalled mid-frame"):
            a.send(b"\xab" * (4 << 20))  # 4 MB into unread tiny buffers
        assert time.monotonic() - started < 3.0, "teardown was not bounded"
        assert a.partial_write_teardowns == 1
        assert a.closed
        # Dead, not wedged: the next send fails fast and can never
        # resume the torn frame.
        with pytest.raises(InterfaceClosed):
            a.send(b"again")
        b.close()

    def test_peer_parser_never_sees_torn_frame(self):
        a, b = throttled_sci_pair()
        a.send_stall_timeout = 0.3
        with pytest.raises(InterfaceClosed):
            a.send(b"\xab" * (4 << 20))
        # The peer holds a committed length prefix and a partial body
        # followed by EOF: it must raise, never deliver a torn frame.
        with pytest.raises(InterfaceClosed):
            for _ in range(100):
                b.recv(0.1)
        assert b.received_frames == 0
        b.close()

    def test_slow_reader_inside_window_completes(self):
        """The stall deadline punishes zero progress, not slowness: a
        reader draining in throttled chunks resets the clock every time
        bytes move, and the frame lands intact even though the whole
        transfer takes far longer than ``send_stall_timeout``."""
        a, b = throttled_sci_pair()
        a.send_stall_timeout = 0.4
        payload = b"\xcd" * (1 << 20)
        total = _LEN_SIZE + len(payload)
        received = bytearray()

        def trickle_read():
            while len(received) < total:
                select.select([b._sock], [], [], 1.0)
                try:
                    chunk = b._sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    continue
                if not chunk:
                    break
                received.extend(chunk)
                time.sleep(0.05)

        thread = threading.Thread(target=trickle_read, daemon=True)
        thread.start()
        started = time.monotonic()
        a.send(payload)
        thread.join(30.0)
        assert len(received) == total
        assert time.monotonic() - started > a.send_stall_timeout
        assert a.partial_write_teardowns == 0
        (length,) = struct.unpack(_LEN_FMT, received[:_LEN_SIZE])
        assert length == len(payload)
        assert bytes(received[_LEN_SIZE:]) == payload
        a.close()
        b.close()

    def test_queue_frames_backlog_then_flush(self):
        """The event-plane surface: ``queue_frames`` never blocks — it
        reports an unflushed backlog, and ``flush_backlog`` completes
        the same bytes later without tearing or reordering frames."""
        a, b = throttled_sci_pair()
        frames = [bytes([i % 256]) * 60000 for i in range(40)]  # ~2.3 MB
        drained = a.queue_frames(frames)
        assert not drained
        assert a.backlog_bytes > 0
        result = {}

        def drain():
            got = []
            while len(got) < len(frames):
                frame = b.recv(5.0)
                if frame is None:
                    break
                got.append(frame)
            result["frames"] = got

        thread = threading.Thread(target=drain, daemon=True)
        thread.start()
        deadline = time.monotonic() + 20.0
        while not a.flush_backlog() and time.monotonic() < deadline:
            select.select([], [a._sock], [], 0.25)
        assert a.backlog_bytes == 0
        thread.join(20.0)
        assert result["frames"] == frames
        a.close()
        b.close()


class TestMidFrameStall:
    def test_half_a_frame_fails_cleanly(self, pair):
        """A peer that sends a length header and then goes quiet must
        produce a transport error within the mid-frame deadline — not
        hang the receiver forever."""
        import struct
        import time

        from repro.interfaces.sci import _LEN_FMT

        a, b = pair
        b.mid_frame_timeout = 0.3
        a._sock.sendall(struct.pack(_LEN_FMT, 100) + b"only-a-prefix")
        started = time.monotonic()
        with pytest.raises(InterfaceClosed, match="stalled mid-frame"):
            b.recv(timeout=5.0)
        assert time.monotonic() - started < 2.0, "deadline was not bounded"
        assert b.mid_frame_stalls == 1
        # The interface is dead, not wedged: later calls fail fast too.
        with pytest.raises(InterfaceClosed):
            b.recv(timeout=0.1)

    def test_slow_but_progressing_frame_survives(self, pair):
        """The deadline punishes stalls, not slowness: a frame trickling
        in chunks inside the window is still delivered."""
        a, b = pair
        b.mid_frame_timeout = 2.0
        payload = bytes(range(200)) * 10

        def trickle():
            import struct

            from repro.interfaces.sci import _LEN_FMT

            a._sock.sendall(struct.pack(_LEN_FMT, len(payload)))
            for i in range(0, len(payload), 500):
                a._sock.sendall(payload[i:i + 500])
                threading.Event().wait(0.05)

        thread = threading.Thread(target=trickle)
        thread.start()
        assert b.recv(timeout=10.0) == payload
        thread.join(5.0)
        assert b.mid_frame_stalls == 0


class TestNonBlockingPartialFrame:
    """Regression tests for the zero-timeout receive path.

    The event data plane reads with ``timeout=0`` from its loop thread,
    so a frame that is split across kernel writes (its tail parked in
    the sender's tx backlog behind a busy loop) must stay buffered and
    return None — the old path blocked in bounded selects and then
    declared a merely *slow* peer dead, tearing down healthy
    connections under a connection storm.
    """

    def test_partial_frame_stays_buffered_and_completes(self, pair):
        a, b = pair
        payload = bytes(range(256)) * 4
        a._sock.sendall(struct.pack(_LEN_FMT, len(payload)) + payload[:100])
        deadline = time.monotonic() + 2.0
        while len(b._recv_buffer) < _LEN_SIZE + 100:
            assert b.try_recv() is None
            assert time.monotonic() < deadline, "prefix never buffered"
        # Stable: repeated polls neither consume, block, nor kill.
        for _ in range(10):
            assert b.try_recv() is None
        assert b.mid_frame_stalls == 0
        a._sock.sendall(payload[100:])
        frame = None
        deadline = time.monotonic() + 2.0
        while frame is None and time.monotonic() < deadline:
            frame = b.try_recv()
        assert frame == payload

    def test_partial_frame_poll_never_blocks(self, pair):
        a, b = pair
        a._sock.sendall(struct.pack(_LEN_FMT, 5000) + b"\x01" * 10)
        time.sleep(0.05)  # let the kernel deliver the fragment
        started = time.monotonic()
        for _ in range(100):
            assert b.try_recv() is None
        elapsed = time.monotonic() - started
        assert elapsed < 1.0, f"zero-timeout polls blocked ({elapsed:.2f}s)"
        assert b.mid_frame_stalls == 0

    def test_recv_many_returns_only_complete_frames(self, pair):
        a, b = pair
        f1, f2 = b"first-frame", b"second"
        partial_len = 64
        a._sock.sendall(
            struct.pack(_LEN_FMT, len(f1)) + f1
            + struct.pack(_LEN_FMT, len(f2)) + f2
            + struct.pack(_LEN_FMT, partial_len) + b"\x02" * 10
        )
        got = []
        deadline = time.monotonic() + 2.0
        while len(got) < 2 and time.monotonic() < deadline:
            got.extend(b.recv_many(8, timeout=0.0))
        assert got == [f1, f2]
        assert b.recv_many(8, timeout=0.0) == []
        a._sock.sendall(b"\x02" * (partial_len - 10))
        got = []
        deadline = time.monotonic() + 2.0
        while not got and time.monotonic() < deadline:
            got = b.recv_many(8, timeout=0.0)
        assert got == [b"\x02" * partial_len]

    def test_peer_close_mid_frame_still_raises(self, pair):
        """EOF remains the death signal: a peer that really dies
        mid-frame produces a typed error, not a silent None."""
        a, b = pair
        a._sock.sendall(struct.pack(_LEN_FMT, 500) + b"\x03" * 20)
        time.sleep(0.05)
        while b.try_recv() is None and not b._recv_buffer:
            time.sleep(0.01)
        a._sock.close()
        deadline = time.monotonic() + 2.0
        with pytest.raises(InterfaceClosed, match="mid-frame"):
            while time.monotonic() < deadline:
                b.try_recv()
                time.sleep(0.01)
