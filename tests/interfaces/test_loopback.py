"""In-memory queue-pair interface."""

import threading

import pytest

from repro.interfaces.base import InterfaceClosed
from repro.interfaces.loopback import LoopbackPair


@pytest.fixture
def pair():
    return LoopbackPair().endpoints()


class TestBasicTransfer:
    def test_bidirectional(self, pair):
        a, b = pair
        a.send(b"to-b")
        b.send(b"to-a")
        assert b.recv(1.0) == b"to-b"
        assert a.recv(1.0) == b"to-a"

    def test_frame_boundaries_preserved(self, pair):
        a, b = pair
        a.send(b"one")
        a.send(b"two")
        assert b.recv(1.0) == b"one"
        assert b.recv(1.0) == b"two"

    def test_empty_frame(self, pair):
        a, b = pair
        a.send(b"")
        assert b.recv(1.0) == b""

    def test_counters(self, pair):
        a, b = pair
        a.send(b"x")
        b.recv(1.0)
        assert a.sent_frames == 1
        assert b.received_frames == 1


class TestNonBlocking:
    def test_try_recv_empty(self, pair):
        a, b = pair
        assert b.try_recv() is None

    def test_try_recv_pending(self, pair):
        a, b = pair
        a.send(b"m")
        assert b.try_recv() == b"m"

    def test_recv_timeout(self, pair):
        _, b = pair
        assert b.recv(timeout=0.02) is None


class TestBlockingHandoff:
    def test_recv_wakes_on_send(self, pair):
        a, b = pair
        result = {}

        def receiver():
            result["frame"] = b.recv(2.0)

        thread = threading.Thread(target=receiver)
        thread.start()
        a.send(b"wake up")
        thread.join(3.0)
        assert result["frame"] == b"wake up"


class TestClose:
    def test_send_after_close_raises(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")
        assert a.closed

    def test_send_to_closed_peer_raises(self, pair):
        a, b = pair
        b.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")

    def test_recv_drains_then_signals_peer_gone(self, pair):
        a, b = pair
        a.send(b"last words")
        a.close()
        assert b.recv(1.0) == b"last words"
        assert b.recv(0.05) is None  # peer gone, nothing buffered

    def test_double_close_harmless(self, pair):
        a, _ = pair
        a.close()
        a.close()
