"""In-memory queue-pair interface."""

import threading

import pytest

from repro.interfaces.base import InterfaceClosed
from repro.interfaces.loopback import LoopbackPair


@pytest.fixture
def pair():
    return LoopbackPair().endpoints()


class TestBasicTransfer:
    def test_bidirectional(self, pair):
        a, b = pair
        a.send(b"to-b")
        b.send(b"to-a")
        assert b.recv(1.0) == b"to-b"
        assert a.recv(1.0) == b"to-a"

    def test_frame_boundaries_preserved(self, pair):
        a, b = pair
        a.send(b"one")
        a.send(b"two")
        assert b.recv(1.0) == b"one"
        assert b.recv(1.0) == b"two"

    def test_empty_frame(self, pair):
        a, b = pair
        a.send(b"")
        assert b.recv(1.0) == b""

    def test_counters(self, pair):
        a, b = pair
        a.send(b"x")
        b.recv(1.0)
        assert a.sent_frames == 1
        assert b.received_frames == 1


class TestNonBlocking:
    def test_try_recv_empty(self, pair):
        a, b = pair
        assert b.try_recv() is None

    def test_try_recv_pending(self, pair):
        a, b = pair
        a.send(b"m")
        assert b.try_recv() == b"m"

    def test_recv_timeout(self, pair):
        _, b = pair
        assert b.recv(timeout=0.02) is None


class TestBlockingHandoff:
    def test_recv_wakes_on_send(self, pair):
        a, b = pair
        result = {}

        def receiver():
            result["frame"] = b.recv(2.0)

        thread = threading.Thread(target=receiver)
        thread.start()
        a.send(b"wake up")
        thread.join(3.0)
        assert result["frame"] == b"wake up"


class TestClose:
    def test_send_after_close_raises(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")
        assert a.closed

    def test_send_to_closed_peer_raises(self, pair):
        a, b = pair
        b.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")

    def test_recv_drains_then_signals_peer_gone(self, pair):
        a, b = pair
        a.send(b"last words")
        a.close()
        assert b.recv(1.0) == b"last words"
        assert b.recv(0.05) is None  # peer gone, nothing buffered

    def test_double_close_harmless(self, pair):
        a, _ = pair
        a.close()
        a.close()


class TestBackpressure:
    """Optional byte cap on each direction's in-flight queue."""

    def test_unbounded_by_default(self):
        a, b = LoopbackPair().endpoints()
        for _ in range(100):
            a.send(b"x" * 1024)  # never blocks
        assert a.metrics()["backpressure_waits"] == 0

    def test_send_blocks_until_receiver_drains(self):
        import threading

        a, b = LoopbackPair(max_buffered_bytes=64).endpoints()
        a.send(b"x" * 60)
        sent = threading.Event()

        def blocked_send():
            a.send(b"y" * 60)  # over the cap: must wait for a drain
            sent.set()

        thread = threading.Thread(target=blocked_send, daemon=True)
        thread.start()
        assert not sent.wait(0.2), "send should have blocked at the cap"
        assert b.recv(1.0) == b"x" * 60
        assert sent.wait(2.0), "send never resumed after the drain"
        assert b.recv(1.0) == b"y" * 60
        assert a.metrics()["backpressure_waits"] == 1

    def test_oversize_frame_admitted_when_queue_empty(self):
        a, b = LoopbackPair(max_buffered_bytes=16).endpoints()
        a.send(b"z" * 100)  # larger than the cap, but the queue is empty
        assert b.recv(1.0) == b"z" * 100

    def test_send_many_counts_batch_bytes(self):
        a, b = LoopbackPair(max_buffered_bytes=1024).endpoints()
        a.send_many([b"a" * 100] * 5)
        assert b.rx_queue_bytes() == 500
        assert b.recv_many(max_n=10, timeout=1.0) == [b"a" * 100] * 5
        assert b.rx_queue_bytes() == 0

    def test_blocked_send_raises_when_peer_closes(self):
        import threading

        a, b = LoopbackPair(max_buffered_bytes=32).endpoints()
        a.send(b"x" * 32)
        outcome = {}

        def blocked_send():
            try:
                a.send(b"y" * 32)
                outcome["result"] = "sent"
            except InterfaceClosed:
                outcome["result"] = "closed"

        thread = threading.Thread(target=blocked_send, daemon=True)
        thread.start()
        import time

        time.sleep(0.1)
        b.close()
        thread.join(3.0)
        assert outcome.get("result") == "closed"
