"""Vectored send_many/recv_many across every interface family."""

import pytest

from repro.faults import parse_fault_plan
from repro.faults.injector import PlannedFaultyInterface, PlannedInjector
from repro.interfaces.aci import aci_pair
from repro.interfaces.base import InterfaceClosed
from repro.interfaces.loopback import LoopbackPair
from repro.interfaces.sci import sci_pair
from repro.protocol.headers import Sdu


@pytest.fixture
def sci():
    a, b = sci_pair()
    yield a, b
    a.close()
    b.close()


@pytest.fixture
def loopback():
    pair = LoopbackPair()
    yield pair.a, pair.b
    pair.a.close()
    pair.b.close()


@pytest.fixture
def aci():
    a, b = aci_pair()
    yield a, b
    a.close()
    b.close()


FRAMES = [b"alpha", b"", b"gamma" * 100, bytes(range(256))]


class TestSendManyRoundtrip:
    def test_sci_batch_roundtrip(self, sci):
        a, b = sci
        assert a.send_many(FRAMES) == len(FRAMES)
        for frame in FRAMES:
            assert b.recv(1.0) == frame

    def test_loopback_batch_roundtrip(self, loopback):
        a, b = loopback
        assert a.send_many(FRAMES) == len(FRAMES)
        for frame in FRAMES:
            assert b.recv(1.0) == frame

    def test_aci_batch_roundtrip(self, aci):
        a, b = aci
        assert a.send_many(FRAMES) == len(FRAMES)
        for frame in FRAMES:
            assert b.recv(1.0) == frame

    def test_sci_batch_interleaves_with_single_sends(self, sci):
        a, b = sci
        a.send(b"one")
        a.send_many([b"two", b"three"])
        a.send(b"four")
        for expected in (b"one", b"two", b"three", b"four"):
            assert b.recv(1.0) == expected

    def test_empty_batch_is_a_noop(self, sci):
        a, _ = sci
        assert a.send_many([]) == 0
        assert a.metrics()["batched_sends"] == 0

    def test_single_frame_batch_not_counted_as_batched(self, sci):
        a, b = sci
        assert a.send_many([b"solo"]) == 1
        assert b.recv(1.0) == b"solo"
        assert a.metrics()["batched_sends"] == 0

    @pytest.mark.parametrize("family", ["sci", "loopback", "aci"])
    def test_batched_counters(self, family, request):
        a, b = request.getfixturevalue(family)
        a.send_many([b"x", b"y", b"z"])
        metrics = a.metrics()
        assert metrics["batched_sends"] == 1
        assert metrics["batched_frames"] == 3
        assert metrics["sent_frames"] == 3


class TestEncodables:
    def test_sci_coalesces_wire_encodables(self, sci):
        """Sdu objects ride the encode_into fast path: the receiver
        must see byte-identical frames to per-frame Sdu.encode()."""
        a, b = sci
        sdus = [
            Sdu.build(
                connection_id=7, msg_id=1, seqno=i, total_sdus=3,
                payload=bytes([i]) * (i * 500 + 1), end_bit=(i == 2),
            )
            for i in range(3)
        ]
        a.send_many(sdus)
        for sdu in sdus:
            assert b.recv(1.0) == sdu.encode()

    def test_loopback_accepts_wire_encodables(self, loopback):
        a, b = loopback
        sdu = Sdu.build(
            connection_id=1, msg_id=1, seqno=0, total_sdus=1,
            payload=b"payload", end_bit=True,
        )
        a.send_many([sdu, sdu])
        assert b.recv(1.0) == sdu.encode()
        assert b.recv(1.0) == sdu.encode()

    def test_sci_oversize_frame_in_batch_rejected(self, sci):
        a, _ = sci
        a.max_frame = 64
        with pytest.raises(ValueError, match="exceeds"):
            a.send_many([b"ok", b"x" * 65, b"ok"])


class TestRecvMany:
    def test_recv_many_drains_ready_frames(self, sci):
        a, b = sci
        a.send_many([b"1", b"2", b"3", b"4"])
        got = []
        while len(got) < 4:
            got.extend(b.recv_many(max_n=8, timeout=1.0))
        assert got == [b"1", b"2", b"3", b"4"]

    def test_recv_many_respects_max_n(self, loopback):
        a, b = loopback
        a.send_many([b"1", b"2", b"3"])
        assert b.recv_many(max_n=2, timeout=1.0) == [b"1", b"2"]
        assert b.recv_many(max_n=2, timeout=1.0) == [b"3"]

    def test_recv_many_zero_timeout_polls(self, loopback):
        _, b = loopback
        assert b.recv_many(max_n=4, timeout=0.0) == []

    def test_recv_many_times_out_empty(self, sci):
        _, b = sci
        assert b.recv_many(max_n=4, timeout=0.05) == []

    def test_recv_many_on_closed_interface_raises(self, loopback):
        _, b = loopback
        b.close()
        with pytest.raises(InterfaceClosed):
            b.recv_many(max_n=4, timeout=0.05)


class TestBatchedFaults:
    def test_planned_faults_apply_per_frame_within_batch(self, loopback):
        """A batch must offer every frame to the fault plan individually:
        drop:rate=1.0 between 'armed' and forever kills each frame, and
        the injector's counter shows one decision per frame."""
        a, b = loopback
        injector = PlannedInjector(
            parse_fault_plan("drop:rate=1.0;seed:3"), clock=lambda: 0.0
        )
        faulty = PlannedFaultyInterface(a, injector)
        faulty.send_many([b"one", b"two", b"three"])
        assert injector.dropped == 3
        assert b.recv_many(max_n=8, timeout=0.05) == []

    def test_batched_sends_replay_unbatched_fault_decisions(self):
        """Same seed, same frame order => the batched path must lose
        exactly the frames the per-frame path loses.  This is the
        contract that lets chaos suites interleave send()/send_many()
        without changing the fault schedule."""
        frames = [f"frame-{i}".encode() for i in range(32)]

        def run(batched: bool) -> list:
            pair = LoopbackPair()
            injector = PlannedInjector(
                parse_fault_plan("drop:rate=0.4,burst=2;seed:11"),
                clock=lambda: 0.0,
            )
            faulty = PlannedFaultyInterface(pair.a, injector)
            if batched:
                faulty.send_many(frames)
            else:
                for frame in frames:
                    faulty.send(frame)
            received = pair.b.recv_many(max_n=64, timeout=0.05)
            pair.a.close()
            pair.b.close()
            return received

        assert run(batched=True) == run(batched=False)

    def test_duplicate_plan_doubles_batch_frames(self, loopback):
        a, b = loopback
        injector = PlannedInjector(
            parse_fault_plan("duplicate:rate=1.0,delay=0;seed:1"),
            clock=lambda: 0.0,
        )
        faulty = PlannedFaultyInterface(a, injector)
        faulty.send_many([b"x", b"y"])
        got = []
        deadline = 50
        while len(got) < 4 and deadline:
            got.extend(b.recv_many(max_n=8, timeout=0.1))
            deadline -= 1
        assert sorted(got) == [b"x", b"x", b"y", b"y"]

    def test_faulty_recv_many_checks_crash(self, loopback):
        a, b = loopback
        injector = PlannedInjector(
            parse_fault_plan("peer_crash:at=0.0001"), clock=None
        )
        faulty = PlannedFaultyInterface(b, injector)
        import time

        time.sleep(0.01)
        with pytest.raises(InterfaceClosed):
            faulty.recv_many(max_n=4, timeout=0.05)
