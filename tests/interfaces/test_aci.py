"""ACI: the unreliable ATM-style datagram interface."""

import pytest

from repro.interfaces.aci import ACI_MAX_SDU, AciInterface, aci_open, aci_pair
from repro.interfaces.base import FaultInjector, InterfaceClosed


@pytest.fixture
def pair():
    a, b = aci_pair()
    yield a, b
    a.close()
    b.close()


class TestDatagrams:
    def test_roundtrip(self, pair):
        a, b = pair
        a.send(b"datagram")
        assert b.recv(1.0) == b"datagram"

    def test_bidirectional(self, pair):
        a, b = pair
        a.send(b"ping")
        b.send(b"pong")
        assert b.recv(1.0) == b"ping"
        assert a.recv(1.0) == b"pong"

    def test_message_boundaries(self, pair):
        a, b = pair
        a.send(b"first")
        a.send(b"second")
        assert b.recv(1.0) == b"first"
        assert b.recv(1.0) == b"second"

    def test_recv_timeout(self, pair):
        _, b = pair
        assert b.recv(0.02) is None

    def test_try_recv(self, pair):
        a, b = pair
        assert b.try_recv() is None
        a.send(b"poll me")
        for _ in range(1000):
            frame = b.try_recv()
            if frame is not None:
                break
        assert frame == b"poll me"

    def test_interface_declares_unreliable(self, pair):
        a, _ = pair
        assert a.reliable is False


class TestAtmApiRestrictions:
    def test_sdu_cap_enforced(self, pair):
        # Models the Fore API's SDU restriction (paper §3.2).
        a, _ = pair
        with pytest.raises(ValueError, match="exceeds"):
            a.send(b"x" * (a.max_frame + 1))

    def test_frame_at_cap_allowed(self, pair):
        a, b = pair
        frame = b"y" * ACI_MAX_SDU
        a.send(frame)
        assert b.recv(2.0) == frame

    def test_send_without_peer_rejected(self):
        endpoint = aci_open()
        with pytest.raises(RuntimeError, match="no peer"):
            endpoint.send(b"x")
        endpoint.close()


class TestFaultInjection:
    def test_deterministic_loss(self):
        sent = 200
        a, b = aci_pair(FaultInjector(loss_rate=0.3, seed=99))
        for i in range(sent):
            a.send(bytes([i % 256]) * 10)
        received = 0
        while b.recv(0.05) is not None:
            received += 1
        assert received == sent - a.injector.dropped
        assert 0.15 < a.injector.dropped / sent < 0.45
        a.close()
        b.close()

    def test_same_seed_same_losses(self):
        outcomes = []
        for _ in range(2):
            a, b = aci_pair(FaultInjector(loss_rate=0.5, seed=7))
            for i in range(50):
                a.send(bytes([i]))
            got = []
            while True:
                frame = b.recv(0.05)
                if frame is None:
                    break
                got.append(frame)
            outcomes.append(got)
            a.close()
            b.close()
        assert outcomes[0] == outcomes[1]

    def test_corruption_injection(self):
        a, b = aci_pair(FaultInjector(corrupt_rate=1.0, seed=1))
        a.send(b"pristine payload bytes")
        frame = b.recv(1.0)
        assert frame is not None
        assert frame != b"pristine payload bytes"
        assert a.injector.corrupted == 1
        a.close()
        b.close()

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(corrupt_rate=-0.1)


class TestClose:
    def test_send_after_close(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(InterfaceClosed):
            a.send(b"x")

    def test_recv_after_close(self, pair):
        _, b = pair
        b.close()
        with pytest.raises(InterfaceClosed):
            b.recv(0.05)
