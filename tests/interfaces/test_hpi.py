"""HPI fabric: the in-process trap interface."""

import pytest

from repro.interfaces.hpi import HpiFabric


class TestOfferClaim:
    def test_offer_then_claim_joins_endpoints(self):
        fabric = HpiFabric("test")
        port, mine = fabric.offer()
        theirs = fabric.claim(port)
        mine.send(b"through the trap")
        assert theirs.recv(1.0) == b"through the trap"
        theirs.send(b"reply")
        assert mine.recv(1.0) == b"reply"

    def test_ports_are_unique(self):
        fabric = HpiFabric()
        ports = {fabric.offer()[0] for _ in range(10)}
        assert len(ports) == 10

    def test_claim_is_one_shot(self):
        fabric = HpiFabric()
        port, _ = fabric.offer()
        fabric.claim(port)
        with pytest.raises(KeyError):
            fabric.claim(port)

    def test_claim_unknown_port(self):
        with pytest.raises(KeyError, match="no HPI offer"):
            HpiFabric().claim(42)

    def test_pending_offers_counted(self):
        fabric = HpiFabric()
        fabric.offer()
        fabric.offer()
        assert fabric.pending_offers() == 2
        port, _ = fabric.offer()
        fabric.claim(port)
        assert fabric.pending_offers() == 2

    def test_fabrics_are_isolated(self):
        # Cross-cluster HPI is impossible — the Fig. 3 constraint.
        fabric_a, fabric_b = HpiFabric("a"), HpiFabric("b")
        port, _ = fabric_a.offer()
        with pytest.raises(KeyError):
            fabric_b.claim(port)

    def test_endpoints_report_hpi_name(self):
        fabric = HpiFabric()
        port, mine = fabric.offer()
        theirs = fabric.claim(port)
        assert mine.name == "hpi"
        assert theirs.name == "hpi"
