"""Ablation: repetitive send vs spanning-tree multicast vs group size."""

import pytest

from conftest import emit, persist
from repro.bench.ablations import format_multicast_sweep, multicast_completion, multicast_sweep


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    results = multicast_sweep()
    emit(format_multicast_sweep(results))
    persist("ablation_multicast", {"multicast": results})
    return results


def test_tree_scales_logarithmically(sweep):
    assert sweep["spanning_tree"][64] < sweep["repetitive"][64] / 4


@pytest.mark.parametrize("members", [8, 64])
@pytest.mark.parametrize("algorithm", ["repetitive", "spanning_tree"])
def test_multicast_completion(benchmark, members, algorithm):
    benchmark(lambda: multicast_completion(members, algorithm))
