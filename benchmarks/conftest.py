"""Benchmark harness configuration.

Run with:  pytest benchmarks/ --benchmark-only

Each bench module regenerates one table or figure from the paper (the
full series prints to stdout once per session) and registers
pytest-benchmark timings for its representative operations.
"""

import pytest


def emit(text: str) -> None:
    """Print a regenerated table/figure, visibly separated."""
    print("\n" + "=" * 78)
    print(text)
    print("=" * 78)
