"""Benchmark harness configuration.

Run with:  pytest benchmarks/ --benchmark-only

Each bench module regenerates one table or figure from the paper (the
full series prints to stdout once per session) and registers
pytest-benchmark timings for its representative operations.
"""

import pytest

from repro.bench.persist import persist_run


def emit(text: str) -> None:
    """Print a regenerated table/figure, visibly separated."""
    print("\n" + "=" * 78)
    print(text)
    print("=" * 78)


def persist(name: str, results: dict, config: dict = None) -> str:
    """Persist a regenerated figure/table to BENCH_<name>.json.

    Honors NCS_BENCH_DIR (set it to ``off`` to suppress artifacts);
    prints the path so CI logs show what was captured.
    """
    path = persist_run(name, results, config=config)
    if path:
        print(f"[bench] persisted {path}")
    return path
