"""Ablation: threaded data path vs the §4.2 thread-bypass procedures.

Live-runtime echo at two sizes per mode: the bypass variant trades the
session overhead (Table I) for synchronous semantics.
"""

import pytest

from conftest import emit, persist
from repro.bench.runner import format_table
from repro.core import ConnectionConfig, Node, NodeConfig
from repro.util.stats import trimmed_mean


@pytest.fixture(scope="module")
def pairs():
    built = {}
    nodes = []
    for mode in ("threaded", "bypass"):
        a = Node(NodeConfig(name=f"bp-{mode}-a"))
        b = Node(NodeConfig(name=f"bp-{mode}-b"))
        b.accept_mode = mode
        conn = a.connect(
            b.address,
            ConnectionConfig(interface="sci", flow_control="none",
                             error_control="none", mode=mode),
            peer_name="b",
        )
        peer = b.accept(timeout=5.0)
        built[mode] = (conn, peer)
        nodes += [a, b]
    yield built
    for node in nodes:
        node.close()


@pytest.fixture(scope="module", autouse=True)
def summary(pairs):
    import time

    rows = []
    for mode, (conn, peer) in pairs.items():
        for size in (1, 65536):
            payload = b"x" * size
            samples = []
            for _ in range(30):
                start = time.perf_counter()
                conn.send(payload)
                assert peer.recv(timeout=5.0) is not None
                samples.append((time.perf_counter() - start) * 1e6)
            rows.append((f"{mode}/{size}B", trimmed_mean(samples)))
    emit(format_table(
        "Threaded vs bypass one-way latency (us, live runtime)",
        ("path/size", "us"),
        rows,
        col_width=12,
    ))
    persist("ablation_bypass", {"latency_us": dict(rows)})
    return dict(rows)


def test_bypass_cheaper_at_one_byte(summary):
    assert summary["bypass/1B"] < summary["threaded/1B"]


@pytest.mark.parametrize("mode", ["threaded", "bypass"])
@pytest.mark.parametrize("size", [1, 65536])
def test_one_way_latency(benchmark, pairs, mode, size):
    conn, peer = pairs[mode]
    payload = b"x" * size

    def one_way():
        conn.send(payload)
        assert peer.recv(timeout=5.0) is not None

    benchmark(one_way)
