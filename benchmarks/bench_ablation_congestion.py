"""Ablation: NCS across a genuinely congested switched ATM fabric.

The closest configuration to the paper's real testbed: NCS endpoints on
hosts behind cell switches with bounded output queues, competing with
background UBR traffic on the trunk.  Congestion tail-drops cells, AAL5
CRC kills the affected frames, and the per-connection error control
recovers — or, configured off, loses data, which is the whole argument
for per-connection selectable reliability.
"""

import pytest

from conftest import emit, persist
from repro.bench.runner import format_table
from repro.simnet.atm_bridge import CrossTrafficSource, build_switched_pair
from repro.simnet.kernel import Simulator

KB = 1024


def run_congested(
    noise_fps: float,
    error_control: str = "selective_repeat",
    message_size: int = 128 * KB,
) -> dict:
    sim = Simulator()
    a, b, network = build_switched_pair(
        sim,
        switch_queue_capacity=64,
        error_control=error_control,
        retransmit_timeout=0.02,
        max_retries=30,
    )
    noise = None
    if noise_fps > 0:
        network.add_host("noise-src")
        network.add_host("noise-dst")
        network.link("noise-src", "switch-1", delay=5e-6)
        network.link("noise-dst", "switch-2", delay=5e-6)
        noise = CrossTrafficSource(
            network, "noise-src", "noise-dst", frame_size=16 * KB,
            rate_fps=noise_fps,
        )
        # 16 KB at 1800 fps is ~340 cells/frame: keep the burst short or
        # the cell-level event count dwarfs the measurement.
        noise.start(duration=0.6)
    message = bytes(message_size)
    done = a.send(message)
    sim.run(max_events=8_000_000)
    if noise is not None:
        noise.stop()
    dropped = sum(s.stats()["dropped"] for s in network.switches.values())
    return {
        "delivered": b.delivered == [message],
        "time_ms": done.value * 1e3 if done.value is not None else None,
        "retx_sdus": getattr(a.ec_sender, "retransmitted_sdus", 0),
        "cells_dropped": dropped,
    }


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    rows = []
    results = {}
    for label, fps, ec in [
        ("idle/SR", 0.0, "selective_repeat"),
        ("congested/SR", 1800.0, "selective_repeat"),
        ("congested/none", 1800.0, "none"),
    ]:
        stats = run_congested(fps, error_control=ec)
        results[label] = stats
        rows.append((
            label,
            stats["time_ms"] if stats["time_ms"] is not None else -1.0,
            stats["retx_sdus"],
            stats["cells_dropped"],
            int(stats["delivered"]),
        ))
    emit(format_table(
        "NCS across a congested switched ATM fabric (128K message)",
        ("scenario", "time_ms", "retx", "cell_drops", "ok"),
        rows,
        col_width=12,
    ))
    persist("ablation_congestion", {"congestion": results})
    return results


def test_clean_fabric_is_fast_and_loss_free(sweep):
    idle = sweep["idle/SR"]
    assert idle["delivered"]
    assert idle["retx_sdus"] == 0
    assert idle["cells_dropped"] == 0


def test_error_control_survives_congestion(sweep):
    congested = sweep["congested/SR"]
    assert congested["cells_dropped"] > 0  # the fabric really congested
    assert congested["delivered"]          # and NCS still delivered
    assert congested["retx_sdus"] > 0


def test_no_error_control_loses_data_under_congestion(sweep):
    assert not sweep["congested/none"]["delivered"]


def test_congested_transfer(benchmark):
    # A single congested run simulates ~1M cell events; cap the rounds.
    benchmark.pedantic(lambda: run_congested(1800.0), rounds=3, iterations=1)
