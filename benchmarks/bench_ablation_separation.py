"""Ablation: control/data separation on vs off (paper §2's core claim)."""

import pytest

from conftest import emit, persist
from repro.bench.ablations import format_separation_sweep, separation_sweep, _transfer_time

KB = 1024


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    results = separation_sweep()
    emit(format_separation_sweep(results))
    persist("ablation_separation", {"separation": results})
    return results


def test_separation_pays_under_contention(sweep):
    assert sweep["separated"]["time_ms"] < sweep["multiplexed"]["time_ms"]


@pytest.mark.parametrize("shared", [False, True], ids=["separated", "multiplexed"])
def test_bidirectional_burst(benchmark, shared):
    benchmark(
        lambda: _transfer_time(
            64 * KB,
            message_count=16,
            seed=23,
            bidirectional=True,
            bandwidth_bps=25e6,
            share_control_link=shared,
        )
    )
