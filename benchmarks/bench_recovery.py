"""Recovery layer costs: reconnect latency, replay drain, supervision
overhead.  Not a paper figure — the recovery subsystem is this repo's
extension — but persisted like one so regressions show up in CI.
"""

import pytest

from conftest import emit, persist
from repro.bench import recovery


@pytest.fixture(scope="module", autouse=True)
def results():
    results = recovery.run_recovery_bench(
        reconnect_rounds=5, replay_backlog=32, overhead_iterations=150
    )
    emit(recovery.format_results(results))
    persist(
        "recovery",
        results,
        config={
            "reconnect_rounds": 5,
            "replay_backlog": 32,
            "overhead_iterations": 150,
        },
    )
    return results


def test_reconnect_latency_is_bounded(results):
    # BENCH_POLICY dials with 10 ms backoff; a recovery that takes more
    # than 2 s means detection or adoption is wedged, not just slow.
    assert results["reconnect"]["median_ms"] < 2000


def test_replay_delivers_the_whole_backlog(results):
    assert results["replay"]["replayed_messages"] >= results["replay"]["backlog"]


def test_supervision_costs_less_than_a_roundtrip(results):
    # The envelope + ledger + dedup path must stay cheaper than the
    # underlying echo RTT it protects (i.e. < 100% overhead).
    assert results["overhead"]["overhead_fraction"] < 1.0


def test_benchmark_reconnect(benchmark_or_skip, results):
    benchmark_or_skip(
        lambda: recovery.bench_reconnect_latency(rounds=1)
    )


@pytest.fixture
def benchmark_or_skip(request):
    """pytest-benchmark when available; plain call otherwise."""
    benchmark = request.getfixturevalue("benchmark") if (
        request.config.pluginmanager.hasplugin("benchmark")
    ) else (lambda fn: fn())
    return benchmark
