"""Table I: cost decomposition of a 1-byte NCS_send via the Send Thread.

Regenerates the session-overhead vs data-transfer split on the live
runtime, and benchmarks the 1-byte send on both the threaded path and
the §4.2 bypass path.
"""

import pytest

from conftest import emit
from repro.bench import table1
from repro.core import ConnectionConfig, Node, NodeConfig


@pytest.fixture(scope="module", autouse=True)
def table(request):
    results = table1.run(iterations=150, interface="sci")
    emit(table1.format_results(results))
    return results


@pytest.fixture(scope="module")
def live_pair():
    pairs = {}
    nodes = []
    for mode in ("threaded", "bypass"):
        a = Node(NodeConfig(name=f"b1-{mode}-a"))
        b = Node(NodeConfig(name=f"b1-{mode}-b"))
        b.accept_mode = mode
        conn = a.connect(
            b.address,
            ConnectionConfig(interface="sci", flow_control="none",
                             error_control="none", mode=mode),
            peer_name="b",
        )
        peer = b.accept(timeout=5.0)
        pairs[mode] = (conn, peer)
        nodes += [a, b]
    yield pairs
    for node in nodes:
        node.close()


def test_table1_structure(table):
    """Session overhead is real and decomposed into its stages."""
    assert table["session overhead total"] > 0
    assert table["total"] > 0


def test_one_byte_send_threaded(benchmark, table, live_pair):
    conn, peer = live_pair["threaded"]

    def send_one():
        conn.send(b"x")
        assert peer.recv(timeout=5.0) == b"x"

    benchmark(send_one)


def test_one_byte_send_bypass(benchmark, live_pair):
    conn, peer = live_pair["bypass"]

    def send_one():
        conn.send(b"x")
        assert peer.recv(timeout=5.0) == b"x"

    benchmark(send_one)
