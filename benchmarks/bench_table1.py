"""Table I: cost decomposition of a 1-byte NCS_send via the Send Thread.

Regenerates the session-overhead vs data-transfer split on the live
runtime, and benchmarks the 1-byte send on both the threaded path and
the §4.2 bypass path.
"""

import pytest

from conftest import emit, persist
from repro.bench import table1
from repro.core import ConnectionConfig, Node, NodeConfig


@pytest.fixture(scope="module", autouse=True)
def profiled(request):
    results, profiler = table1.run_profiled(iterations=150, interface="sci")
    emit(table1.format_results(results))
    emit(profiler.format_table())
    persist(
        "table1",
        {"threaded": results},
        config={"iterations": 150, "interface": "sci"},
    )
    return results, profiler


@pytest.fixture(scope="module")
def table(profiled):
    return profiled[0]


@pytest.fixture(scope="module")
def bypass_profiler():
    results, profiler = table1.run_profiled(
        iterations=150, interface="sci", mode="bypass"
    )
    emit(profiler.format_table())
    return profiler


@pytest.fixture(scope="module")
def live_pair():
    pairs = {}
    nodes = []
    for mode in ("threaded", "bypass"):
        a = Node(NodeConfig(name=f"b1-{mode}-a"))
        b = Node(NodeConfig(name=f"b1-{mode}-b"))
        b.accept_mode = mode
        conn = a.connect(
            b.address,
            ConnectionConfig(interface="sci", flow_control="none",
                             error_control="none", mode=mode),
            peer_name="b",
        )
        peer = b.accept(timeout=5.0)
        pairs[mode] = (conn, peer)
        nodes += [a, b]
    yield pairs
    for node in nodes:
        node.close()


def test_table1_structure(table):
    """Session overhead is real and decomposed into its stages."""
    assert table["session overhead total"] > 0
    assert table["total"] > 0


# The telescoping stage-sum invariant moved to tier-1:
# tests/obs/test_telescoping.py enforces it with
# repro.obs.profiler.TELESCOPE_TOLERANCE on every pytest run, not just
# the bench job.


def test_bypass_breakdown(bypass_profiler):
    """The §4.2 procedure variant has no context-switch stages."""
    breakdown = bypass_profiler.send_breakdown()
    assert breakdown["total"] > 0
    assert "context switch to Send Thread" not in breakdown


@pytest.fixture(scope="module")
def watchdog_pair():
    """A threaded pair with the health watchdog sampling at its default
    period — measures the observer's cost against the plain pair."""
    a = Node(NodeConfig(name="b1-wd-a", watchdog=True))
    b = Node(NodeConfig(name="b1-wd-b", watchdog=True))
    conn = a.connect(
        b.address,
        ConnectionConfig(interface="sci", flow_control="none",
                         error_control="none"),
        peer_name="b",
    )
    peer = b.accept(timeout=5.0)
    yield conn, peer
    a.close()
    b.close()


def test_one_byte_send_threaded(benchmark, table, live_pair):
    conn, peer = live_pair["threaded"]

    def send_one():
        conn.send(b"x")
        assert peer.recv(timeout=5.0) == b"x"

    benchmark(send_one)


def test_one_byte_send_with_watchdog(benchmark, watchdog_pair):
    """Same roundtrip with the watchdog on; the acceptance bar is < 5%
    regression vs test_one_byte_send_threaded at default sampling."""
    conn, peer = watchdog_pair

    def send_one():
        conn.send(b"x")
        assert peer.recv(timeout=5.0) == b"x"

    benchmark(send_one)


def test_one_byte_send_bypass(benchmark, live_pair):
    conn, peer = live_pair["bypass"]

    def send_one():
        conn.send(b"x")
        assert peer.recv(timeout=5.0) == b"x"

    benchmark(send_one)
