"""Ablation: flow control algorithms on a burst workload."""

import pytest

from conftest import emit, persist
from repro.bench.ablations import flow_control_sweep, format_flow_sweep, _transfer_time

KB = 1024


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    results = flow_control_sweep()
    emit(format_flow_sweep(results))
    persist("ablation_flow_control", {"flow_control": results})
    return results


def test_all_deliver(sweep):
    assert all(stats["delivered"] == 8 for stats in sweep.values())


def test_control_traffic_is_the_price_of_feedback(sweep):
    assert sweep["credit"]["control_pdus"] > sweep["rate"]["control_pdus"]


@pytest.mark.parametrize("algorithm", ["credit", "window", "rate", "none"])
def test_burst_8x64k(benchmark, algorithm):
    options = {"rate_pps": 4000.0, "burst": 16.0} if algorithm == "rate" else {}
    benchmark(
        lambda: _transfer_time(
            64 * KB, flow_control=algorithm, message_count=8, seed=17, **options
        )
    )
