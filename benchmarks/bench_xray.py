"""Latency X-ray overhead: the attribution tax at each sampling rate.

Not a paper figure — the X-ray is this repo's latency-debugging
subsystem — but persisted like one so CI's bench_compare gate catches
the sampler's cost creeping past its design budget (≤5% at the 1/64
production default), and so the telescoping invariant is re-proven on
the bench workload, not just the unit-test one.
"""

import pytest

from conftest import emit, persist
from repro.bench import xray
from repro.obs.profiler import TELESCOPE_TOLERANCE


@pytest.fixture(scope="module", autouse=True)
def results():
    results = xray.run_xray_bench()
    emit(xray.format_results(results))
    persist(
        "xray",
        results,
        config={
            "messages": xray.DEFAULT_MESSAGES,
            "message_bytes": xray.DEFAULT_MESSAGE_BYTES,
            "repeats": xray.DEFAULT_REPEATS,
            "sampled_period": xray.SAMPLED_PERIOD,
        },
    )
    return results


def test_default_sampling_overhead_within_budget(results):
    # Design budget is ≤5%; single-rep noise on a loaded CI runner is
    # itself ±5%, so the gate sits at 10% — still far below the cost a
    # per-message (unsampled) implementation would show.
    assert results["overhead_sampled_pct"] <= 10.0


def test_sampler_picked_exactly_one_in_n(results):
    # Warmup send + messages x repeats, all deterministic: the sampled
    # rig must have picked exactly every 64th message.
    total = 1 + xray.DEFAULT_MESSAGES * xray.DEFAULT_REPEATS
    assert results["full"]["sampled_sends"] == total
    assert results["sampled"]["sampled_sends"] == total // xray.SAMPLED_PERIOD
    assert results["off"]["sampled_sends"] == 0


def test_spans_telescope_on_bench_workload(results):
    tele = results["telescope"]
    assert tele["joined_spans"] > 0
    assert abs(tele["telescope_ratio_median"] - 1.0) <= TELESCOPE_TOLERANCE
    assert abs(tele["telescope_ratio_worst"] - 1.0) <= TELESCOPE_TOLERANCE
    assert tele["dominant_stage"] is not None
