"""Figure 13: echo roundtrips, heterogeneous SUN-4 <-> RS6000 pair.

Regenerates the conversion-dominated panel (MPI's collapse, NCS's
immunity) and benchmarks the 64 KB heterogeneous echo per system.
"""

import pytest

from conftest import emit, persist
from repro.bench import fig12, fig13
from repro.simnet.platforms import RS6000_AIX41, SUN4_SUNOS55


@pytest.fixture(scope="module", autouse=True)
def figure(request):
    results = fig13.run()
    emit(fig13.format_results(results))
    persist("fig13", {"roundtrip_ms": results})
    return results


def test_fig13_ordering(figure):
    assert fig13.ordering_at(figure, 65536) == fig13.PAPER_ORDER_64K


def test_fig13_mpi_collapse(figure):
    assert figure["MPI"][65536] / figure["NCS"][65536] > 8


@pytest.mark.parametrize("system", ["NCS", "p4", "MPI", "PVM"])
def test_heterogeneous_echo_64k(benchmark, system):
    benchmark(
        lambda: fig12.roundtrip(system, SUN4_SUNOS55, RS6000_AIX41, 65536)
    )
