"""Ablation: SDU size vs loss (paper §3.2's stated trade-off)."""

import pytest

from conftest import emit, persist
from repro.bench.ablations import format_sdu_sweep, sdu_size_sweep, _transfer_time

KB = 1024


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    results = sdu_size_sweep()
    emit(format_sdu_sweep(results))
    persist("ablation_sdu_size", {"sdu_size": results})
    return results


def test_tradeoff_holds(sweep):
    clean, lossy = sweep[0.0], sweep[1e-3]
    assert clean[64 * KB]["time_ms"] <= clean[4 * KB]["time_ms"]
    assert lossy[4 * KB]["time_ms"] < lossy[64 * KB]["time_ms"]


@pytest.mark.parametrize("sdu_kb", [4, 16, 64])
def test_transfer_512k_clean(benchmark, sdu_kb):
    benchmark(
        lambda: _transfer_time(512 * KB, sdu_size=sdu_kb * KB)
    )


@pytest.mark.parametrize("sdu_kb", [4, 64])
def test_transfer_512k_lossy(benchmark, sdu_kb):
    benchmark(
        lambda: _transfer_time(
            512 * KB, sdu_size=sdu_kb * KB, cell_loss_rate=1e-3, seed=3
        )
    )
