"""Microbenchmarks of the substrates under everything else.

Not a paper table — engineering telemetry for the library itself:
framing, CRC, AAL5 SAR, engine throughput, thread-package switch costs.
"""

import time

import pytest

from conftest import persist
from repro.atm.aal5 import aal5_reassemble, aal5_segment
from repro.errorcontrol import make_error_control
from repro.protocol.headers import Sdu
from repro.protocol.segmentation import Reassembler, segment_message
from repro.threadpkg import make_thread_package
from repro.util.crc import crc32_aal5

PAYLOAD_64K = bytes(range(256)) * 256


def _time_us(fn, rounds: int = 50) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds * 1e6


@pytest.fixture(scope="module", autouse=True)
def persisted_micro(request):
    """Quick manual timings of the substrate ops, persisted alongside
    the pytest-benchmark stats so bench_compare can track them."""
    results = {
        "crc32_64k_us": _time_us(lambda: crc32_aal5(PAYLOAD_64K)),
        "segment_64k_us": _time_us(
            lambda: segment_message(1, 1, PAYLOAD_64K, 4096)
        ),
    }
    persist("micro", results)
    return results


def test_crc32_64k(benchmark):
    benchmark(lambda: crc32_aal5(PAYLOAD_64K))


def test_segment_64k(benchmark):
    benchmark(lambda: segment_message(1, 1, PAYLOAD_64K, 4096))


def test_frame_encode_decode(benchmark):
    sdu = segment_message(1, 1, PAYLOAD_64K, 4096)[0]

    def roundtrip():
        assert Sdu.decode(sdu.encode()).payload == sdu.payload

    benchmark(roundtrip)


def test_reassemble_64k(benchmark):
    sdus = segment_message(1, 1, PAYLOAD_64K, 4096)
    counter = iter(range(10**9))

    def reassemble():
        msg_id = next(counter)
        fresh = segment_message(1, msg_id, PAYLOAD_64K, 4096)
        reassembler = Reassembler()
        out = None
        for sdu in fresh:
            out = reassembler.add(sdu)
        assert out == PAYLOAD_64K

    benchmark(reassemble)


def test_aal5_sar_8k(benchmark):
    frame = PAYLOAD_64K[:8192]

    def sar():
        assert aal5_reassemble(aal5_segment(frame, 0, 32)) == frame

    benchmark(sar)


def test_selective_repeat_clean_exchange(benchmark):
    counter = iter(range(1, 10**9))

    def exchange():
        msg_id = next(counter)
        sender, receiver = make_error_control("selective_repeat", 1, 4096)
        effects = sender.send(msg_id, PAYLOAD_64K, 0.0)
        ack = None
        for sdu in effects.transmits:
            result = receiver.on_sdu(sdu, 0.0)
            if result.controls:
                ack = result.controls[-1]
        done = sender.on_control(ack, 0.0)
        assert done.completed == [msg_id]

    benchmark(exchange)


@pytest.mark.parametrize("kind", ["kernel", "user"])
def test_thread_package_context_switch(benchmark, kind):
    pkg = make_thread_package(kind)
    benchmark(lambda: pkg.context_switch_cost_probe(rounds=100))
    pkg.shutdown()
