"""Figure 12: echo roundtrips over simulated ATM, same-platform pairs.

Regenerates both panels (SUN-4 and RS6000), asserts the paper's
orderings, and benchmarks one 64 KB echo per system per platform.
"""

import pytest

from conftest import emit, persist
from repro.bench import fig12
from repro.simnet.platforms import PLATFORMS


@pytest.fixture(scope="module", autouse=True)
def panels(request):
    results = {}
    for platform in ("sun4", "rs6000"):
        results[platform] = fig12.run(platform)
        emit(fig12.format_results(results[platform], platform))
    persist("fig12", {"roundtrip_ms": results})
    return results


@pytest.mark.parametrize("platform", ["sun4", "rs6000"])
def test_fig12_ordering(panels, platform):
    assert (
        fig12.ordering_at(panels[platform], 65536)
        == fig12.PAPER_ORDER_64K[platform]
    )


@pytest.mark.parametrize("system", ["NCS", "p4", "MPI", "PVM"])
@pytest.mark.parametrize("platform", ["sun4", "rs6000"])
def test_echo_64k(benchmark, system, platform):
    profile = PLATFORMS[platform]
    benchmark(lambda: fig12.roundtrip(system, profile, profile, 65536))
