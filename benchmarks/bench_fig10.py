"""Figure 10: user-level vs kernel-level thread package, Fig. 9 workload.

Regenerates the full per-size table on the simulator and benchmarks the
simulation itself at the two regimes the paper highlights.
"""

import pytest

from conftest import emit, persist
from repro.bench import fig10


@pytest.fixture(scope="module", autouse=True)
def figure(request):
    results = fig10.run()
    emit(fig10.format_results(results))
    persist(
        "fig10",
        {
            "per_iteration_ms": results,
            "crossover": fig10.crossover_size(results),
        },
    )
    return results


def test_fig10_shape(figure):
    assert fig10.crossover_size(figure) == 8192  # just above the 4K point


def test_fig10_small_message_regime(benchmark, figure):
    benchmark(
        lambda: fig10.run(sizes=[1024])
    )


def test_fig10_large_message_regime(benchmark, figure):
    benchmark(
        lambda: fig10.run(sizes=[65536])
    )
