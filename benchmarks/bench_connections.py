"""Connection-count scaling smoke: both data planes at small fleets.

The full curve (event plane flat to 2,048 SCI / 10,000 loopback
connections while thread-per-connection collapses in fleet setup) takes
minutes and lives in the dedicated ``bench_connections`` CI job; this
module keeps a fast always-on smoke so `pytest benchmarks/` exercises
both planes end-to-end and the regression gate still sees a curve.
"""

import pytest

from conftest import emit
from repro.bench import connections

SCI_COUNTS = (4, 16)
HPI_COUNTS = (4, 16)


@pytest.fixture(scope="module", autouse=True)
def results():
    results = connections.run_connections_bench(
        sci_counts=SCI_COUNTS,
        hpi_counts=HPI_COUNTS,
        setup_budget=30.0,
        transfer_budget=60.0,
        isolate=False,
        min_visits=64,
    )
    emit(connections.format_results(results))
    return results


def test_no_point_collapses_at_smoke_scale(results):
    for interface in ("sci", "hpi"):
        for plane, sweep in results[interface].items():
            for count, point in sweep.items():
                assert not point["collapsed"], (interface, plane, count)


def test_both_planes_carry_traffic(results):
    for plane in ("event", "threaded"):
        for point in results["sci"][plane].values():
            assert point["msgs_per_sec"] > 0


def test_every_connection_was_visited(results):
    # At smoke fleet sizes the active window covers the whole fleet, so
    # each point must complete at least one visit per live connection.
    for interface in ("sci", "hpi"):
        for sweep in results[interface].values():
            for point in sweep.values():
                msgs = connections.SCI_VISIT_MSGS if interface == "sci" \
                    else connections.HPI_VISIT_MSGS
                assert point["messages"] >= point["live"] * msgs
