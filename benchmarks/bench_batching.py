"""Vectored data path vs per-frame: throughput and control-plane cost.

Not a paper figure — batching is this repo's hot-path optimisation —
but persisted like one so CI's bench_compare gate catches regressions
in either the speedup or the control-PDU reduction.
"""

import pytest

from conftest import emit, persist
from repro.bench import batching


@pytest.fixture(scope="module", autouse=True)
def results():
    results = batching.run_batching_bench()
    emit(batching.format_results(results))
    persist(
        "batching",
        results,
        config={
            "messages": batching.DEFAULT_MESSAGES,
            "message_bytes": batching.DEFAULT_MESSAGE_BYTES,
            "batch_max": 64,
        },
    )
    return results


def test_batched_path_is_faster(results):
    # The acceptance bar is 1.5x over the pre-batching baseline; the
    # per-frame mode here IS that baseline path, so demand a real gap
    # while leaving headroom for loaded CI runners.
    assert results["speedup_throughput"] > 1.1


def test_credit_pdus_cut_at_least_4x(results):
    # Count-based, not timing-based: deterministic on any machine.
    assert (
        results["unbatched"]["credit_pdus_per_msg"]
        >= 4 * results["batched"]["credit_pdus_per_msg"]
    )


def test_batched_mode_actually_batches(results):
    assert results["batched"]["batched_sends"] > 0
    assert results["unbatched"]["batched_sends"] == 0


def test_benchmark_batched_transfer(benchmark_or_skip, results):
    benchmark_or_skip(
        lambda: batching.bench_mode(batch_max=64, messages=2)
    )


@pytest.fixture
def benchmark_or_skip(request):
    """pytest-benchmark when available; plain call otherwise."""
    benchmark = request.getfixturevalue("benchmark") if (
        request.config.pluginmanager.hasplugin("benchmark")
    ) else (lambda fn: fn())
    return benchmark
