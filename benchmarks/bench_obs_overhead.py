"""Observability overhead: tracing + telemetry tax on the hot path.

Not a paper figure — the telemetry plane is this repo's cluster-
debugging subsystem — but persisted like one so CI's bench_compare gate
catches the observability tax creeping past its ≤5% budget, and so the
never-charged invariant (zero telemetry bytes on data-plane budget
sites under 2x overload) is re-proven on every run.
"""

import pytest

from conftest import emit, persist
from repro.bench import obs_overhead


@pytest.fixture(scope="module", autouse=True)
def results():
    results = obs_overhead.run_obs_overhead_bench()
    emit(obs_overhead.format_results(results))
    persist(
        "obs_overhead",
        results,
        config={
            "messages": obs_overhead.DEFAULT_MESSAGES,
            "message_bytes": obs_overhead.DEFAULT_MESSAGE_BYTES,
            "repeats": obs_overhead.DEFAULT_REPEATS,
            "telemetry_interval_s": obs_overhead.TELEMETRY_INTERVAL_S,
        },
    )
    return results


def test_overhead_within_budget(results):
    # The acceptance bar is ≤5%; interleaved best-of-N keeps the
    # measurement within ±3% on a quiet host, so 7.5% here leaves
    # headroom for loaded CI runners without masking a real tax.
    assert results["overhead_pct"] <= 7.5


def test_observability_actually_ran(results):
    # Guard against "zero overhead because nothing was on".
    on = results["obs_on"]
    assert on["trace_events"] > 0
    assert on["recorder_events"] > 0
    assert on["telemetry_snapshots"] > 0
    assert on["collector_nodes"] >= 1


def test_zero_telemetry_bytes_charged_under_overload(results):
    # Count-based, not timing-based: deterministic on any machine.
    overload = results["overload"]
    assert overload["telemetry_bytes_charged"] == 0
    assert overload["telemetry_exempt_bytes"] > 0
    assert overload["budget_sites"] == sorted(
        set(overload["budget_sites"]) & {"send", "reassembly", "delivery"}
    )


def test_control_plane_never_shed_under_overload(results):
    overload = results["overload"]
    assert overload["shed_control_pdus"] == 0
    assert overload["collector_snapshots"] > 0


def test_benchmark_observed_transfer(benchmark_or_skip, results):
    benchmark_or_skip(
        lambda: obs_overhead.bench_transfer(True, messages=2, repeats=1)
    )


@pytest.fixture
def benchmark_or_skip(request):
    """pytest-benchmark when available; plain call otherwise."""
    benchmark = request.getfixturevalue("benchmark") if (
        request.config.pluginmanager.hasplugin("benchmark")
    ) else (lambda fn: fn())
    return benchmark
