"""Overload protection under offered load: bounded memory past
saturation, admission waits instead of queue growth, microsecond
fail-fast rejection.  Not a paper figure — the pressure subsystem is
this repo's extension — but persisted like one so regressions show up
in CI.
"""

import pytest

from conftest import emit, persist
from repro.bench import overload


@pytest.fixture(scope="module", autouse=True)
def results():
    results = overload.run_overload_bench(duration_s=1.2)
    emit(overload.format_results(results))
    persist(
        "overload",
        results,
        config={
            "consumer_delay_s": overload.CONSUMER_DELAY_S,
            "payload_bytes": overload.PAYLOAD_BYTES,
            "tx_node_bytes": overload.TX_NODE_BYTES,
            "rx_node_bytes": overload.RX_NODE_BYTES,
            "rx_delivery_quota": overload.RX_DELIVERY_QUOTA,
        },
    )
    return results


def _point(results, label):
    return next(p for p in results["load_points"] if p["label"] == label)


def test_all_load_points_deliver_everything(results):
    for point in results["load_points"]:
        assert point["received"] == point["sent"], point["label"]


def test_overload_keeps_memory_bounded(results):
    # The entire purpose of the subsystem: 2x offered load must not
    # push budget occupancy past the configured ceilings.
    point = _point(results, "2x")
    assert point["tx_peak_used"] <= point["tx_node_bytes"]
    assert point["rx_peak_used"] <= point["rx_node_bytes"]


def test_overload_engages_backpressure_not_shedding(results):
    # Block policy: past saturation the sender waits (admission gate,
    # credit stalls); nothing is shed and the control plane never is.
    point = _point(results, "2x")
    assert point["admission_waits"] > 0
    assert point["fc_credit_stalls"] > 0
    assert point["shed_control_pdus"] == 0
    for p in results["load_points"]:
        assert p["shed_control_pdus"] == 0, p["label"]


def test_underload_is_untouched_by_pressure(results):
    # At half capacity the gate must be invisible: no waits, no stalls.
    point = _point(results, "0.5x")
    assert point["admission_waits"] == 0
    assert point["received"] == point["sent"]


def test_fail_fast_rejects_in_microseconds(results):
    assert results["fail_fast"]["median_reject_ms"] < 1.0


def test_benchmark_fail_fast(benchmark_or_skip, results):
    benchmark_or_skip(lambda: overload.bench_fail_fast(attempts=50))


@pytest.fixture
def benchmark_or_skip(request):
    """pytest-benchmark when available; plain call otherwise."""
    benchmark = request.getfixturevalue("benchmark") if (
        request.config.pluginmanager.hasplugin("benchmark")
    ) else (lambda fn: fn())
    return benchmark
