"""Figure 11: NCS overhead ratio to the native socket.

Primary series: the simulated Solaris curves (Qthread/Pthread), which
reproduce the paper's 2.4-2.8x-decaying-to-1 shape.  Supplementary: the
live loopback measurement (today's loopback baseline is memcpy-speed, so
its ratio cannot decay the same way; see EXPERIMENTS.md).
"""

import pytest

from conftest import emit, persist
from repro.bench import fig11


@pytest.fixture(scope="module", autouse=True)
def simulated(request):
    results = fig11.run_simulated()
    emit(fig11.format_simulated(results))
    return results


@pytest.fixture(scope="module", autouse=True)
def live(request, simulated):
    results = fig11.run(sizes=[1, 1024, 16384, 65536], iterations=20)
    emit(fig11.format_results(results))
    persist(
        "fig11",
        {"simulated_ratio": simulated, "live_us": results},
        config={"live_sizes": [1, 1024, 16384, 65536], "iterations": 20},
    )
    return results


def test_fig11_shape(simulated):
    assert 2.0 < simulated["qthread"][1] < 3.0
    assert simulated["qthread"][65536] < 1.1


def test_fig11_live_overhead_exists(live):
    # The threaded path must cost more than the raw socket at 1 byte.
    assert live["threaded_ratio"][1] > 1.0
    # And the bypass variant must cut that overhead (the §4.2 argument).
    assert live["bypass_ratio"][1] < live["threaded_ratio"][1] * 1.05


def test_fig11_simulated_generation(benchmark, simulated):
    benchmark(fig11.run_simulated)
