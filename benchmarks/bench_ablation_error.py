"""Ablation: error control algorithms vs loss rate."""

import pytest

from conftest import emit, persist
from repro.bench.ablations import error_control_sweep, format_error_sweep, _transfer_time

KB = 1024


@pytest.fixture(scope="module", autouse=True)
def sweep(request):
    results = error_control_sweep()
    emit(format_error_sweep(results))
    persist("ablation_error_control", {"error_control": results})
    return results


def test_selective_repeat_wins_under_loss(sweep):
    lossy = sweep[2e-3]
    assert lossy["selective_repeat"]["time_ms"] <= lossy["go_back_n"]["time_ms"]
    assert (
        lossy["selective_repeat"]["retransmitted_sdus"]
        < lossy["go_back_n"]["retransmitted_sdus"]
    )


@pytest.mark.parametrize("algorithm", ["selective_repeat", "go_back_n", "none"])
def test_transfer_256k_lossy(benchmark, algorithm):
    benchmark(
        lambda: _transfer_time(
            256 * KB, error_control=algorithm, cell_loss_rate=2e-3, seed=11
        )
    )
