"""Tour of the simulation substrate: ATM network, NCS-in-virtual-time,
and the paper's Figure 12/13 echo comparison.

Run:  python examples/simulation_tour.py
"""

from repro.atm import AtmNetwork, cells_for_frame
from repro.baselines import SYSTEMS, echo_roundtrip
from repro.simnet import (
    AtmLinkModel,
    RS6000_AIX41,
    SUN4_SUNOS55,
    SimHost,
    Simulator,
)
from repro.simnet.ncs_sim import connect_pair


def atm_network_demo() -> None:
    """Cells through real switches: signaling, VC tables, AAL5."""
    print("== ATM network: 2 hosts, 2 switches, signaled VC ==")
    sim = Simulator()
    net = AtmNetwork(sim)
    net.add_host("workstation-a")
    net.add_host("workstation-b")
    net.add_switch("asx-100")
    net.add_switch("asx-200")
    net.link("workstation-a", "asx-100", delay=5e-6)
    net.link("asx-100", "asx-200", delay=20e-6)
    net.link("workstation-b", "asx-200", delay=5e-6)

    vc = net.setup_vc("workstation-a", "workstation-b")
    print(f"  signaling installed {len(vc.hops)} hop translations; "
          f"src stamps VPI/VCI {vc.src_vpi_vci}")

    frame = b"Q" * 8192
    arrivals = []
    net.hosts["workstation-b"].on_frame = (
        lambda vpi, vci, fr: arrivals.append((sim.now, len(fr)))
    )
    net.hosts["workstation-a"].send_frame(*vc.src_vpi_vci, frame)
    sim.run()
    t, size = arrivals[0]
    print(f"  {size} B frame = {cells_for_frame(size)} cells, "
          f"delivered at t={t*1e6:.1f} us (virtual)")
    print(f"  switch stats: {net.switches['asx-100'].stats()}")


def protocol_in_virtual_time() -> None:
    """The real selective-repeat engines recovering from cell loss."""
    print("\n== NCS engines over a lossy virtual ATM link ==")
    sim = Simulator()
    a, b = connect_pair(
        sim,
        AtmLinkModel(sim, cell_loss_rate=0.001, seed=42),
        AtmLinkModel(sim, cell_loss_rate=0.001, seed=43),
        retransmit_timeout=0.02,
    )
    message = bytes(range(256)) * 1024  # 256 KB
    done = a.send(message)
    sim.run()
    print(f"  delivered intact: {b.delivered[0] == message}")
    print(f"  completion at t={done.value*1e3:.2f} ms; "
          f"{a.ec_sender.retransmitted_sdus} SDUs retransmitted; "
          f"{b.ec_receiver.acks_sent} bitmap ACKs on the control link")


def figure12_excerpt() -> None:
    """One row of Figure 12/13: 64 KB echo on each testbed."""
    print("\n== 64 KB echo roundtrips (ms, virtual) ==")
    testbeds = {
        "SUN-4 <-> SUN-4  ": (SUN4_SUNOS55, SUN4_SUNOS55),
        "RS6000 <-> RS6000": (RS6000_AIX41, RS6000_AIX41),
        "SUN-4 <-> RS6000 ": (SUN4_SUNOS55, RS6000_AIX41),
    }
    for label, (pa, pb) in testbeds.items():
        row = {}
        for system, model_cls in SYSTEMS.items():
            sim = Simulator()
            rt = echo_roundtrip(
                sim,
                model_cls(),
                SimHost(sim, "a", pa),
                SimHost(sim, "b", pb),
                AtmLinkModel(sim),
                AtmLinkModel(sim),
                65536,
            )
            row[system] = rt * 1e3
        cells = "  ".join(f"{name}={value:7.2f}" for name, value in row.items())
        winner = min(row, key=row.get)
        print(f"  {label}: {cells}   fastest: {winner}")


def main() -> None:
    atm_network_demo()
    protocol_in_virtual_time()
    figure12_excerpt()


if __name__ == "__main__":
    main()
