"""The paper's Figure 2 scenario: one application, three media, three QOS.

An interactive multimedia session carries video, audio and text between
participants.  Per the paper: "programmers can select no flow or error
control for the audio and video connections, while they select the
appropriate flow control or error control algorithms to achieve a
reliable connection for data transfer."

We open three connections between the same two nodes over the (lossy)
ACI and show: media frames flow with minimal latency and tolerate loss;
the text channel is slower per message but loses nothing.

Run:  python examples/multimedia.py
"""

from repro import ConnectionConfig, Node


def main() -> None:
    sender = Node("participant-1")
    receiver = Node("participant-2")

    # ~0.5% frame loss injected on the outgoing media path: a congested
    # ATM virtual circuit dropping cells.
    video_config = ConnectionConfig(
        interface="aci",
        flow_control="rate",           # CBR-style pacing, no feedback
        error_control="none",          # late video is worse than lost video
        rate_pps=2000.0,
        loss_rate=0.05,
        fault_seed=7,
    )
    audio_config = ConnectionConfig(
        interface="aci",
        flow_control="none",           # lowest latency of all
        error_control="none",
        loss_rate=0.05,
        fault_seed=11,
    )
    text_config = ConnectionConfig(
        interface="aci",
        flow_control="credit",
        error_control="selective_repeat",  # error-free delivery required
        loss_rate=0.05,
        fault_seed=13,
        retransmit_timeout=0.05,
    )

    video = sender.connect(receiver.address, video_config, peer_name="p2")
    video_in = receiver.accept(timeout=5.0)
    audio = sender.connect(receiver.address, audio_config, peer_name="p2")
    audio_in = receiver.accept(timeout=5.0)
    text = sender.connect(receiver.address, text_config, peer_name="p2")
    text_in = receiver.accept(timeout=5.0)

    frames = 200
    for index in range(frames):
        video.send(b"V" * 1400)            # one video frame slice
        audio.send(b"A" * 160)             # one 20 ms audio packet
    for line in range(20):
        text.send(f"chat line {line}".encode(), wait=True, timeout=10.0)

    # Drain what arrived.
    video_got = sum(1 for _ in iter(lambda: video_in.recv(timeout=0.3), None))
    audio_got = sum(1 for _ in iter(lambda: audio_in.recv(timeout=0.3), None))
    text_got = [text_in.recv(timeout=1.0) for _ in range(20)]

    print(f"video frames delivered: {video_got}/{frames} "
          f"(loss tolerated by design)")
    print(f"audio packets delivered: {audio_got}/{frames}")
    print(f"text lines delivered: {sum(1 for t in text_got if t)}/20 "
          f"(must be 20/20 — selective repeat repaired the stream)")
    print("text connection stats:", text.stats())

    assert sum(1 for t in text_got if t) == 20, "reliable channel lost data!"

    sender.close()
    receiver.close()


if __name__ == "__main__":
    main()
