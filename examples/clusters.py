"""The paper's Figure 3 scenario: heterogeneous clusters, per-cluster
interfaces.

Three homogeneous "clusters" (here: groups of nodes sharing an HPI
fabric) each use the interface their platform supports best — HPI
inside the tightly-coupled cluster, SCI between clusters — and group
communication spans all of it.

Run:  python examples/clusters.py
"""

from repro import ConnectionConfig, Node, NodeConfig
from repro.interfaces.hpi import HpiFabric
from repro.multicast import GroupManager


def main() -> None:
    # Cluster 1: two nodes on one HPI fabric (same "backplane").
    fabric1 = HpiFabric("cluster-1")
    c1_head = Node(NodeConfig(name="c1-head", hpi_fabric=fabric1))
    c1_work = Node(NodeConfig(name="c1-work", hpi_fabric=fabric1))

    # Cluster 2: likewise.
    fabric2 = HpiFabric("cluster-2")
    c2_head = Node(NodeConfig(name="c2-head", hpi_fabric=fabric2))
    c2_work = Node(NodeConfig(name="c2-work", hpi_fabric=fabric2))

    # Intra-cluster traffic rides the High Performance Interface.
    hpi = ConnectionConfig(interface="hpi", flow_control="none",
                           error_control="none")
    intra1 = c1_head.connect(c1_work.address, hpi, peer_name="c1-work")
    c1_accepted = c1_work.accept(timeout=5.0)
    intra2 = c2_head.connect(c2_work.address, hpi, peer_name="c2-work")
    c2_accepted = c2_work.accept(timeout=5.0)

    intra1.send(b"cluster-1 local work unit", wait=True)
    intra2.send(b"cluster-2 local work unit", wait=True)
    print("c1 intra-cluster (HPI):", c1_accepted.recv(timeout=5.0))
    print("c2 intra-cluster (HPI):", c2_accepted.recv(timeout=5.0))

    # Inter-cluster traffic uses the portable Socket interface.
    sci = ConnectionConfig(interface="sci")
    inter = c1_head.connect(c2_head.address, sci, peer_name="c2-head")
    inter_accepted = c2_head.accept(timeout=5.0)
    inter.send(b"cross-cluster result exchange", wait=True)
    print("inter-cluster (SCI):", inter_accepted.recv(timeout=5.0))

    # Group communication across the whole environment.
    managers = {
        node.name: GroupManager(node)
        for node in (c1_head, c1_work, c2_head, c2_work)
    }
    managers["c1-head"].create("all-heads-and-workers")
    for name in ("c1-work", "c2-head", "c2-work"):
        managers[name].join("all-heads-and-workers", c1_head.address)

    managers["c1-head"].multicast(
        "all-heads-and-workers", b"global barrier follows", wait=True
    )
    for name in ("c1-work", "c2-head", "c2-work"):
        message = managers[name].recv("all-heads-and-workers", timeout=5.0)
        print(f"{name} received multicast:", message)

    # Cross-fabric HPI must be refused: the trap interface only works
    # inside one tightly-coupled cluster (that's the point of Fig. 3).
    try:
        c1_head.connect(c2_head.address, hpi, peer_name="c2-head", timeout=3.0)
        print("ERROR: cross-cluster HPI should have been rejected")
    except Exception as exc:
        print(f"cross-cluster HPI correctly rejected: {exc}")

    for node in (c1_head, c1_work, c2_head, c2_work):
        node.close()


if __name__ == "__main__":
    main()
