"""Quickstart: two NCS nodes, one configured connection, echo traffic.

Run:  python examples/quickstart.py
"""

from repro import ConnectionConfig, Node


def main() -> None:
    # A Node is one NCS process: Master Thread, control plane, timers.
    server = Node("server")
    client = Node("client")

    # Connections carry their own QOS contract (paper §3): pick the flow
    # control, error control, interface and SDU size per connection.
    config = ConnectionConfig(
        interface="sci",                 # portable TCP path
        flow_control="credit",           # the paper's default (Fig. 7)
        error_control="selective_repeat",  # the paper's default (Fig. 5)
        sdu_size=4096,
    )
    conn = client.connect(server.address, config, peer_name="server")
    peer = server.accept(timeout=5.0)

    # NCS_send / NCS_recv.  wait=True blocks until the ACK bitmap clears.
    conn.send(b"hello from the client", wait=True, timeout=5.0)
    print("server got:", peer.recv(timeout=5.0))

    peer.send(b"hello back", wait=True, timeout=5.0)
    print("client got:", conn.recv(timeout=5.0))

    # Larger than one SDU: segmentation/reassembly is transparent.
    big = bytes(range(256)) * 512  # 128 KB -> 32 SDUs
    conn.send(big, wait=True, timeout=10.0)
    echoed = peer.recv(timeout=5.0)
    print(f"128 KB message intact: {echoed == big}")
    print("connection stats:", conn.stats())

    client.close()
    server.close()


if __name__ == "__main__":
    main()
