"""Cross-node tracing demo: one message, two clocks, one timeline.

Two traced nodes exchange a message while heartbeat failure detectors
run in both directions (each round trip doubles as an NTP-style clock
sample).  Each node streams its events to its own JSONL file — exactly
what two separate machines would produce — and the trace merger then
estimates the clock offset between them and rebases both files onto one
timeline, written as a single Chrome ``trace_event`` file.

Run:  python examples/two_node_trace.py
Then load ncs_cluster_trace.json in chrome://tracing or
https://ui.perfetto.dev — the message's send/transmit (alice lane) and
deliver/ack_tx (bob lane) events sit on one clock-aligned timeline,
tied together by an async span per trace id.
"""

import time

from repro import ConnectionConfig, Node
from repro.core.config import NodeConfig
from repro.core.heartbeat import FailureDetector
from repro.obs.telemetry import merge_traces, trace_spans, write_merged_chrome
from repro.util.trace import JsonlSink

ALICE_TRACE = "ncs_trace_alice.jsonl"
BOB_TRACE = "ncs_trace_bob.jsonl"
MERGED = "ncs_cluster_trace.json"


def main() -> None:
    # trace=True switches each node's tracer on; a per-node JSONL sink
    # mimics two machines writing to their own local disks.
    alice = Node(NodeConfig(name="alice", trace=True))
    bob = Node(NodeConfig(name="bob", trace=True))
    alice.tracer.add_sink(JsonlSink(ALICE_TRACE))
    bob.tracer.add_sink(JsonlSink(BOB_TRACE))

    # Heartbeats in both directions: every reply carries the echoed
    # t_send plus the peer's t_reply stamp, giving each side min-RTT
    # filterable clock-offset samples (emitted as clock.offset events).
    fd_alice = FailureDetector(alice, interval=0.02, suspect_after=1.0)
    fd_bob = FailureDetector(bob, interval=0.02, suspect_after=1.0)
    fd_alice.monitor(bob.address)
    fd_bob.monitor(alice.address)

    config = ConnectionConfig(
        interface="sci",
        flow_control="credit",
        error_control="selective_repeat",
        sdu_size=4096,
    )
    conn = alice.connect(bob.address, config, peer_name="bob")
    peer = bob.accept(timeout=5.0)

    # One traced message: big enough to need several SDUs so the
    # transmit events show real segmentation.
    payload = b"traced hello" * 1500  # ~18 KB -> 5 SDUs
    conn.send(payload, wait=True, timeout=5.0)
    received = peer.recv(timeout=5.0)
    assert received == payload

    time.sleep(0.3)  # a few more heartbeat rounds for clock samples

    fd_alice.stop()
    fd_bob.stop()
    alice.close()
    bob.close()

    # ------------------------------------------------------------------
    # Offline merge: two per-node JSONL files -> one cluster timeline.
    # ------------------------------------------------------------------
    merged = merge_traces({"alice": ALICE_TRACE, "bob": BOB_TRACE},
                          reference="alice")
    write_merged_chrome(merged, MERGED)

    traces = sorted({e["trace"] for e in merged if e.get("trace")})
    print(f"merged {len(merged)} events from 2 nodes -> {MERGED}")
    for trace in traces:
        span = trace_spans(merged, trace)
        start, end = span[0], span[-1]
        hops = ", ".join(
            f"{e['node']}:{e['category']}.{e['name']}" for e in span
        )
        print(
            f"trace 0x{trace:x}: {len(span)} events,"
            f" {(end['ts'] - start['ts']) * 1e3:.3f} ms end-to-end"
        )
        print(f"  {hops}")


if __name__ == "__main__":
    main()
