"""Computation/communication overlap — the paper's §4.1 experiment, live.

The Figure 9 test code: repeatedly ``NCS_send(msgsize)`` then compute,
on both thread packages.  On the kernel-level package the Send Thread's
blocking I/O overlaps the computation; on the user-level package a
blocking call stalls every thread, so NCS's user-level build must poll
with non-blocking calls and ``NCS_thread_yield`` instead.

This example runs Compute Threads on each package and reports how much
wall time the overlap saves.

Run:  python examples/overlap.py
"""

import time

from repro import ConnectionConfig, Node, NodeConfig, NCS_thread_spawn


def run_workload(thread_package: str, iterations: int = 20,
                 msg_size: int = 256 * 1024) -> float:
    """Send+compute loop on the given package; returns elapsed seconds."""
    sender = Node(NodeConfig(name=f"ov-snd-{thread_package}",
                             thread_package=thread_package))
    receiver = Node(NodeConfig(name=f"ov-rcv-{thread_package}"))
    conn = sender.connect(
        receiver.address,
        ConnectionConfig(interface="sci", flow_control="none",
                         error_control="none", sdu_size=32768),
        peer_name="rcv",
    )
    peer = receiver.accept(timeout=5.0)

    # Drain receiver so the sender is never backpressured by our test.
    drained = {"count": 0}

    def drain():
        while drained["count"] < iterations:
            if peer.recv(timeout=0.5) is not None:
                drained["count"] += 1

    NCS_thread_spawn(receiver, drain, name="drain")

    payload = b"z" * msg_size

    def compute(ms: float) -> None:
        # Pure-CPU spin; this is the work that overlap hides I/O behind.
        deadline = time.perf_counter() + ms / 1e3
        while time.perf_counter() < deadline:
            pass

    start = time.perf_counter()
    for _ in range(iterations):
        conn.send(payload)  # asynchronous: hands off to the Send Thread
        compute(10.0)
    # Wait for everything to actually arrive.
    while drained["count"] < iterations:
        time.sleep(0.01)
    elapsed = time.perf_counter() - start

    sender.close()
    receiver.close()
    return elapsed


def main() -> None:
    for pkg in ("kernel", "user"):
        elapsed = run_workload(pkg)
        print(f"{pkg:>6}-level package: {elapsed*1e3:7.1f} ms "
              f"for 20 x (256 KB send + 10 ms compute)")
    print("\nkernel-level should be close to the pure-compute floor "
          "(200 ms): transmission hides behind computation.")


if __name__ == "__main__":
    main()
