"""Collective operations and failure detection — a mini SPMD program.

Four workers share a group; the coordinator scatters work, everyone
computes, results come back through allreduce, a barrier closes the
round, and a failure detector watches the ensemble over the control
plane.

Run:  python examples/collectives.py
"""

import threading

from repro import FailureDetector, Node
from repro.multicast import Collective, GroupManager, fold_sum_u64


def spmd_round(index, manager, collective, chunks, results):
    """The program every member runs, in lockstep (SPMD style)."""
    # Coordinator supplies the scatter data; everyone receives a chunk.
    my_chunk = collective.scatter(
        "ensemble", chunks if index == 0 else None
    )
    value = sum(my_chunk)  # the "computation": sum my chunk's bytes
    total = collective.allreduce(
        "ensemble", value.to_bytes(8, "big"), fold_sum_u64
    )
    manager.barrier("ensemble", timeout=10.0)
    results[index] = int.from_bytes(total, "big")


def main() -> None:
    nodes = [Node(f"worker-{i}") for i in range(4)]
    managers = [GroupManager(node) for node in nodes]
    collectives = [Collective(manager) for manager in managers]

    managers[0].create("ensemble")
    for manager in managers[1:]:
        manager.join("ensemble", nodes[0].address)

    # The coordinator also watches everyone's liveness.
    detector = FailureDetector(nodes[0], interval=0.05, suspect_after=0.5)
    for node in nodes[1:]:
        detector.monitor(node.address)

    # Root-side scatter data: each member gets a distinct byte slice.
    chunks = {
        manager.me: bytes(range(10 * i, 10 * i + 10))
        for i, manager in enumerate(managers)
    }
    expected = sum(sum(chunk) for chunk in chunks.values())

    results = [None] * 4
    threads = [
        threading.Thread(
            target=spmd_round,
            args=(index, managers[index], collectives[index], chunks, results),
        )
        for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(20.0)

    print(f"allreduce results per member: {results}")
    print(f"expected global sum:          {expected}")
    assert results == [expected] * 4

    print(f"live members per detector:    {len(detector.alive_peers()) + 1}/4")
    detector.stop()
    for node in nodes:
        node.close()
    print("OK")


if __name__ == "__main__":
    main()
