"""A configured NCS connection: engines, data-transfer threads, primitives.

One ``Connection`` object lives at each end.  In the default *threaded*
mode it owns three threads, mirroring the paper's data plane:

* the **protocol thread** hosts the sender-side Error Control and Flow
  Control engines (the paper's EC/FC threads for this connection),
  driven by an event channel carrying send requests, control PDUs and
  timer ticks;
* the **Send Thread** drains the flow-controlled transmit queue onto the
  data connection (Table I's context-switch boundary sits between
  ``NCS_send`` and this thread);
* the **Receive Thread** pulls frames off the data connection and runs
  the receiver-side FC/EC engines, emitting credits and ACK bitmaps onto
  the *control* connection and completed messages into the receive
  queue.  On the user-level thread package it polls ``try_recv`` and
  yields, never blocking the process (§4.1).

In *bypass* mode (§4.2's procedure variant) no per-connection threads
exist: the same engines run inline inside ``send``/``recv``.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional

from collections import deque

from repro.core.config import ConnectionConfig
from repro.core.errors import ConnectionClosedError, NCSOverloaded, NCSTimeout
from repro.core.handles import SendHandle, SendStatus
from repro.errorcontrol import make_error_control
from repro.flowcontrol import make_flow_control
from repro.obs.xray import XRAY_SPAN_MARK
from repro.interfaces.base import (
    CommInterface,
    FaultInjector,
    FaultyInterface,
    InterfaceClosed,
)
from repro.protocol.effects import Effects
from repro.protocol.headers import HeaderError, Sdu
from repro.protocol.pdus import (
    AckPdu,
    ClosePdu,
    ControlPdu,
    CreditPdu,
    CreditResyncPdu,
    CumAckPdu,
)
from repro.util.trace import new_trace_id

_STOP = object()


class Connection:
    """One end of an established NCS point-to-point connection."""

    def __init__(
        self,
        node,
        conn_id: int,
        peer_name: str,
        peer_link,
        config: ConnectionConfig,
        interface: CommInterface,
    ):
        self.node = node
        self.conn_id = conn_id
        self.peer_name = peer_name
        self.peer_link = peer_link
        self.config = config
        self._recorder = node.recorder
        fault_plan = config.fault_plan
        if fault_plan is None:
            from repro.faults.plan import plan_from_env

            fault_plan = plan_from_env()
        if fault_plan:
            # Full fault schedule: wraps the data interface (never the
            # control links) and reports every injected fault to the
            # flight recorder so dumps show cause alongside symptom.
            from repro.faults.injector import (
                PlannedFaultyInterface,
                PlannedInjector,
            )

            def _record_fault(kind: str, **detail) -> None:
                self._recorder.record("fault", kind, conn=conn_id, **detail)

            interface = PlannedFaultyInterface(
                interface,
                PlannedInjector(
                    fault_plan, clock=node.clock.now, on_fault=_record_fault
                ),
            )
        elif config.loss_rate or config.corrupt_rate:
            interface = FaultyInterface(
                interface,
                FaultInjector(
                    loss_rate=config.loss_rate,
                    corrupt_rate=config.corrupt_rate,
                    seed=config.fault_seed,
                ),
            )
        self.interface = interface
        self._pkg = node.pkg
        self._clock = node.clock
        self._tracer = node.tracer
        #: Optional OverheadProfiler recording receive-path stage times.
        self.profiler = None
        self._metrics = node.metrics
        if self._metrics is not None:
            from repro.obs.registry import SIZE_BUCKETS

            labels = {
                "node": node.name,
                "conn": str(conn_id),
                "peer": peer_name,
            }
            self._h_send_size = self._metrics.histogram(
                "ncs_send_message_bytes", buckets=SIZE_BUCKETS, **labels
            )
            self._h_recv_size = self._metrics.histogram(
                "ncs_recv_message_bytes", buckets=SIZE_BUCKETS, **labels
            )
        else:
            self._h_send_size = None
            self._h_recv_size = None

        ec_options = {
            "retransmit_timeout": config.retransmit_timeout,
            "max_retries": config.max_retries,
        }
        if config.error_control == "go_back_n":
            ec_options["window"] = config.gbn_window
        self.ec_sender, self.ec_receiver = make_error_control(
            config.error_control, conn_id, config.sdu_size, **ec_options
        )
        fc_options = {}
        if config.flow_control == "credit":
            fc_options = {
                "initial_credits": config.initial_credits,
                "max_credits": config.max_credits,
            }
            if config.fc_resync_timeout is not None:
                fc_options["resync_timeout"] = config.fc_resync_timeout
        elif config.flow_control == "window":
            fc_options = {"window_size": config.window_size}
        elif config.flow_control == "rate":
            fc_options = {"rate_pps": config.rate_pps, "burst": config.rate_burst}
        self.fc_sender, self.fc_receiver = make_flow_control(
            config.flow_control, conn_id, **fc_options
        )

        # Latency X-ray (repro.obs.xray).  When the node-level recorder
        # is absent, every hot path below pays exactly one `is not None`
        # branch; when sampling is on, unsampled messages pay one counter
        # increment and one modulo — no allocation either way.
        self._xray = getattr(node, "xray", None)
        self._xray_ids = itertools.count(1)
        #: msg_id -> stamp dict for sampled in-flight sends.  Always a
        #: dict (guards check truthiness, which is falsy when idle).
        self._xray_send_spans: dict = {}
        #: msg_id -> stamp dict for sampled inbound mid-reassembly.
        self._xray_recv_spans: dict = {}
        #: id(message) -> stamp dict parked in recv_queue with it.
        self._xray_delivery: dict = {}

        self._msg_ids = itertools.count(1)
        self._handles: dict[int, SendHandle] = {}
        self._handles_lock = threading.Lock()
        #: msg_id -> trace_id for in-flight traced sends; entries live
        #: exactly as long as the send handle (cleared on completion).
        self._trace_ids: dict[int, int] = {}
        self.recv_queue = self._pkg.channel()
        self._closed = False
        self._peer_closed = False

        #: Next deadline at which the sender EC needs a timer callback.
        self._ec_timer_at: Optional[float] = None
        #: Next time rate-based flow control can release more packets.
        self._fc_ready_at: Optional[float] = None
        #: Receiver-side GC deadline (unreliable connections).
        self._recv_gc_at: Optional[float] = None

        # Statistics.  The hot counters are read-modify-write from
        # several threads at once (any number of app threads in send(),
        # the receive thread, the watchdog reading) — a dedicated lock
        # keeps increments from losing updates under contention.
        self._stats_lock = threading.Lock()
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_malformed = 0
        #: Sends the error control engine confirmed delivered.
        self.messages_completed = 0
        #: Per-SDU acknowledgment PDUs superseded within one receive
        #: batch (a later ACK for the same message already carried the
        #: final bitmap) and therefore never sent.
        self.acks_deduped = 0

        # Blocked-receiver bookkeeping for the health watchdog: each
        # parked recv() registers its own start time so the "oldest
        # waiter" clock survives any *other* waiter leaving.
        self._waiters_lock = threading.Lock()
        self._waiter_tokens = itertools.count(1)
        self._recv_wait_starts: dict[int, float] = {}

        # Overload protection: every payload byte this connection
        # buffers is charged to the node's MemoryBudget (None when the
        # subsystem is disabled).  Control PDUs are never charged.
        self._budget = getattr(node, "pressure", None)
        pressure_cfg = getattr(node, "pressure_cfg", None)
        self._admission = config.admission or (
            pressure_cfg.policy if pressure_cfg is not None else "block"
        )
        self._delivery_quota = (
            pressure_cfg.delivery_quota_bytes if pressure_cfg is not None else 0
        )
        self._resume_below = int(
            self._delivery_quota
            * (pressure_cfg.resume_fraction if pressure_cfg is not None else 0.5)
        )
        self._pressure_lock = threading.Lock()
        #: FIFO of (enqueue_ts, nbytes) mirroring recv_queue, for
        #: shed-oldest victim selection and delivery-site release.
        self._delivery_log: deque = deque()
        self._credit_gate_closed = False
        self._withheld_credits = 0
        self.admission_rejections = 0
        self.admission_waits = 0
        self.deliveries_shed = 0
        self.credits_withheld = 0
        self.credit_pdus_withheld = 0
        self.slow_consumer_trips = 0
        self.resync_requests_answered = 0

        self._event_endpoint = None
        if config.mode == "threaded":
            self._proto_chan = self._pkg.channel()
            self._send_chan = self._pkg.channel()
            self._threads = [
                self._pkg.spawn(self._proto_loop, name=f"proto-{conn_id}"),
                self._pkg.spawn(self._send_loop, name=f"send-{conn_id}"),
                self._pkg.spawn(self._recv_loop, name=f"recv-{conn_id}"),
            ]
        else:
            # Bypass/event: engines run inline; one lock serializes
            # sender-side engine access across app thread / control
            # reader / timer (and, in event mode, the selector loop).
            self._engine_lock = threading.Lock()
            self._recv_lock = threading.Lock()
            self._proto_chan = None
            self._send_chan = None
            self._threads = []
            if config.mode == "event":
                self._event_endpoint = node.event_loop().attach(self)

    # ------------------------------------------------------------------
    # Public primitives
    # ------------------------------------------------------------------

    def send(
        self,
        payload: bytes,
        wait: bool = False,
        timeout: Optional[float] = None,
        instrument: Optional[dict] = None,
    ) -> SendHandle:
        """NCS_send(): transmit ``payload`` on this connection.

        Returns a :class:`SendHandle`; with ``wait=True`` blocks until the
        error control engine confirms delivery (or raises on failure).
        ``instrument`` (a dict) collects per-stage timestamps for the
        Table I overhead decomposition.
        """
        if instrument is not None:
            instrument["entry"] = time.perf_counter_ns()
        span = None
        if self._xray is not None and self._xray.sampled(next(self._xray_ids)):
            span = {"entry": time.perf_counter_ns()}
        if self._closed:
            raise ConnectionClosedError(f"connection {self.conn_id} is closed")
        if self._peer_closed:
            # The transport is gone (peer Close or interface death):
            # accepting more work would only grow queues that nothing
            # will ever drain.  The recovery layer replays pending sends
            # over a fresh incarnation instead.
            raise ConnectionClosedError(
                f"connection {self.conn_id}: peer is gone (closed or transport lost)"
            )
        self._admit_send(len(payload), timeout)
        if span is not None:
            span["admitted"] = time.perf_counter_ns()
        msg_id = next(self._msg_ids)
        handle = SendHandle(msg_id, len(payload))
        trace_id = 0
        if self._tracer.enabled:
            # Cross-node trace envelope: the id allocated here rides the
            # SDU headers to the peer, where deliver/ack events adopt it.
            trace_id = new_trace_id()
        span_mark = 0
        if span is not None:
            # A sampled message always carries the trace envelope (the
            # id is allocated here even when tracing is off) so the
            # receiver recognizes it from span_id's top bit alone — no
            # wire-format change, and retransmits inherit the mark with
            # the stored SDUs.
            if not trace_id:
                trace_id = new_trace_id()
            span_mark = XRAY_SPAN_MARK | (msg_id & 0x7FFFFFFF)
            span["_trace"] = trace_id
            span["_size"] = len(payload)
            self._xray_send_spans[msg_id] = span
        with self._handles_lock:
            self._handles[msg_id] = handle
            if trace_id:
                self._trace_ids[msg_id] = trace_id
        with self._stats_lock:
            self.messages_sent += 1
            self.bytes_sent += len(payload)
        if self._h_send_size is not None:
            self._h_send_size.observe(len(payload))
        self._recorder.record(
            "data", "send", conn=self.conn_id, msg=msg_id, size=len(payload),
            trace=trace_id,
        )
        if self._tracer.enabled:
            # Data-plane trace context: the msg_id emitted here reappears
            # in the control plane when the peer's ACK/credit comes back.
            self._tracer.emit(
                "data", "send",
                conn_id=self.conn_id, msg_id=msg_id, size=len(payload),
                trace=trace_id,
            )
        if self.config.mode == "threaded":
            if instrument is not None:
                # Stamp before the put: the protocol thread may dequeue
                # the instant the request lands.
                instrument["queued"] = time.perf_counter_ns()
            if span is not None:
                span["queued"] = time.perf_counter_ns()
            self._proto_chan.put(
                ("send", msg_id, payload, instrument, trace_id, span_mark)
            )
        else:
            self._bypass_send(msg_id, payload, instrument, trace_id, span_mark)
        if instrument is not None:
            instrument["exit"] = time.perf_counter_ns()
        if wait:
            if not handle.wait(timeout):
                raise NCSTimeout(
                    f"send of message {msg_id} not confirmed within {timeout}s"
                )
        return handle

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """NCS_recv(): next complete message, or None on timeout."""
        if self.config.mode == "bypass":
            return self._bypass_recv(timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        token = self._enter_recv_wait()
        try:
            while True:
                remaining = 0.05
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        return None
                try:
                    return self._delivery_popped(
                        self.recv_queue.get(timeout=remaining)
                    )
                except TimeoutError:
                    if self._closed or self._peer_closed:
                        if self.recv_queue.empty():
                            raise ConnectionClosedError(
                                f"connection {self.conn_id} closed with no pending data"
                            ) from None
        finally:
            self._exit_recv_wait(token)

    def try_recv(self) -> Optional[bytes]:
        """Non-blocking NCS_recv variant."""
        if self.config.mode == "bypass":
            self._bypass_pump_once(blocking=False)
        ok, item = self.recv_queue.try_get()
        return self._delivery_popped(item) if ok else None

    def _enter_recv_wait(self) -> int:
        token = next(self._waiter_tokens)
        with self._waiters_lock:
            self._recv_wait_starts[token] = self._clock.now()
        return token

    def _exit_recv_wait(self, token: int) -> None:
        with self._waiters_lock:
            self._recv_wait_starts.pop(token, None)

    # ------------------------------------------------------------------
    # Overload protection: admission, delivery accounting, credit gating
    # ------------------------------------------------------------------

    def _admit_send(self, nbytes: int, timeout: Optional[float]) -> None:
        """Charge ``nbytes`` to the send site or apply the admission policy.

        ``block`` waits for room (NCSTimeout at the deadline, matching
        the NCS_recv timeout contract); ``fail-fast`` raises a typed
        :class:`NCSOverloaded` immediately; ``shed-oldest`` evicts the
        stalest queued deliveries node-wide until the reservation fits.
        """
        budget = self._budget
        if budget is None:
            return
        if budget.try_reserve("send", self.conn_id, nbytes):
            return
        policy = self._admission
        if policy == "fail-fast":
            budget.count_rejection()
            with self._stats_lock:
                self.admission_rejections += 1
            self._recorder.record(
                "pressure", "reject", conn=self.conn_id, size=nbytes
            )
            raise NCSOverloaded(
                f"connection {self.conn_id}: send of {nbytes} bytes rejected, "
                f"memory budget full",
                site="send",
                requested=nbytes,
                used=budget.used(),
                limit=budget.node_bytes,
            )
        if policy == "shed-oldest":
            if self.node.shed_for(self, nbytes):
                return
            budget.count_rejection()
            with self._stats_lock:
                self.admission_rejections += 1
            raise NCSOverloaded(
                f"connection {self.conn_id}: send of {nbytes} bytes rejected, "
                f"budget full and nothing left to shed",
                site="send",
                requested=nbytes,
                used=budget.used(),
                limit=budget.node_bytes,
            )
        # block (default)
        with self._stats_lock:
            self.admission_waits += 1
        self._recorder.record(
            "pressure", "admission_wait", conn=self.conn_id, size=nbytes
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        outcome = budget.reserve_blocking(
            "send",
            self.conn_id,
            nbytes,
            deadline=deadline,
            should_abort=lambda: self._closed or self._peer_closed,
        )
        if outcome == "ok":
            return
        if outcome == "aborted":
            raise ConnectionClosedError(
                f"connection {self.conn_id} closed while waiting for budget"
            )
        raise NCSTimeout(
            f"connection {self.conn_id}: send admission not granted within "
            f"{timeout}s (budget full)"
        )

    def _release_send_site(self, nbytes: int) -> None:
        if self._budget is not None and nbytes > 0:
            self._budget.release("send", self.conn_id, nbytes)

    def _account_delivery_put(self, nbytes: int) -> None:
        """Charge an inbound complete message parked for the application.

        Forced, not admitted: the data was already acknowledged to the
        peer, so refusing it would break exactly-once.  Crossing the
        delivery quota instead closes the credit gate — pressure
        propagates to the sender through withheld grants.
        """
        budget = self._budget
        if budget is None:
            return
        budget.force_reserve("delivery", self.conn_id, nbytes)
        with self._pressure_lock:
            self._delivery_log.append((self._clock.now(), nbytes))
            if (
                not self._credit_gate_closed
                and self._delivery_quota > 0
                and budget.site_used("delivery", self.conn_id)
                > self._delivery_quota
            ):
                self._credit_gate_closed = True
                self.slow_consumer_trips += 1
                self._recorder.record(
                    "pressure", "slow_consumer",
                    conn=self.conn_id,
                    queued=budget.site_used("delivery", self.conn_id),
                    quota=self._delivery_quota,
                )

    def _delivery_popped(self, message):
        """Release delivery-site bytes after the application consumed one."""
        if message is not None and self._xray_delivery:
            span = self._xray_delivery.pop(id(message), None)
            if span is not None and self._xray is not None:
                span["popped"] = time.perf_counter_ns()
                span["_size"] = len(message)
                self._xray.record_recv(self.conn_id, self.peer_name, span)
        budget = self._budget
        if budget is None or message is None:
            return message
        budget.release("delivery", self.conn_id, len(message))
        flush = 0
        with self._pressure_lock:
            if self._delivery_log:
                self._delivery_log.popleft()
            if (
                self._credit_gate_closed
                and budget.site_used("delivery", self.conn_id)
                <= self._resume_below
            ):
                self._credit_gate_closed = False
                flush, self._withheld_credits = self._withheld_credits, 0
        if flush:
            # Flush the withheld grants as one coalesced CreditPdu on the
            # priority lane so the sender resumes promptly.
            self._recorder.record(
                "pressure", "credit_gate_open",
                conn=self.conn_id, credits=flush,
            )
            try:
                self.node.control_send(
                    self.peer_link, CreditPdu(self.conn_id, flush)
                )
            except Exception:
                pass  # peer gone; recovery handles it
        return message

    def _gate_credit(self, pdu) -> bool:
        """Withhold a credit grant while this end is a slow consumer.

        Returns True when the PDU was absorbed (not sent).  Only
        CreditPdus are ever gated — ACKs and other control traffic
        always pass (the priority lane).
        """
        if self._budget is None or not isinstance(pdu, CreditPdu):
            return False
        with self._pressure_lock:
            if not self._credit_gate_closed:
                return False
            self._withheld_credits += pdu.credits
            self.credits_withheld += pdu.credits
            self.credit_pdus_withheld += 1
            return True

    def _answer_credit_resync(self) -> None:
        """Answer a peer's CreditResyncPdu (receiver side).

        Open gate: grant the initial allotment — the peer's pool is at
        zero, so this is the request/reply equivalent of the old
        unilateral restore.  Closed gate: the grant is withheld like any
        other (flushed when the application drains), and an explicit
        zero-credit reply keeps the peer pinned — it would otherwise
        fall back to restoring the pool itself and defeat backpressure.
        """
        self.resync_requests_answered += 1
        grant = CreditPdu(self.conn_id, self.config.initial_credits)
        if self._gate_credit(grant):
            self._recorder.record(
                "pressure", "resync_pinned", conn=self.conn_id
            )
            reply = CreditPdu(self.conn_id, 0)
        else:
            self._recorder.record(
                "flow", "resync_grant",
                conn=self.conn_id, credits=grant.credits,
            )
            reply = grant
        try:
            self.node.control_send(self.peer_link, reply)
        except Exception:
            pass  # peer gone; recovery handles it

    def _sync_reassembly_site(self) -> None:
        if self._budget is None:
            return
        buffered = getattr(self.ec_receiver, "buffered_bytes", None)
        if callable(buffered):
            self._budget.set_level("reassembly", self.conn_id, buffered())

    def shed_oldest_delivery(self) -> int:
        """Evict the oldest queued delivery; returns bytes freed (0 if none).

        Only *delivery-site* bytes are sheddable: the message was
        acknowledged at the protocol level but not yet observed by the
        application, so dropping it trades exactly-once for survival —
        which is why it only happens under the explicit ``shed-oldest``
        policy, is counted, and lands in the flight recorder.
        """
        ok, message = self.recv_queue.try_get()
        if not ok:
            with self._pressure_lock:
                self._delivery_log.clear()
            return 0
        nbytes = len(message)
        if self._budget is not None:
            self._budget.release("delivery", self.conn_id, nbytes)
            self._budget.record_shed(nbytes)
        with self._pressure_lock:
            if self._delivery_log:
                self._delivery_log.popleft()
        with self._stats_lock:
            self.deliveries_shed += 1
        self._recorder.record(
            "pressure", "shed", conn=self.conn_id, size=nbytes
        )
        return nbytes

    def oldest_delivery_ts(self) -> Optional[float]:
        """Enqueue time of the stalest queued delivery (None when empty)."""
        with self._pressure_lock:
            return self._delivery_log[0][0] if self._delivery_log else None

    @property
    def credit_gate_closed(self) -> bool:
        return self._credit_gate_closed

    def pending_sends(self) -> list:
        """Unacknowledged in-flight messages as ``(msg_id, payload)``.

        Reconstructed from the error-control window state; the recovery
        layer replays these over a fresh incarnation after a reconnect.
        Best taken once the connection is quiescent or dead (the engines
        run on the protocol thread in threaded mode).
        """
        if self.config.mode != "threaded":
            with self._engine_lock:
                return self.ec_sender.pending()
        return self.ec_sender.pending()

    def held_deliveries(self) -> list:
        """Reassembled-but-held inbound messages (reorder buffer).

        These were acknowledged on completion, so the peer will never
        retransmit them; a dying connection must surrender them to the
        application instead of discarding them with the engine.
        """
        if self.config.mode != "threaded":
            with self._engine_lock:
                return self.ec_receiver.held_deliveries()
        return self.ec_receiver.held_deliveries()

    @property
    def peer_gone(self) -> bool:
        """The peer sent a Close (or its interface vanished)."""
        return self._peer_closed

    @property
    def recv_waiters(self) -> int:
        """recv() calls currently parked waiting for a message."""
        with self._waiters_lock:
            return len(self._recv_wait_starts)

    def recv_blocked_for(self, now: float) -> float:
        """Seconds the oldest *still-waiting* recv() has been blocked.

        Each waiter's start time is tracked individually: a short-lived
        waiter arriving and leaving must neither reset nor inherit the
        clock of a long-blocked survivor.
        """
        with self._waiters_lock:
            if not self._recv_wait_starts:
                return 0.0
            return max(0.0, now - min(self._recv_wait_starts.values()))

    def health_sample(self, now: Optional[float] = None) -> dict:
        """A point-in-time sample for the health detectors."""
        from repro.obs.health import sample_connection

        return sample_connection(self, self._clock.now() if now is None else now)

    def health(self, prev: Optional[dict] = None):
        """One-shot diagnosis of this connection.

        Pass a previous :meth:`health_sample` dict to enable the
        windowed detectors (starvation, retransmit storms); without one,
        only instantaneous signals apply.  Returns a
        :class:`repro.obs.health.Diagnosis`.
        """
        from repro.obs.health import classify

        return classify(self.health_sample(), prev)

    def close(self, notify_peer: bool = True) -> None:
        """Tear the connection down and stop its threads."""
        if self._closed:
            return
        self._closed = True
        self._recorder.record(
            "state", "close", conn=self.conn_id, peer=self.peer_name,
            sent=self.messages_sent, received=self.messages_received,
        )
        if notify_peer and not self._peer_closed:
            try:
                self.node.control_send(self.peer_link, ClosePdu(self.conn_id))
            except Exception:
                pass  # best effort: peer may already be gone
        if self._proto_chan is not None:
            self._proto_chan.put((_STOP,))
            self._send_chan.put(_STOP)
        # Give the data threads a moment to drain, then cut the interface.
        for handle in self._threads:
            handle.join(timeout=1.0)
        if self._event_endpoint is not None:
            # Remove the selector registration *before* closing the fd so
            # no key can outlive the connection.
            self._event_endpoint.detach()
        self.interface.close()
        self._xray_send_spans.clear()
        self._xray_recv_spans.clear()
        self._xray_delivery.clear()
        self.node._forget_connection(self.conn_id)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Counters from the connection and its engines."""
        stats = {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "frames_malformed": self.frames_malformed,
            "acks_deduped": self.acks_deduped,
            "fc_queued": self.fc_sender.queued(),
            "admission_rejections": self.admission_rejections,
            "admission_waits": self.admission_waits,
            "deliveries_shed": self.deliveries_shed,
            "credits_withheld": self.credits_withheld,
            "slow_consumer_trips": self.slow_consumer_trips,
        }
        for attr in ("retransmitted_sdus", "full_retransmits"):
            if hasattr(self.ec_sender, attr):
                stats[attr] = getattr(self.ec_sender, attr)
        for attr in ("acks_sent", "corrupted_count", "duplicate_count",
                     "dropped_messages", "discarded_out_of_order"):
            if hasattr(self.ec_receiver, attr):
                stats[attr] = getattr(self.ec_receiver, attr)
        injector = getattr(self.interface, "injector", None)
        if injector is not None:
            stats["injected_drops"] = injector.dropped
            stats["injected_corruptions"] = injector.corrupted
        return stats

    def metrics_totals(self) -> dict:
        """Flat per-connection metric dict spanning every layer.

        Keys are prefixed by plane/engine (``fc_tx_``, ``fc_rx_``,
        ``ec_tx_``, ``ec_rx_``, ``if_``), matching the gauges the node's
        metrics collector publishes at snapshot time.
        """
        totals = {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "frames_malformed": self.frames_malformed,
            "acks_deduped": self.acks_deduped,
            "pressure_admission_rejections": self.admission_rejections,
            "pressure_admission_waits": self.admission_waits,
            "pressure_deliveries_shed": self.deliveries_shed,
            "pressure_credits_withheld": self.credits_withheld,
            "pressure_credit_pdus_withheld": self.credit_pdus_withheld,
            "pressure_slow_consumer_trips": self.slow_consumer_trips,
            "pressure_credit_gate_closed": int(self._credit_gate_closed),
        }
        if self._budget is not None:
            totals["pressure_conn_used"] = self._budget.used(self.conn_id)
        for prefix, engine in (
            ("fc_tx", self.fc_sender),
            ("fc_rx", self.fc_receiver),
            ("ec_tx", self.ec_sender),
            ("ec_rx", self.ec_receiver),
        ):
            for key, value in engine.metrics().items():
                totals[f"{prefix}_{key}"] = value
        interface_metrics = getattr(self.interface, "metrics", None)
        if callable(interface_metrics):
            for key, value in interface_metrics().items():
                totals[f"if_{key}"] = value
        return totals

    def publish_metrics(self, registry) -> None:
        """Publish this connection's totals as labelled gauges."""
        labels = {
            "node": self.node.name,
            "conn": str(self.conn_id),
            "peer": self.peer_name,
        }
        for key, value in self.metrics_totals().items():
            if isinstance(value, (int, float)):
                registry.gauge("ncs_conn_" + key, **labels).set(value)

    # ------------------------------------------------------------------
    # Control-plane entry points (called from node threads)
    # ------------------------------------------------------------------

    def on_control_pdu(self, pdu: ControlPdu) -> None:
        """Route an inbound control PDU for this connection."""
        if isinstance(pdu, ClosePdu):
            self._peer_closed = True
            self._recorder.record(
                "state", "peer_close", conn=self.conn_id, peer=self.peer_name
            )
            return
        if isinstance(pdu, CreditResyncPdu):
            # Receiver-side: answered directly on the control-link reader
            # thread — touches only gate state, never the FC/EC engines.
            self._answer_credit_resync()
            return
        if self.config.mode == "threaded":
            if not self._closed:
                self._proto_chan.put(("control", pdu))
        else:
            with self._engine_lock:
                self._apply_sender_control(pdu, self._clock.now())

    def on_timer_tick(self, now: float) -> None:
        """Called by the node timer thread at each tick."""
        if self._closed:
            return
        event_mode = self._event_endpoint is not None
        due = (
            (self._ec_timer_at is not None and now >= self._ec_timer_at)
            or (self._fc_ready_at is not None and now >= self._fc_ready_at)
        )
        if event_mode and not due:
            # No application thread pumps the receiver in event mode, so
            # the ordered-delivery / reassembly GC deadline rides the
            # node timer as well.
            due = self._recv_gc_at is not None and now >= self._recv_gc_at
        if not due:
            return
        if self.config.mode == "threaded":
            self._proto_chan.put(("timer", now))
        else:
            with self._engine_lock:
                self._run_ec_timer(now, transmit_inline=True)
            if event_mode:
                with self._recv_lock:
                    self._maybe_recv_gc()

    # ------------------------------------------------------------------
    # Threaded mode: protocol / send / receive loops
    # ------------------------------------------------------------------

    def _proto_loop(self) -> None:
        """Hosts the sender-side EC and FC engines."""
        while True:
            try:
                event = self._proto_chan.get(timeout=0.1)
            except TimeoutError:
                if self._closed:
                    return
                continue
            if event[0] is _STOP:
                return
            now = self._clock.now()
            kind = event[0]
            if kind == "send":
                _, msg_id, payload, instrument, trace_id, span_mark = event
                span = (
                    self._xray_send_spans.get(msg_id) if span_mark else None
                )
                if instrument is not None:
                    instrument["dequeued"] = time.perf_counter_ns()
                if span is not None:
                    span["dequeued"] = time.perf_counter_ns()
                effects = self.ec_sender.send(
                    msg_id, payload, now, trace_id=trace_id,
                    span_id=span_mark or None,
                )
                if instrument is not None:
                    instrument["segmented"] = time.perf_counter_ns()
                if span is not None:
                    span["segmented"] = time.perf_counter_ns()
                self._ec_timer_at = effects.timer_at
                self._dispatch_sender_effects(
                    effects, now, transmit_inline=False, instrument=instrument
                )
            elif kind == "control":
                self._apply_sender_control(event[1], now)
            elif kind == "timer":
                self._run_ec_timer(now, transmit_inline=False)

    def _send_loop(self) -> None:
        """The paper's Send Thread: transmit flow-released SDUs.

        Blocks for the first queued SDU, then drains whatever else the
        channel already holds (up to ``batch_max``) into a single
        vectored ``send_many`` — one interface call, and on stream
        interfaces one syscall, per burst instead of per packet.
        """
        batch_max = self.config.batch_max
        while True:
            try:
                item = self._send_chan.get(timeout=0.1)
            except TimeoutError:
                if self._closed:
                    return
                continue
            if item is _STOP:
                return
            batch = [item]
            stop = False
            while len(batch) < batch_max:
                ok, extra = self._send_chan.try_get()
                if not ok:
                    break
                if extra is _STOP:
                    stop = True  # transmit what we collected, then exit
                    break
                batch.append(extra)
            dequeued_ns = time.perf_counter_ns()
            xray_live = bool(self._xray_send_spans)
            sdus = []
            for sdu, instrument in batch:
                if instrument is not None:
                    instrument["send_thread_dequeued"] = dequeued_ns
                if xray_live:
                    header = sdu.header
                    if header.span_id & XRAY_SPAN_MARK and header.end_bit:
                        span = self._xray_send_spans.get(header.msg_id)
                        if span is not None and "send_dequeued" not in span:
                            span["send_dequeued"] = dequeued_ns
                sdus.append(sdu)
            try:
                self.interface.send_many(sdus)
            except InterfaceClosed:
                self._note_transport_loss("send")
                return
            if self._tracer.enabled:
                # One transmit event per traced message in the batch —
                # the wire-departure span for the cluster trace merger.
                transmitted: dict = {}
                for sdu in sdus:
                    header = sdu.header
                    if header.trace_id:
                        entry = transmitted.setdefault(
                            (header.msg_id, header.trace_id), [0]
                        )
                        entry[0] += 1
                for (msg_id, trace_id), entry in transmitted.items():
                    self._tracer.emit(
                        "data", "transmit",
                        conn_id=self.conn_id, msg_id=msg_id,
                        sdus=entry[0], trace=trace_id,
                    )
            if xray_live or any(
                instrument is not None for _, instrument in batch
            ):
                transmitted_ns = time.perf_counter_ns()
                for sdu, instrument in batch:
                    if instrument is not None:
                        instrument["transmitted"] = transmitted_ns
                    if xray_live:
                        header = sdu.header
                        if header.span_id & XRAY_SPAN_MARK and header.end_bit:
                            # First wire departure of the message's last
                            # SDU closes the sender span; retransmits of
                            # it find the span already gone.
                            self._finish_send_span(
                                header.msg_id, transmitted_ns
                            )
            if stop:
                return

    def _recv_loop(self) -> None:
        """The paper's Receive Thread: poll-and-yield on the user-level
        package, blocking-with-timeout on the kernel package.

        Drains every frame the interface already has ready (up to
        ``batch_max``) and processes them as one batch — single clock
        read, coalesced credit grants, deduplicated ACKs.
        """
        poll_mode = self._pkg.kind == "user"
        batch_max = self.config.batch_max
        while not self._closed:
            try:
                frames = self.interface.recv_many(
                    batch_max, timeout=0.0 if poll_mode else 0.05
                )
            except InterfaceClosed:
                self._note_transport_loss("recv")
                return
            if not frames:
                self._maybe_recv_gc()
                if poll_mode:
                    self._pkg.yield_control()
                continue
            self._process_frames(frames)

    def _note_transport_loss(self, where: str) -> None:
        """The data interface died under us (not a local close).

        Flags ``peer_gone`` so blocked receivers unblock with a typed
        error and the health/recovery layers see the outage instead of
        a silently parked thread.
        """
        if self._closed or self._peer_closed:
            return
        self._peer_closed = True
        self._recorder.record(
            "state", "transport_lost",
            conn=self.conn_id, peer=self.peer_name, where=where,
        )

    def _process_frame(self, frame: bytes) -> None:
        """Receiver path shared by threaded and bypass modes."""
        self._process_frames([frame])

    def _dedup_acks(self, pdus: list) -> list:
        """Collapse superseded acknowledgments generated within one
        receive batch.

        Every :class:`AckPdu` carries the message's *full* current
        bitmap (and :class:`CumAckPdu` the current high-water mark), so
        when a batch produces several for the same ``(connection,
        message)`` only the last reflects the post-batch state — the
        earlier ones are obsolete before they could leave the node.
        Other control PDUs pass through; relative order is preserved.
        """
        if len(pdus) <= 1:
            return pdus
        last_seen: dict = {}
        for index, pdu in enumerate(pdus):
            if isinstance(pdu, (AckPdu, CumAckPdu)):
                last_seen[(type(pdu), pdu.connection_id, pdu.msg_id)] = index
        kept = []
        for index, pdu in enumerate(pdus):
            if isinstance(pdu, (AckPdu, CumAckPdu)):
                if last_seen[(type(pdu), pdu.connection_id, pdu.msg_id)] != index:
                    self.acks_deduped += 1
                    continue
            kept.append(pdu)
        return kept

    def _process_frames(self, frames: list) -> None:
        """Run one batch of raw frames through the receiver engines.

        The whole batch shares one clock reading, one coalesced flow
        control pass (a single CreditPdu on the credit path) and one
        deduplicated ACK flush.  Profiler stage stamps are per *batch*:
        each stage's cost is amortized over every frame it handled.
        """
        profiler = self.profiler
        stamps = None
        if profiler is not None:
            stamps = {"recv_entry": time.perf_counter_ns()}
        sdus = []
        for frame in frames:
            try:
                sdus.append(Sdu.decode(frame))
            except HeaderError:
                self.frames_malformed += 1
        if not sdus:
            return
        if stamps is not None:
            stamps["decoded"] = time.perf_counter_ns()
        if self._xray is not None:
            arrival_ns = time.perf_counter_ns()
            for sdu in sdus:
                header = sdu.header
                if (
                    header.span_id & XRAY_SPAN_MARK
                    and header.msg_id not in self._xray_recv_spans
                ):
                    if len(self._xray_recv_spans) >= 1024:
                        # Orphans (e.g. duplicate of an already-finished
                        # message) must not grow the table forever.
                        self._xray_recv_spans.pop(
                            next(iter(self._xray_recv_spans))
                        )
                    self._xray_recv_spans[header.msg_id] = {
                        "first_sdu": arrival_ns,
                        "_trace": header.trace_id,
                        "_msg": header.msg_id,
                    }
        now = self._clock.now()
        # Fig. 4 steps 8-9: Receive Thread activates the Flow Control
        # Thread, which returns credit over the control connection...
        for pdu in self.fc_receiver.on_sdu_batch(sdus, now):
            if self._gate_credit(pdu):
                continue  # slow consumer: grant withheld, not lost
            self.node.control_send(self.peer_link, pdu)
        if stamps is not None:
            stamps["fc_done"] = time.perf_counter_ns()
        # ...then the Error Control Thread reassembles and acknowledges.
        controls: list = []
        deliveries: list = []
        delivered_msg = None
        delivered_trace = 0
        #: Sender-assigned trace ids seen in this batch, keyed by msg_id
        #: — lets the receiver tag its ACKs with the originating trace.
        batch_traces: dict = {}
        for sdu in sdus:
            if sdu.header.trace_id:
                batch_traces[sdu.header.msg_id] = sdu.header.trace_id
            effects = self.ec_receiver.on_sdu(sdu, now)
            self._recv_gc_at = effects.timer_at
            controls.extend(effects.controls)
            if effects.deliveries:
                delivered_msg = sdu.header.msg_id
                delivered_trace = sdu.header.trace_id
                if self._xray_recv_spans and (
                    sdu.header.span_id & XRAY_SPAN_MARK
                ):
                    span = self._xray_recv_spans.pop(sdu.header.msg_id, None)
                    if span is not None:
                        # The completing SDU's own message is released
                        # first; held later messages (ordered delivery)
                        # follow it.
                        span["reassembled"] = time.perf_counter_ns()
                        if len(self._xray_delivery) >= 1024:
                            self._xray_delivery.pop(
                                next(iter(self._xray_delivery))
                            )
                        self._xray_delivery[id(effects.deliveries[0])] = span
                deliveries.extend(effects.deliveries)
        for pdu in self._dedup_acks(controls):
            if self._tracer.enabled and isinstance(pdu, (AckPdu, CumAckPdu)):
                self._tracer.emit(
                    "control", "ack_tx",
                    conn_id=self.conn_id, msg_id=pdu.msg_id,
                    trace=batch_traces.get(pdu.msg_id, 0),
                )
            self.node.control_send(self.peer_link, pdu)
        if stamps is not None:
            stamps["ec_done"] = time.perf_counter_ns()
        if deliveries:
            with self._stats_lock:
                self.messages_received += len(deliveries)
                self.bytes_received += sum(len(m) for m in deliveries)
            for message in deliveries:
                if self._h_recv_size is not None:
                    self._h_recv_size.observe(len(message))
                self._account_delivery_put(len(message))
                self.recv_queue.put(message)
            self._recorder.record(
                "data", "deliver",
                conn=self.conn_id, msg=delivered_msg,
                messages=len(deliveries), trace=delivered_trace,
            )
            if self._tracer.enabled:
                self._tracer.emit(
                    "data", "deliver",
                    conn_id=self.conn_id, msg_id=delivered_msg,
                    messages=len(deliveries), trace=delivered_trace,
                )
        self._sync_reassembly_site()
        if stamps is not None:
            stamps["delivered"] = time.perf_counter_ns()
            profiler.record_recv(stamps)

    def _maybe_recv_gc(self) -> None:
        if self._recv_gc_at is None:
            return
        now = self._clock.now()
        if now >= self._recv_gc_at:
            effects = self.ec_receiver.on_timer(now)
            self._recv_gc_at = effects.timer_at
            if effects.deliveries:
                with self._stats_lock:
                    self.messages_received += len(effects.deliveries)
                    self.bytes_received += sum(
                        len(m) for m in effects.deliveries
                    )
            for message in effects.deliveries:
                # Ordered delivery released messages held behind a gap.
                self._account_delivery_put(len(message))
                self.recv_queue.put(message)
            self._sync_reassembly_site()

    # ------------------------------------------------------------------
    # Shared sender-side effect dispatch
    # ------------------------------------------------------------------

    def _run_ec_timer(self, now: float, transmit_inline: bool) -> None:
        """Timer tick for the sender engines.

        While flow control still gates queued SDUs, an acknowledgment
        was never possible, so retransmission deadlines are deferred
        rather than fired (the paper starts the timer only after the
        last packet reaches the Send Thread).  The flow pump still runs
        so stalled credit/window/rate controllers make progress.
        """
        if self.fc_sender.queued() > 0:
            self.ec_sender.defer(now)
            self._pump_flow(now, transmit_inline)
            return
        effects = self.ec_sender.on_timer(now)
        if effects.transmits:
            # Timer-driven transmits are retransmissions by definition.
            self._recorder.record(
                "error", "retransmit",
                conn=self.conn_id, sdus=len(effects.transmits), cause="timeout",
            )
        self._ec_timer_at = effects.timer_at
        self._dispatch_sender_effects(effects, now, transmit_inline=transmit_inline)

    def _apply_sender_control(self, pdu: ControlPdu, now: float) -> None:
        """Feed a control PDU to the right sender-side engine."""
        if isinstance(pdu, CreditPdu):
            self._recorder.record(
                "flow", "credit", conn=self.conn_id, credits=pdu.credits
            )
            self.fc_sender.on_control(pdu, now)
            self._pump_flow(now, transmit_inline=self.config.mode == "bypass")
            return
        if isinstance(pdu, (AckPdu, CumAckPdu)):
            self._recorder.record(
                "error", "ack", conn=self.conn_id, msg=pdu.msg_id,
                trace=self.trace_of(pdu.msg_id),
            )
            effects = self.ec_sender.on_control(pdu, now)
            if effects.transmits and (
                getattr(self.ec_sender, "last_retransmit_at", -1.0) == now
            ):
                # Selective retransmissions; go-back-N window refills
                # transmit *new* SDUs and leave last_retransmit_at alone.
                self._recorder.record(
                    "error", "retransmit",
                    conn=self.conn_id, sdus=len(effects.transmits), cause="ack",
                )
            self._ec_timer_at = effects.timer_at
            self._dispatch_sender_effects(
                effects, now, transmit_inline=self.config.mode == "bypass"
            )

    def _dispatch_sender_effects(
        self,
        effects: Effects,
        now: float,
        transmit_inline: bool,
        instrument: Optional[dict] = None,
    ) -> None:
        if effects.transmits:
            self.fc_sender.offer(effects.transmits)
            if self._xray_send_spans:
                offered_ns = time.perf_counter_ns()
                for sdu in effects.transmits:
                    header = sdu.header
                    if header.span_id & XRAY_SPAN_MARK and header.end_bit:
                        span = self._xray_send_spans.get(header.msg_id)
                        if span is not None and "offered" not in span:
                            span["offered"] = offered_ns
        for pdu in effects.controls:
            self.node.control_send(self.peer_link, pdu)
        for msg_id in effects.completed:
            self._resolve_handle(msg_id, SendStatus.COMPLETED)
        for msg_id in effects.failed:
            self._resolve_handle(msg_id, SendStatus.FAILED)
        self._pump_flow(now, transmit_inline, instrument)

    def _pump_flow(
        self,
        now: float,
        transmit_inline: bool,
        instrument: Optional[dict] = None,
    ) -> None:
        """Release whatever flow control currently allows (Fig. 7 step 3)."""
        if self._peer_closed or self._closed:
            # The data path is dead (transport lost, peer closed, or we
            # closed): the Send Thread has exited or is exiting, so
            # releasing SDUs would only pile them into a channel nobody
            # drains.  Leave them queued in the flow controller — the
            # recovery layer replays pending sends over a fresh
            # incarnation.
            self._fc_ready_at = None
            return
        released = self.fc_sender.pull(now)
        take_resync = getattr(self.fc_sender, "take_resync_request", None)
        if take_resync is not None and take_resync():
            # Two-phase credit resync: ask the receiver to restore the
            # pool instead of restoring it unilaterally — its slow-
            # consumer gate gets to answer "stay pinned" (credits=0).
            self._recorder.record("flow", "resync_request", conn=self.conn_id)
            try:
                self.node.control_send(
                    self.peer_link, CreditResyncPdu(self.conn_id)
                )
            except Exception:
                pass  # control link down; the unilateral fallback covers it
        if instrument is not None:
            instrument["flow_released"] = time.perf_counter_ns()
        xray_live = bool(self._xray_send_spans)
        if xray_live and released:
            released_ns = time.perf_counter_ns()
            for sdu in released:
                header = sdu.header
                if header.span_id & XRAY_SPAN_MARK and header.end_bit:
                    span = self._xray_send_spans.get(header.msg_id)
                    # First release only: a retransmit re-entering flow
                    # control must not move the boundary.
                    if span is not None and "released" not in span:
                        span["released"] = released_ns
        if self._event_endpoint is not None:
            # Event mode: hand the whole burst to the selector plane's
            # endpoint (backlog append + loop wakeup) — never a blocking
            # socket write from the calling thread.
            if released:
                try:
                    self._event_endpoint.submit(released)
                except InterfaceClosed:
                    self._note_transport_loss("send")
                    self._fc_ready_at = None
                    return
                submitted_ns = time.perf_counter_ns() if xray_live else 0
                for sdu in released:
                    header = sdu.header
                    if self._tracer.enabled and header.trace_id:
                        self._tracer.emit(
                            "data", "transmit",
                            conn_id=self.conn_id, msg_id=header.msg_id,
                            sdus=1, trace=header.trace_id,
                        )
                    if xray_live and (
                        header.span_id & XRAY_SPAN_MARK and header.end_bit
                    ):
                        self._finish_send_span(header.msg_id, submitted_ns)
            self._fc_ready_at = self.fc_sender.next_ready_time(now)
            return
        for sdu in released:
            if transmit_inline:
                try:
                    self.interface.send(sdu.encode())
                except InterfaceClosed:
                    self._note_transport_loss("send")
                    return
                if self._tracer.enabled and sdu.header.trace_id:
                    self._tracer.emit(
                        "data", "transmit",
                        conn_id=self.conn_id, msg_id=sdu.header.msg_id,
                        sdus=1, trace=sdu.header.trace_id,
                    )
                if xray_live:
                    header = sdu.header
                    if header.span_id & XRAY_SPAN_MARK and header.end_bit:
                        self._finish_send_span(
                            header.msg_id, time.perf_counter_ns()
                        )
            else:
                self._send_chan.put((sdu, instrument))
        self._fc_ready_at = self.fc_sender.next_ready_time(now)

    def trace_of(self, msg_id: int) -> int:
        """Trace id of an in-flight traced send (0 when untraced/done)."""
        with self._handles_lock:
            return self._trace_ids.get(msg_id, 0)

    def _finish_send_span(self, msg_id: int, transmitted_ns: int) -> None:
        """Close a sampled sender span at its first wire departure."""
        span = self._xray_send_spans.pop(msg_id, None)
        if span is None or self._xray is None:
            return
        span["transmitted"] = transmitted_ns
        self._xray.record_send(self.conn_id, self.peer_name, msg_id, span)

    def _resolve_handle(self, msg_id: int, status: SendStatus) -> None:
        if self._xray_send_spans and status is SendStatus.FAILED:
            # A send that died before reaching the wire never finalizes;
            # drop its span so the table cannot grow without bound.
            self._xray_send_spans.pop(msg_id, None)
        with self._handles_lock:
            handle = self._handles.pop(msg_id, None)
            trace_id = self._trace_ids.pop(msg_id, 0)
        if handle is not None:
            self._release_send_site(handle.size)
            if status is SendStatus.COMPLETED:
                self.messages_completed += 1
                if self._tracer.enabled and trace_id:
                    # Span end on the sender: the ACK round-trip closed.
                    self._tracer.emit(
                        "data", "complete",
                        conn_id=self.conn_id, msg_id=msg_id, trace=trace_id,
                    )
            else:
                self._recorder.record(
                    "error", "send_failed", conn=self.conn_id, msg=msg_id,
                    trace=trace_id,
                )
            handle._resolve(status)

    # ------------------------------------------------------------------
    # Bypass mode (§4.2): threads replaced by procedures
    # ------------------------------------------------------------------

    def _bypass_send(
        self,
        msg_id: int,
        payload: bytes,
        instrument: Optional[dict],
        trace_id: int = 0,
        span_mark: int = 0,
    ) -> None:
        now = self._clock.now()
        with self._engine_lock:
            effects = self.ec_sender.send(
                msg_id, payload, now, trace_id=trace_id,
                span_id=span_mark or None,
            )
            if instrument is not None:
                instrument["segmented"] = time.perf_counter_ns()
            if span_mark:
                span = self._xray_send_spans.get(msg_id)
                if span is not None:
                    span["segmented"] = time.perf_counter_ns()
            self._ec_timer_at = effects.timer_at
            self._dispatch_sender_effects(
                effects, now, transmit_inline=True, instrument=instrument
            )
        if instrument is not None:
            instrument["transmitted"] = time.perf_counter_ns()

    def _bypass_recv(self, timeout: Optional[float]) -> Optional[bytes]:
        deadline = None if timeout is None else time.monotonic() + timeout
        token = self._enter_recv_wait()
        try:
            while True:
                ok, item = self.recv_queue.try_get()
                if ok:
                    return self._delivery_popped(item)
                if self._closed or self._peer_closed:
                    raise ConnectionClosedError(
                        f"connection {self.conn_id} closed with no pending data"
                    )
                remaining = 0.05
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        return None
                self._bypass_pump_once(blocking=True, timeout=remaining)
        finally:
            self._exit_recv_wait(token)

    # ------------------------------------------------------------------
    # Event mode: selector-loop entry points
    # ------------------------------------------------------------------

    def event_rx(self, frames: list) -> None:
        """Process frames handed over by the event loop (its thread)."""
        if self._closed or not frames:
            return
        with self._recv_lock:
            self._process_frames(frames)

    def event_transport_lost(self, where: str) -> None:
        """The event loop saw this connection's transport die."""
        self._note_transport_loss(where)

    def _bypass_pump_once(
        self, blocking: bool, timeout: float = 0.05
    ) -> None:
        """Pull and process all ready frames inline (procedure variant)."""
        with self._recv_lock:
            try:
                frames = self.interface.recv_many(
                    self.config.batch_max,
                    timeout=timeout if blocking else 0.0,
                )
            except InterfaceClosed:
                self._note_transport_loss("recv")
                return
            if frames:
                self._process_frames(frames)
            self._maybe_recv_gc()
