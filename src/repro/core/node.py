"""The NCS node: Master Thread, control plane, and connection signaling.

One ``Node`` per participating process.  Its control plane mirrors the
paper's Fig. 1:

* an **accept loop** plus per-peer **control links** (TCP) carry *all*
  control information — signaling, ACK bitmaps, credits — so data
  connections stay pure data (separation of control and data);
* the **Control Send Thread** serializes outbound control PDUs;
* per-link **Control Receive Threads** parse inbound PDUs and route them
  to the Master Thread (signaling) or to the owning connection's engines
  (ACKs, credits);
* the **Master Thread** performs connection management: it validates
  connect requests, spawns the data-plane endpoint for the negotiated
  interface, and registers the new connection — "data transfer threads
  ... are spawned on a per-connection basis by the Master Thread";
* a **timer thread** ticks retransmission timers and rate pacing.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.config import ConnectionConfig, NodeConfig
from repro.core.connection import Connection
from repro.core.errors import (
    ConnectRejectedError,
    ConnectTimeoutError,
    LinkDialError,
    NcsError,
)
from repro.interfaces.aci import aci_open
from repro.interfaces.base import InterfaceClosed
from repro.interfaces.hpi import DEFAULT_FABRIC, HpiFabric
from repro.interfaces.sci import SciInterface, SciListener, sci_connect
from repro.protocol.pdus import (
    AckPdu,
    BarrierPdu,
    ClosePdu,
    ConnectAcceptPdu,
    ConnectRejectPdu,
    ConnectRequestPdu,
    ControlPdu,
    CreditPdu,
    CreditResyncPdu,
    CumAckPdu,
    GroupInfoPdu,
    GroupJoinPdu,
    GroupLeavePdu,
    HeartbeatPdu,
    PduDecodeError,
    TelemetryPdu,
    decode_control_pdu,
)
from repro.threadpkg import make_thread_package
from repro.util.clock import MonotonicClock
from repro.util.trace import Tracer, jsonl_sink_from_env

_STOP = object()

#: Result of an accept handler: True/None accept, False/str reject,
#: ConnectionConfig accept-with-overrides.
AcceptDecision = Union[bool, None, str, ConnectionConfig]


class _PendingConnect:
    """Initiator-side state while waiting for Accept/Reject."""

    __slots__ = ("event", "accept", "reject_reason")

    def __init__(self):
        self.event = threading.Event()
        self.accept: Optional[ConnectAcceptPdu] = None
        self.reject_reason: Optional[str] = None


class Node:
    """An NCS endpoint: control plane plus any number of connections."""

    def __init__(self, config: Union[NodeConfig, str]):
        if isinstance(config, str):
            config = NodeConfig(name=config)
        self.config = config
        self.name = config.name
        self.pkg = make_thread_package(config.thread_package)
        self.clock = MonotonicClock()
        # Flight recorder first: connections grab it in their __init__.
        from repro.obs.recorder import NULL_RECORDER, FlightRecorder

        if config.flight_recorder_enabled():
            self.recorder = FlightRecorder(
                name=config.name,
                capacity=config.recorder_capacity,
                clock=self.clock.now,
            )
        else:
            self.recorder = NULL_RECORDER
        # Overload protection: one MemoryBudget shared by every
        # connection on this node (None when disabled via NCS_PRESSURE).
        from repro.pressure import MemoryBudget

        self.pressure_cfg = config.pressure_config()
        self.pressure = (
            MemoryBudget(
                self.pressure_cfg.node_bytes, self.pressure_cfg.conn_bytes
            )
            if self.pressure_cfg.enabled
            else None
        )
        self.tracer = Tracer(self.clock, enabled=config.trace_enabled())
        if self.tracer.enabled:
            env_sink = jsonl_sink_from_env()
            if env_sink is not None:
                self.tracer.add_sink(env_sink)
        #: Metrics registry this node publishes into (None = metrics off).
        #: Resolved before ClockSync so heartbeat RTT histograms can
        #: register against it.
        self.metrics = None
        if config.metrics_enabled():
            from repro.obs.registry import get_registry

            self.metrics = config.metrics_registry or get_registry()
            self.metrics.add_collector(self._collect_metrics)
        # Clock-offset estimation per peer, fed by heartbeat round-trips
        # (see FailureDetector._on_reply) and shipped in telemetry
        # snapshots so cross-node timestamps can share one timeline.
        from repro.obs.telemetry import ClockSync

        self.clock_sync = ClockSync(
            registry=self.metrics, node_name=self.name
        )
        #: Latency X-ray: per-node recorder for sampled per-message stage
        #: spans (None = sampling off; connections check this once).
        from repro.obs.xray import XrayRecorder

        xray_cfg = config.xray_config()
        self.xray = (
            XrayRecorder(self.name, xray_cfg, tracer=self.tracer)
            if xray_cfg is not None
            else None
        )
        #: Control PDUs queued for sending, by type name (plain-dict
        #: counters: the Control Send path stays lock-free; the metrics
        #: collector publishes them at snapshot time).
        self._ctrl_pdu_sent: Dict[str, int] = {}
        #: Aggregated totals of connections that have already closed, so
        #: snapshots taken after teardown still see their traffic.
        self._closed_conn_totals: Dict[str, float] = {}
        self.hpi_fabric: HpiFabric = config.hpi_fabric or DEFAULT_FABRIC

        self._listener = SciListener(config.host, config.control_port)
        self.host = self._listener.host
        self.control_port = self._listener.port

        self._closed = False
        self._connections: Dict[int, Connection] = {}
        self._conn_lock = threading.Lock()
        self._pending: Dict[int, _PendingConnect] = {}
        self._links: Dict[Tuple[str, int], SciInterface] = {}
        self._links_lock = threading.Lock()

        #: Optional connection admission policy (see AcceptDecision).
        self.accept_handler: Optional[
            Callable[[ConnectRequestPdu], AcceptDecision]
        ] = None
        #: Mode applied to connections we accept ("threaded" | "bypass"
        #: | "event"); "threaded" defers to the node's data plane.
        self.accept_mode = "threaded"
        #: Node-wide data plane ("threaded" | "event", NCS_DATA_PLANE).
        self.data_plane = config.data_plane_mode()
        #: Selector loop for event-mode connections (lazily started so
        #: threaded nodes pay nothing for the plane they don't use).
        self._event_loop = None
        self._event_loop_lock = threading.Lock()
        #: Queue of connections accepted from peers.
        self.accepted_queue = self.pkg.channel()
        #: Hook for the multicast/group layer (installed by GroupManager).
        self.group_pdu_handler: Optional[Callable[[ControlPdu, object], None]] = None
        #: Optional interceptor for accepted connections; returns True to
        #: consume the connection (keeps it off ``accepted_queue``).  The
        #: group layer uses this to claim its forwarding connections.
        self.accept_router: Optional[
            Callable[[ConnectRequestPdu, Connection], bool]
        ] = None
        #: Additional accept routers consulted after ``accept_router``;
        #: the recovery Responder registers here so group forwarding and
        #: reconnect claiming coexist.
        self._accept_routers: list = []
        #: Installed by a FailureDetector to receive heartbeat replies.
        self.heartbeat_reply_handler: Optional[
            Callable[[HeartbeatPdu, object], None]
        ] = None
        #: Installed by a FailureDetector so health() can report peers.
        self.failure_detector = None
        #: Installed by a telemetry Collector to receive TelemetryPdus.
        self.telemetry_handler: Optional[
            Callable[[TelemetryPdu, object], None]
        ] = None

        self._ctrl_chan = self.pkg.channel()
        self._master_chan = self.pkg.channel()
        self._threads = [
            self.pkg.spawn(self._accept_loop, name=f"{self.name}-accept"),
            self.pkg.spawn(self._ctrl_send_loop, name=f"{self.name}-ctrlsend"),
            self.pkg.spawn(self._master_loop, name=f"{self.name}-master"),
            self.pkg.spawn(self._timer_loop, name=f"{self.name}-timer"),
        ]

        #: Health watchdog (started only when configured on).
        self.watchdog = None
        if config.watchdog_enabled():
            from repro.obs.health import Watchdog

            self.watchdog = Watchdog(self, period=config.watchdog_period)

        #: Telemetry exporter (started only when a collector target is
        #: configured, via NodeConfig.telemetry or NCS_TELEMETRY).
        self.telemetry_exporter = None
        telemetry_target = config.telemetry_target()
        if telemetry_target is not None:
            from repro.obs.telemetry import TelemetryExporter

            self.telemetry_exporter = TelemetryExporter(
                self,
                telemetry_target,
                interval=config.telemetry_export_interval(),
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Control-plane (host, port) other nodes dial to reach us."""
        return (self.host, self.control_port)

    def event_loop(self):
        """This node's selector loop, started on first use."""
        with self._event_loop_lock:
            if self._event_loop is None:
                from repro.eventplane import EventLoop

                self._event_loop = EventLoop(self.name)
            return self._event_loop

    def _plane_mode(self, config: ConnectionConfig) -> ConnectionConfig:
        """Promote default-threaded configs onto the node's data plane.

        An explicit ``mode="bypass"`` (or a plane the interface cannot
        ride — ACI has no selectable surface yet) is left untouched.
        """
        if (
            self.data_plane == "event"
            and config.mode == "threaded"
            and config.interface in ("sci", "hpi")
        ):
            return config.with_overrides(mode="event")
        return config

    def connect(
        self,
        peer: Tuple[str, int],
        config: Optional[ConnectionConfig] = None,
        timeout: float = 5.0,
        peer_name: str = "",
    ) -> Connection:
        """Establish a connection with the paper's per-connection QOS.

        ``config`` carries the flow/error algorithms, interface, SDU size
        and knobs; the peer's Master Thread builds matching engines from
        the request PDU.
        """
        if self._closed:
            raise NcsError("node is closed")
        config = self._plane_mode(config or ConnectionConfig())
        link = self._get_link(peer)
        conn_id = self._new_conn_id()
        endpoint = None
        src_data_port = 0
        if config.interface == "aci":
            endpoint = aci_open(self.host)
            src_data_port = endpoint.port
        elif config.interface == "hpi":
            src_data_port, endpoint = self.hpi_fabric.offer()

        pending = _PendingConnect()
        self._pending[conn_id] = pending
        request = ConnectRequestPdu(
            connection_id=conn_id,
            src_node=self.name,
            dst_node=peer_name,
            src_data_port=src_data_port,
            flow_control=config.flow_control,
            error_control=config.error_control,
            interface=config.interface,
            sdu_size=config.sdu_size,
            initial_credits=config.initial_credits,
            window_size=config.window_size,
            rate_pps=config.rate_pps,
            batch_max=config.batch_max,
        )
        self.control_send(link, request)
        try:
            if not pending.event.wait(timeout):
                raise ConnectTimeoutError(
                    f"no reply from {peer} within {timeout}s"
                )
            if pending.reject_reason is not None:
                raise ConnectRejectedError(pending.reject_reason)
            accept = pending.accept
        finally:
            self._pending.pop(conn_id, None)

        if config.interface == "sci":
            try:
                interface = sci_connect(peer[0], accept.data_port)
            except OSError as exc:
                raise LinkDialError(
                    f"data dial to {peer[0]}:{accept.data_port} failed: {exc}"
                ) from exc
        elif config.interface == "aci":
            endpoint.bind_peer(peer[0], accept.data_port)
            interface = endpoint
        else:  # hpi
            interface = endpoint

        connection = Connection(
            self, conn_id, peer_name or f"{peer[0]}:{peer[1]}", link, config, interface
        )
        with self._conn_lock:
            self._connections[conn_id] = connection
        self.recorder.record(
            "state", "connected",
            conn=conn_id, peer=peer_name or f"{peer[0]}:{peer[1]}",
            fc=config.flow_control, ec=config.error_control,
            interface=config.interface,
        )
        self.tracer.emit("node", "connected", conn_id=conn_id, peer=peer)
        return connection

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        """Next connection established by a remote initiator."""
        try:
            return self.accepted_queue.get(timeout=timeout)
        except TimeoutError:
            return None

    def connections(self) -> list:
        with self._conn_lock:
            return list(self._connections.values())

    def health(self) -> dict:
        """Node-level health report.

        With the watchdog running, returns its windowed per-connection
        diagnoses.  Without it, classifies every connection on demand
        (instantaneous detectors only).  Either way the report folds in
        peers the heartbeat failure detector currently suspects (DEAD)
        and this node's flight-recorder dump count.
        """
        from repro.obs.health import DEAD, classify, sample_connection, worst

        if self.watchdog is not None:
            report = self.watchdog.report()
        else:
            now = self.clock.now()
            entries = []
            for conn in self.connections():
                sample = sample_connection(conn, now)
                diag = classify(sample)
                entries.append(
                    {
                        "conn_id": conn.conn_id,
                        "peer": sample["peer"],
                        "queued": sample["queued"],
                        "retransmits": sample["retransmits"],
                        **diag.to_dict(),
                    }
                )
            report = {
                "state": worst(entry["state"] for entry in entries),
                "connections": entries,
                "samples_taken": 0,
                "period": None,
            }
        report["node"] = self.name
        peers = []
        detector = self.failure_detector
        if detector is not None:
            for address, status in detector.peers().items():
                peers.append(
                    {
                        "address": list(address),
                        "suspected": status.suspected,
                        "state": DEAD if status.suspected else "OK",
                    }
                )
            if any(entry["suspected"] for entry in peers):
                report["state"] = worst([report["state"], DEAD])
        report["peers"] = peers
        report["recorder_dumps"] = getattr(self.recorder, "auto_dumps", 0)
        if self.pressure is not None:
            from repro.obs.health import OVERLOADED

            snap = self.pressure.snapshot()
            report["pressure"] = snap
            gated = any(
                conn.credit_gate_closed for conn in self.connections()
            )
            if gated or snap["used"] >= 0.9 * snap["node_bytes"]:
                report["state"] = worst([report["state"], OVERLOADED])
        return report

    def shed_for(self, conn, nbytes: int) -> bool:
        """Make room for a ``shed-oldest`` send by evicting the stalest
        queued delivery node-wide, repeatedly, until the reservation
        fits.  Returns False when nothing sheddable remains.

        Only application deliveries are candidates; control PDUs never
        pass through here (the priority lane).
        """
        budget = self.pressure
        if budget is None:
            return True
        while not budget.try_reserve("send", conn.conn_id, nbytes):
            victim = None
            oldest = None
            for candidate in self.connections():
                ts = candidate.oldest_delivery_ts()
                if ts is not None and (oldest is None or ts < oldest):
                    oldest, victim = ts, candidate
            if victim is None:
                return False
            victim.shed_oldest_delivery()
        return True

    def control_send(self, link, pdu: ControlPdu) -> None:
        """Queue a PDU for the Control Send Thread."""
        pdu_type = type(pdu).__name__
        self._ctrl_pdu_sent[pdu_type] = self._ctrl_pdu_sent.get(pdu_type, 0) + 1
        if self.tracer.enabled:
            detail = {"type": pdu_type}
            conn_id = getattr(pdu, "connection_id", None)
            if conn_id is not None:
                detail["conn_id"] = conn_id
            msg_id = getattr(pdu, "msg_id", None)
            if msg_id is not None:
                detail["msg_id"] = msg_id
            self.tracer.emit("control", "send", **detail)
        self._ctrl_chan.put((link, pdu))

    def control_link(self, peer: Tuple[str, int]):
        """Control link to ``peer``, dialing one if needed (group layer
        and other services send their control PDUs over these)."""
        return self._get_link(peer)

    def add_accept_router(
        self, router: Callable[[ConnectRequestPdu, Connection], bool]
    ) -> None:
        """Register an interceptor for accepted connections.

        Routers run in registration order (after the legacy
        ``accept_router`` attribute); the first to return True consumes
        the connection, keeping it off ``accepted_queue``.
        """
        self._accept_routers.append(router)

    def remove_accept_router(self, router) -> None:
        try:
            self._accept_routers.remove(router)
        except ValueError:
            pass

    def close(self) -> None:
        """Tear down every connection and stop the control plane."""
        if self._closed:
            return
        self._closed = True
        if self.telemetry_exporter is not None:
            self.telemetry_exporter.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        for connection in self.connections():
            connection.close()
        if self.metrics is not None:
            # Final publish so post-run snapshots still see this node's
            # traffic, then stop participating in future snapshots.
            self._collect_metrics(self.metrics)
            self.metrics.remove_collector(self._collect_metrics)
        self._ctrl_chan.put(_STOP)
        self._master_chan.put((_STOP, None))
        self._listener.close()
        with self._links_lock:
            links = list(self._links.values())
            self._links.clear()
        for link in links:
            link.close()
        for handle in self._threads:
            handle.join(timeout=1.0)
        with self._event_loop_lock:
            event_loop = self._event_loop
        if event_loop is not None:
            event_loop.stop()
        self.pkg.shutdown()

    def __enter__(self) -> "Node":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------

    def _get_link(self, peer: Tuple[str, int]) -> SciInterface:
        with self._links_lock:
            link = self._links.get(peer)
            if link is not None and not link.closed:
                return link
        try:
            link = sci_connect(peer[0], peer[1])
        except OSError as exc:
            raise LinkDialError(
                f"cannot reach {peer[0]}:{peer[1]}: {exc}"
            ) from exc
        with self._links_lock:
            self._links[peer] = link
        self.pkg.spawn(self._link_reader, link, name=f"{self.name}-ctrlrecv")
        return link

    def _accept_loop(self) -> None:
        # On the user-level package a blocking accept would stall every
        # thread in the process (§4.1), so poll and sleep cooperatively.
        poll_mode = self.pkg.kind == "user"
        while not self._closed:
            try:
                link = self._listener.accept(timeout=0.0 if poll_mode else 0.2)
            except InterfaceClosed:
                return
            except OSError:
                if self._closed:
                    return
                continue
            if link is None:
                if poll_mode:
                    self.pkg.sleep(0.002)
                continue
            self.pkg.spawn(self._link_reader, link, name=f"{self.name}-ctrlrecv")

    def _ctrl_send_loop(self) -> None:
        """The paper's Control Send Thread."""
        while True:
            try:
                item = self._ctrl_chan.get(timeout=0.1)
            except TimeoutError:
                if self._closed:
                    return
                continue
            if item is _STOP:
                return
            link, pdu = item
            try:
                link.send(pdu.encode())
            except InterfaceClosed:
                continue  # peer gone; connection teardown handles the rest

    def _link_reader(self, link: SciInterface) -> None:
        """A Control Receive Thread: parse and route inbound PDUs."""
        poll_mode = self.pkg.kind == "user"
        while not self._closed:
            try:
                if poll_mode:
                    frame = link.try_recv()
                    if frame is None:
                        self.pkg.yield_control()
                        continue
                else:
                    frame = link.recv(timeout=0.1)
                    if frame is None:
                        continue
            except InterfaceClosed:
                return
            try:
                pdu = decode_control_pdu(frame)
            except PduDecodeError:
                self.tracer.emit("node", "malformed_control", size=len(frame))
                continue
            self._route_pdu(pdu, link)

    def _route_pdu(self, pdu: ControlPdu, link) -> None:
        if isinstance(
            pdu, (AckPdu, CumAckPdu, CreditPdu, CreditResyncPdu, ClosePdu)
        ):
            with self._conn_lock:
                connection = self._connections.get(pdu.connection_id)
            if self.tracer.enabled:
                # Control-plane arrivals carry the trace context (msg_id)
                # set by the sender's data plane, tying the two planes of
                # one transfer together in the event stream.
                if isinstance(pdu, (AckPdu, CumAckPdu)):
                    trace = (
                        connection.trace_of(pdu.msg_id)
                        if connection is not None
                        else 0
                    )
                    self.tracer.emit(
                        "control", "ack",
                        conn_id=pdu.connection_id, msg_id=pdu.msg_id,
                        trace=trace,
                    )
                elif isinstance(pdu, CreditPdu):
                    self.tracer.emit(
                        "control", "credit",
                        conn_id=pdu.connection_id, credits=pdu.credits,
                    )
            if connection is not None:
                connection.on_control_pdu(pdu)
            return
        if isinstance(pdu, ConnectAcceptPdu):
            pending = self._pending.get(pdu.connection_id)
            if pending is not None:
                pending.accept = pdu
                pending.event.set()
            return
        if isinstance(pdu, ConnectRejectPdu):
            pending = self._pending.get(pdu.connection_id)
            if pending is not None:
                pending.reject_reason = pdu.reason
                pending.event.set()
            return
        if isinstance(
            pdu, (GroupJoinPdu, GroupLeavePdu, GroupInfoPdu, BarrierPdu)
        ):
            if self.group_pdu_handler is not None:
                self.group_pdu_handler(pdu, link)
            return
        if isinstance(pdu, HeartbeatPdu):
            from repro.core.heartbeat import is_reply, make_reply

            if is_reply(pdu):
                if self.heartbeat_reply_handler is not None:
                    self.heartbeat_reply_handler(pdu, link)
            else:
                # Every node answers probes; fault tolerance needs no
                # opt-in at the probed end.
                self.control_send(
                    link, make_reply(self.name, pdu, now=self.clock.now())
                )
            return
        if isinstance(pdu, TelemetryPdu):
            if self.telemetry_handler is not None:
                self.telemetry_handler(pdu, link)
            return
        if isinstance(pdu, ConnectRequestPdu):
            self._master_chan.put((pdu, link))
            return

    # ------------------------------------------------------------------
    # Master Thread
    # ------------------------------------------------------------------

    def _master_loop(self) -> None:
        while True:
            try:
                pdu, link = self._master_chan.get(timeout=0.1)
            except TimeoutError:
                if self._closed:
                    return
                continue
            if pdu is _STOP:
                return
            if isinstance(pdu, ConnectRequestPdu):
                self._handle_connect_request(pdu, link)

    def _handle_connect_request(self, request: ConnectRequestPdu, link) -> None:
        conn_id = request.connection_id
        with self._conn_lock:
            duplicate = conn_id in self._connections
        if duplicate:
            self.control_send(
                link, ConnectRejectPdu(conn_id, "connection id already in use")
            )
            return
        # The peer's batch_max shapes *our* memory profile (receive-drain
        # width, coalescing buffers), so never trust it blindly: reject
        # non-positive values outright and clamp the rest to our ceiling.
        if request.batch_max <= 0:
            self.control_send(
                link,
                ConnectRejectPdu(
                    conn_id,
                    f"invalid batch_max {request.batch_max} (must be >= 1)",
                ),
            )
            return
        batch_max = min(request.batch_max, self.config.batch_max_ceiling)
        if batch_max != request.batch_max:
            self.tracer.emit(
                "node", "batch_max_clamped",
                conn_id=conn_id, requested=request.batch_max, granted=batch_max,
            )
        decision: AcceptDecision = True
        if self.accept_handler is not None:
            decision = self.accept_handler(request)
        if decision is False:
            self.control_send(link, ConnectRejectPdu(conn_id, "refused by policy"))
            return
        if isinstance(decision, str):
            self.control_send(link, ConnectRejectPdu(conn_id, decision))
            return
        if isinstance(decision, ConnectionConfig):
            config = decision
        else:
            try:
                config = self._plane_mode(
                    ConnectionConfig(
                        flow_control=request.flow_control,
                        error_control=request.error_control,
                        interface=request.interface,
                        sdu_size=request.sdu_size,
                        mode=self.accept_mode,
                        initial_credits=request.initial_credits,
                        window_size=request.window_size,
                        rate_pps=request.rate_pps,
                        batch_max=batch_max,
                    )
                )
            except ValueError as exc:
                self.control_send(link, ConnectRejectPdu(conn_id, str(exc)))
                return

        if config.interface == "sci":
            # Accept the initiator's data dial on a fresh ephemeral port;
            # finish asynchronously so the Master Thread never blocks.
            data_listener = SciListener(self.host)
            self.control_send(
                link, ConnectAcceptPdu(conn_id, data_listener.port)
            )
            self.pkg.spawn(
                self._finish_sci_accept,
                request,
                link,
                config,
                data_listener,
                name=f"{self.name}-finish",
            )
            return
        if config.interface == "aci":
            endpoint = aci_open(self.host)
            peer_host = link.peer_address()[0]
            endpoint.bind_peer(peer_host, request.src_data_port)
            self._register_accepted(request, link, config, endpoint)
            self.control_send(link, ConnectAcceptPdu(conn_id, endpoint.port))
            return
        # hpi
        try:
            endpoint = self.hpi_fabric.claim(request.src_data_port)
        except KeyError:
            self.control_send(
                link,
                ConnectRejectPdu(
                    conn_id, "HPI offer not found (nodes on different fabrics?)"
                ),
            )
            return
        self._register_accepted(request, link, config, endpoint)
        self.control_send(link, ConnectAcceptPdu(conn_id, 0))

    def _finish_sci_accept(
        self,
        request: ConnectRequestPdu,
        link,
        config: ConnectionConfig,
        data_listener: SciListener,
    ) -> None:
        try:
            if self.pkg.kind == "user":
                # Poll cooperatively; a blocking accept would stall the
                # whole user-level package.
                interface = None
                deadline = self.clock.now() + 5.0
                while interface is None and self.clock.now() < deadline:
                    interface = data_listener.accept(timeout=0.0)
                    if interface is None:
                        self.pkg.sleep(0.002)
            else:
                interface = data_listener.accept(timeout=5.0)
        finally:
            data_listener.close()
        if interface is None:
            self.tracer.emit(
                "node", "accept_data_timeout", conn_id=request.connection_id
            )
            return
        self._register_accepted(request, link, config, interface)

    def _register_accepted(
        self, request: ConnectRequestPdu, link, config: ConnectionConfig, interface
    ) -> None:
        connection = Connection(
            self,
            request.connection_id,
            request.src_node,
            link,
            config,
            interface,
        )
        with self._conn_lock:
            self._connections[request.connection_id] = connection
        consumed = False
        if self.accept_router is not None:
            consumed = bool(self.accept_router(request, connection))
        if not consumed:
            for router in list(self._accept_routers):
                if bool(router(request, connection)):
                    consumed = True
                    break
        if not consumed:
            self.accepted_queue.put(connection)
        self.recorder.record(
            "state", "accepted",
            conn=request.connection_id, peer=request.src_node,
            fc=config.flow_control, ec=config.error_control,
            interface=config.interface,
        )
        self.tracer.emit(
            "node", "accepted", conn_id=request.connection_id, peer=request.src_node
        )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _timer_loop(self) -> None:
        while not self._closed:
            self.pkg.sleep(self.config.timer_tick)
            now = self.clock.now()
            for connection in self.connections():
                # Inline idle-skip: at 10k connections a Python call per
                # connection per tick is the node's single largest
                # standing cost (~1.5 us each, 20x/s), so the due-check
                # reads the deadline slots directly and only descends
                # into on_timer_tick for connections with a timer armed.
                # Unlocked reads are safe: a torn read at worst delays
                # one deadline by a tick, same as the pre-check race
                # inside on_timer_tick itself.
                ec_at = connection._ec_timer_at
                fc_at = connection._fc_ready_at
                gc_at = (
                    connection._recv_gc_at
                    if connection._event_endpoint is not None else None
                )
                if (
                    (ec_at is not None and now >= ec_at)
                    or (fc_at is not None and now >= fc_at)
                    or (gc_at is not None and now >= gc_at)
                ):
                    connection.on_timer_tick(now)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time publisher (registered with the metrics registry).

        Live connections publish per-connection gauges; connections that
        already closed contribute to the node-level totals accumulated by
        :meth:`_forget_connection`, so an end-of-run snapshot still shows
        the full traffic picture.
        """
        for connection in self.connections():
            connection.publish_metrics(registry)
        registry.gauge("ncs_connections_open", node=self.name).set(
            len(self.connections())
        )
        for pdu_type, count in list(self._ctrl_pdu_sent.items()):
            registry.gauge(
                "ncs_control_pdus_sent", node=self.name, type=pdu_type
            ).set(count)
        for key, value in list(self._closed_conn_totals.items()):
            registry.gauge(
                "ncs_closed_conn_total_" + key, node=self.name
            ).set(value)
        if self.pressure is not None:
            snap = self.pressure.snapshot()
            for key in (
                "used",
                "peak_used",
                "admission_rejections",
                "admission_waits",
                "deliveries_shed",
                "shed_bytes",
                "forced_bytes",
            ):
                registry.gauge("ncs_pressure_" + key, node=self.name).set(
                    snap[key]
                )
            for site, value in snap["sites"].items():
                registry.gauge(
                    "ncs_pressure_site_bytes", node=self.name, site=site
                ).set(value)

    def _new_conn_id(self) -> int:
        while True:
            conn_id = random.getrandbits(32)
            with self._conn_lock:
                taken = conn_id in self._connections
            if not taken and conn_id not in self._pending:
                return conn_id

    def _forget_connection(self, conn_id: int) -> None:
        with self._conn_lock:
            connection = self._connections.pop(conn_id, None)
        if connection is not None and self.metrics is not None:
            for key, value in connection.metrics_totals().items():
                if isinstance(value, (int, float)):
                    self._closed_conn_totals[key] = (
                        self._closed_conn_totals.get(key, 0) + value
                    )
        if self.pressure is not None:
            self.pressure.forget_connection(conn_id)
