"""Heartbeat-based peer failure detection over the control plane.

The paper credits the separated control path with enabling "dynamic
group communications and fault tolerance capability" (§2, SCI
discussion).  This module supplies the fault-tolerance half: a
:class:`FailureDetector` periodically probes monitored peers with
:class:`~repro.protocol.pdus.HeartbeatPdu` requests on the control
links; every NCS node answers probes automatically (see
``Node._route_pdu``), and a peer whose replies stop for
``suspect_after`` seconds is reported failed.

Request/reply discrimination rides the sequence number's top bit so the
single PDU type serves both directions without replies re-triggering
replies.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.protocol.pdus import HeartbeatPdu

REPLY_BIT = 0x80000000


def is_reply(pdu: HeartbeatPdu) -> bool:
    return bool(pdu.sequence & REPLY_BIT)


def make_reply(
    node_name: str, request: HeartbeatPdu, now: float = 0.0
) -> HeartbeatPdu:
    """Build the reply: echo the prober's ``t_send``, stamp our clock.

    The echoed/stamped pair turns every heartbeat round-trip into one
    NTP-style clock-offset sample at the prober.
    """
    return HeartbeatPdu(
        node_name,
        request.sequence | REPLY_BIT,
        t_send=request.t_send,
        t_reply=now,
    )


class PeerStatus:
    """Monitoring state for one peer."""

    __slots__ = ("address", "last_reply_at", "suspected", "probes", "replies")

    def __init__(self, address: Tuple[str, int], now: float):
        self.address = address
        self.last_reply_at = now
        self.suspected = False
        self.probes = 0
        self.replies = 0


class FailureDetector:
    """Probe monitored peers; report suspects and recoveries.

    ``on_failure(address)`` fires once when a peer goes silent past
    ``suspect_after``; ``on_recovery(address)`` fires if it speaks again.
    """

    def __init__(
        self,
        node,
        interval: float = 0.05,
        suspect_after: float = 0.3,
        on_failure: Optional[Callable[[Tuple[str, int]], None]] = None,
        on_recovery: Optional[Callable[[Tuple[str, int]], None]] = None,
    ):
        if suspect_after <= interval:
            raise ValueError(
                "suspect_after must exceed the probe interval "
                f"({suspect_after} <= {interval})"
            )
        self.node = node
        self.interval = interval
        self.suspect_after = suspect_after
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        #: Additional (on_failure, on_recovery) listener pairs; recovery
        #: supervisors subscribe here without displacing the app's
        #: callbacks.
        self._listeners: list = []
        self._peers: Dict[Tuple[str, int], PeerStatus] = {}
        self._lock = threading.Lock()
        self._sequence = 0
        self._running = True
        node.heartbeat_reply_handler = self._on_reply
        node.failure_detector = self
        self._thread = node.pkg.spawn(
            self._probe_loop, name=f"{node.name}-hbdetector"
        )

    # ------------------------------------------------------------------

    def add_listener(
        self,
        on_failure: Optional[Callable[[Tuple[str, int]], None]] = None,
        on_recovery: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        """Subscribe an extra (failure, recovery) callback pair.

        Listeners fire after the constructor-supplied callbacks, with
        the same once-per-outage semantics.
        """
        with self._lock:
            self._listeners.append((on_failure, on_recovery))

    def _fire_failure(self, address: Tuple[str, int]) -> None:
        if self.on_failure is not None:
            self.on_failure(address)
        for fail, _recover in list(self._listeners):
            if fail is not None:
                fail(address)

    def _fire_recovery(self, address: Tuple[str, int]) -> None:
        if self.on_recovery is not None:
            self.on_recovery(address)
        for _fail, recover in list(self._listeners):
            if recover is not None:
                recover(address)

    def monitor(self, peer: Tuple[str, int]) -> None:
        """Start probing ``peer`` (a node's control address)."""
        with self._lock:
            self._peers.setdefault(
                peer, PeerStatus(peer, self.node.clock.now())
            )

    def unmonitor(self, peer: Tuple[str, int]) -> None:
        with self._lock:
            self._peers.pop(peer, None)

    def status(self, peer: Tuple[str, int]) -> Optional[PeerStatus]:
        with self._lock:
            return self._peers.get(peer)

    def alive_peers(self) -> list:
        with self._lock:
            return [
                status.address
                for status in self._peers.values()
                if not status.suspected
            ]

    def peers(self) -> Dict[Tuple[str, int], PeerStatus]:
        """Snapshot of every monitored peer's status (for node.health())."""
        with self._lock:
            return dict(self._peers)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------

    def _probe_loop(self) -> None:
        while self._running and not self.node._closed:
            self.node.pkg.sleep(self.interval)
            now = self.node.clock.now()
            with self._lock:
                targets = list(self._peers.values())
            for status in targets:
                self._probe(status)
                self._judge(status, now)

    def _probe(self, status: PeerStatus) -> None:
        self._sequence = (self._sequence + 1) & 0x7FFFFFFF
        try:
            link = self.node.control_link(status.address)
        except OSError:
            return  # dial failure counts as silence; _judge handles it
        status.probes += 1
        self.node.control_send(
            link,
            HeartbeatPdu(
                self.node.name,
                self._sequence,
                t_send=self.node.clock.now(),
            ),
        )

    def _judge(self, status: PeerStatus, now: float) -> None:
        silent_for = now - status.last_reply_at
        if not status.suspected and silent_for > self.suspect_after:
            status.suspected = True
            self.node.recorder.record(
                "health", "peer_suspected",
                peer=f"{status.address[0]}:{status.address[1]}",
                silent_for=round(silent_for, 3),
            )
            # One dump per suspicion: the ``suspected`` flag dedupes
            # (it only flips back on recovery).
            self.node.recorder.auto_dump(
                f"peer {status.address[0]}:{status.address[1]} suspected",
                silent_for=round(silent_for, 3),
            )
            self._fire_failure(status.address)

    def _on_reply(self, pdu: HeartbeatPdu, link) -> None:
        """Called by the node's control reader for heartbeat replies."""
        try:
            address = link.peer_address()
        except OSError:
            return
        now = self.node.clock.now()
        if pdu.t_send and pdu.t_reply:
            # NTP-style sample: assume symmetric paths, so the peer's
            # t_reply stamp sits at the round-trip midpoint.
            rtt = now - pdu.t_send
            clock_sync = getattr(self.node, "clock_sync", None)
            if clock_sync is not None and rtt >= 0:
                offset = pdu.t_reply - (pdu.t_send + rtt / 2.0)
                clock_sync.observe(pdu.node, offset=offset, rtt=rtt)
                if self.node.tracer.enabled:
                    # Raw samples land in the trace so the offline
                    # merger can min-RTT filter them itself.
                    self.node.tracer.emit(
                        "clock", "offset",
                        peer=pdu.node, offset=offset, rtt=rtt,
                    )
        recovered = None
        with self._lock:
            # Replies come back on the link we dialed; match by the
            # dialed address the link is cached under.
            for status in self._peers.values():
                if self._link_matches(status.address, address):
                    status.replies += 1
                    status.last_reply_at = now
                    if status.suspected:
                        status.suspected = False
                        recovered = status.address
                        self.node.recorder.record(
                            "health", "peer_recovered",
                            peer=f"{status.address[0]}:{status.address[1]}",
                        )
                    break
        if recovered is not None:
            # Fire outside the lock: listeners may call back into us.
            self._fire_recovery(recovered)

    def _link_matches(
        self, monitored: Tuple[str, int], link_peer: Tuple[str, int]
    ) -> bool:
        # The reply link's peer port is the peer's *listening* port when
        # we dialed it, which is exactly the monitored address.
        return monitored == link_peer
