"""Send-completion handles.

``NCS_send`` on a reliable connection returns immediately with a handle;
the message is complete when the final all-clear acknowledgment bitmap
arrives.  Handles use OS events rather than package primitives so that
application code outside the node's thread package can wait on them.
"""

from __future__ import annotations

import enum
import threading
from typing import Optional

from repro.core.errors import SendFailedError


class SendStatus(enum.Enum):
    PENDING = "pending"
    COMPLETED = "completed"
    FAILED = "failed"


class SendHandle:
    """Tracks one outgoing message through the error control engine."""

    def __init__(self, msg_id: int, size: int):
        self.msg_id = msg_id
        self.size = size
        self._event = threading.Event()
        self._status = SendStatus.PENDING

    @property
    def status(self) -> SendStatus:
        return self._status

    def _resolve(self, status: SendStatus) -> None:
        self._status = status
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until completion/failure.  Raises on failure; returns
        False on timeout, True on success."""
        if not self._event.wait(timeout):
            return False
        if self._status is SendStatus.FAILED:
            raise SendFailedError(self.msg_id)
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"SendHandle(msg_id={self.msg_id}, status={self._status.value})"
