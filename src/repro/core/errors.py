"""Exception hierarchy for the NCS runtime."""

from __future__ import annotations


class NcsError(Exception):
    """Base class for all NCS runtime errors."""


class ConnectTimeoutError(NcsError):
    """Connection establishment did not complete within the deadline."""


class ConnectRejectedError(NcsError):
    """The peer's Master Thread declined the connection request."""

    def __init__(self, reason: str):
        super().__init__(f"connection rejected by peer: {reason}")
        self.reason = reason


class ConnectionClosedError(NcsError):
    """Operation on a connection that is closed (locally or by peer)."""


class SendFailedError(NcsError):
    """A reliable send exhausted its retransmission budget."""

    def __init__(self, msg_id: int):
        super().__init__(f"message {msg_id} could not be delivered")
        self.msg_id = msg_id
