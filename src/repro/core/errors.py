"""Exception hierarchy for the NCS runtime."""

from __future__ import annotations


class NcsError(Exception):
    """Base class for all NCS runtime errors."""


class NCSTimeout(NcsError, TimeoutError):
    """A primitive's deadline expired before the operation finished.

    Every timeout the NCS API surfaces raises this one type (it also
    subclasses the builtin :class:`TimeoutError`, so pre-existing
    ``except TimeoutError`` handlers keep working).  See the contract
    note in :mod:`repro.core.primitives`.
    """


class NCSUnavailable(NcsError):
    """The connection's recovery budget is exhausted.

    Raised by a supervised connection (see :mod:`repro.recovery`) after
    reconnect retries and interface failover have all failed — the
    graceful-degradation signal: callers get a typed error instead of a
    hang.
    """

    def __init__(self, peer: str, attempts: int, reason: str = ""):
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"peer {peer} unavailable after {attempts} recovery attempts{detail}"
        )
        self.peer = peer
        self.attempts = attempts
        self.reason = reason


class NCSOverloaded(NcsError):
    """The node's memory budget rejected a send (fail-fast admission).

    Raised by ``NCS_send`` on a connection whose admission policy is
    ``fail-fast`` when the reservation would exceed the node or
    per-connection ceiling, and by ``shed-oldest`` when nothing is left
    to shed.  Typed so applications can distinguish transient overload
    (back off and retry) from delivery failure.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        requested: int = 0,
        used: int = 0,
        limit: int = 0,
    ):
        super().__init__(message)
        self.site = site
        self.requested = requested
        self.used = used
        self.limit = limit


class LinkDialError(NcsError, ConnectionError):
    """Dialing a peer's control or data endpoint failed.

    Wraps the socket-layer OSError so callers handle one typed NCS
    error; subclassing :class:`ConnectionError` (itself an OSError)
    keeps ``except OSError`` paths — like the heartbeat prober — intact.
    """


class ConnectTimeoutError(NCSTimeout):
    """Connection establishment did not complete within the deadline."""


class ConnectRejectedError(NcsError):
    """The peer's Master Thread declined the connection request."""

    def __init__(self, reason: str):
        super().__init__(f"connection rejected by peer: {reason}")
        self.reason = reason


class ConnectionClosedError(NcsError):
    """Operation on a connection that is closed (locally or by peer)."""


class SendFailedError(NcsError):
    """A reliable send exhausted its retransmission budget."""

    def __init__(self, msg_id: int):
        super().__init__(f"message {msg_id} could not be delivered")
        self.msg_id = msg_id
