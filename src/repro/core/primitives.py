"""Paper-style procedural primitives.

The original NCS API is procedural (``NCS_send``, ``NCS_recv``,
``NCS_thread_yield`` ...).  These thin wrappers give examples and ported
code that exact surface over the object API; new code should prefer the
methods on :class:`~repro.core.connection.Connection` directly.

Timeout contract
----------------

Every NCS primitive handles deadlines the same way — no raw socket
errors, no mixed conventions:

* ``NCS_send(wait=True, timeout=T)`` raises
  :class:`~repro.core.errors.NCSTimeout` if delivery is unconfirmed
  after ``T`` seconds (the message may still complete later; the handle
  remains valid).  ``NCSTimeout`` subclasses the builtin
  :class:`TimeoutError`, so generic handlers keep working.
* ``NCS_recv(timeout=T)`` returns ``None`` on timeout — polling for "no
  message yet" is the normal case, not an error.  It raises
  :class:`~repro.core.errors.ConnectionClosedError` only when the
  connection is closed *and* drained.
* Connection establishment raises
  :class:`~repro.core.errors.ConnectTimeoutError` (an ``NCSTimeout``
  subclass) past its deadline, and
  :class:`~repro.core.errors.LinkDialError` when the peer cannot be
  dialed at all.
* A supervised connection (see :mod:`repro.recovery`) whose recovery
  budget is exhausted raises
  :class:`~repro.core.errors.NCSUnavailable` instead of hanging.
* Under memory pressure (see :mod:`repro.pressure`) admission depends
  on the connection's policy: ``fail-fast`` raises
  :class:`~repro.core.errors.NCSOverloaded` immediately when the budget
  cannot fit the message; ``block`` (the default) waits for budget up
  to ``timeout`` and raises ``NCSTimeout`` at the deadline —
  indistinguishable, by design, from a slow network; ``shed-oldest``
  evicts the stalest undelivered message to make room and only raises
  ``NCSOverloaded`` when nothing is left to shed.
"""

from __future__ import annotations

from typing import Optional

from repro.core.connection import Connection
from repro.core.handles import SendHandle


def NCS_send(
    connection: Connection,
    payload: bytes,
    wait: bool = False,
    timeout: Optional[float] = None,
    instrument: Optional[dict] = None,
) -> SendHandle:
    """Transmit ``payload`` on ``connection`` (paper Fig. 4 steps 1-4).

    ``instrument`` (a dict) collects the per-stage timestamps used by the
    Table I overhead decomposition (see :mod:`repro.obs.profiler`).
    """
    return connection.send(payload, wait=wait, timeout=timeout, instrument=instrument)


def NCS_recv(
    connection: Connection, timeout: Optional[float] = None
) -> Optional[bytes]:
    """Receive the next message (paper Fig. 4 steps 5-10)."""
    return connection.recv(timeout)


def NCS_thread_spawn(node, fn, *args, name: str = "compute"):
    """Spawn a Compute Thread on the node's thread package."""
    return node.pkg.spawn(fn, *args, name=name)


def NCS_thread_yield(node) -> None:
    """Yield the processor to other ready threads (§4.1)."""
    node.pkg.yield_control()


def NCS_thread_sleep(node, seconds: float) -> None:
    """Sleep cooperatively on the node's thread package."""
    node.pkg.sleep(seconds)
