"""Paper-style procedural primitives.

The original NCS API is procedural (``NCS_send``, ``NCS_recv``,
``NCS_thread_yield`` ...).  These thin wrappers give examples and ported
code that exact surface over the object API; new code should prefer the
methods on :class:`~repro.core.connection.Connection` directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.connection import Connection
from repro.core.handles import SendHandle


def NCS_send(
    connection: Connection,
    payload: bytes,
    wait: bool = False,
    timeout: Optional[float] = None,
    instrument: Optional[dict] = None,
) -> SendHandle:
    """Transmit ``payload`` on ``connection`` (paper Fig. 4 steps 1-4).

    ``instrument`` (a dict) collects the per-stage timestamps used by the
    Table I overhead decomposition (see :mod:`repro.obs.profiler`).
    """
    return connection.send(payload, wait=wait, timeout=timeout, instrument=instrument)


def NCS_recv(
    connection: Connection, timeout: Optional[float] = None
) -> Optional[bytes]:
    """Receive the next message (paper Fig. 4 steps 5-10)."""
    return connection.recv(timeout)


def NCS_thread_spawn(node, fn, *args, name: str = "compute"):
    """Spawn a Compute Thread on the node's thread package."""
    return node.pkg.spawn(fn, *args, name=name)


def NCS_thread_yield(node) -> None:
    """Yield the processor to other ready threads (§4.1)."""
    node.pkg.yield_control()


def NCS_thread_sleep(node, seconds: float) -> None:
    """Sleep cooperatively on the node's thread package."""
    node.pkg.sleep(seconds)
