"""Per-connection and per-node configuration.

The heart of the paper's flexibility claim: *every* connection chooses
its own flow control algorithm, error control algorithm, communication
interface, SDU size and QOS knobs at establishment time, and the
primitives behave identically afterwards ("the underlying operations are
transparent to users", §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errorcontrol import ALGORITHMS as EC_ALGORITHMS
from repro.flowcontrol import ALGORITHMS as FC_ALGORITHMS
from repro.interfaces import INTERFACES
from repro.interfaces.aci import ACI_MAX_SDU
from repro.protocol.segmentation import DEFAULT_SDU_SIZE, validate_sdu_size


@dataclass(frozen=True)
class ConnectionConfig:
    """Everything negotiated at connection setup.

    Defaults follow the paper: credit-based flow control, selective
    repeat error control, 4 KB SDUs.  ``mode`` selects the threaded data
    path (default) or the §4.2 thread-bypass procedures.
    """

    flow_control: str = "credit"
    error_control: str = "selective_repeat"
    interface: str = "sci"
    sdu_size: int = DEFAULT_SDU_SIZE
    #: Data-plane variant: "threaded" (Send/Receive thread pair, the
    #: paper's §4 default), "bypass" (§4.2 inline procedures), or
    #: "event" (selector-loop plane, repro.eventplane).
    mode: str = "threaded"  # "threaded" | "bypass" | "event"
    #: Most SDUs/frames a single vectored transmit or receive drain may
    #: coalesce.  1 restores the pre-batching per-frame data path (one
    #: syscall and one credit PDU per packet); higher values trade a
    #: little per-packet latency under load for far fewer syscalls and
    #: control PDUs.
    batch_max: int = 64

    # Flow control knobs.
    initial_credits: int = 4
    max_credits: int = 64
    #: Seconds a credit sender stays stalled at zero credits before
    #: raising a two-phase resync request (and, if that goes entirely
    #: unanswered for the same span again, unilaterally restoring its
    #: pool).  None keeps the engine default; raise it to effectively
    #: disable resync (e.g. to observe a wedged connection).
    fc_resync_timeout: Optional[float] = None
    window_size: int = 8
    rate_pps: float = 1000.0
    rate_burst: float = 8.0

    # Error control knobs.
    retransmit_timeout: float = 0.2
    max_retries: int = 8
    gbn_window: int = 16

    # Fault injection on the outgoing data path (testing / media modeling).
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    fault_seed: int = 0
    #: Full fault schedule (repro.faults.FaultPlan) applied to this
    #: connection's data interface; None defers to the NCS_FAULTS
    #: environment variable.  Supersedes loss_rate/corrupt_rate when set.
    fault_plan: Optional[object] = None

    #: Admission policy NCS_send applies when the node's MemoryBudget is
    #: full: "block" (wait, NCSTimeout at the deadline), "fail-fast"
    #: (typed NCSOverloaded immediately), or "shed-oldest" (evict the
    #: stalest queued delivery to make room).  None defers to the node's
    #: PressureConfig.policy.
    admission: Optional[str] = None

    def __post_init__(self):
        if self.flow_control not in FC_ALGORITHMS:
            raise ValueError(
                f"unknown flow control {self.flow_control!r}; "
                f"choose from {FC_ALGORITHMS}"
            )
        if self.error_control not in EC_ALGORITHMS:
            raise ValueError(
                f"unknown error control {self.error_control!r}; "
                f"choose from {EC_ALGORITHMS}"
            )
        if self.interface not in INTERFACES:
            raise ValueError(
                f"unknown interface {self.interface!r}; choose from {INTERFACES}"
            )
        if self.mode not in ("threaded", "bypass", "event"):
            raise ValueError(
                f"mode must be 'threaded', 'bypass' or 'event', got {self.mode!r}"
            )
        validate_sdu_size(self.sdu_size)
        if self.interface == "aci" and self.sdu_size > ACI_MAX_SDU:
            raise ValueError(
                f"ACI caps SDUs at {ACI_MAX_SDU} bytes (ATM API restriction, "
                f"paper §3.2); requested {self.sdu_size}"
            )
        if self.initial_credits < 1:
            raise ValueError("initial_credits must be >= 1")
        if self.fc_resync_timeout is not None and self.fc_resync_timeout <= 0:
            raise ValueError("fc_resync_timeout must be > 0")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1 (1 disables batching)")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be > 0")
        if self.admission is not None and self.admission not in (
            "block",
            "fail-fast",
            "shed-oldest",
        ):
            raise ValueError(
                "admission must be None, 'block', 'fail-fast', or "
                f"'shed-oldest'; got {self.admission!r}"
            )

    def with_overrides(self, **changes) -> "ConnectionConfig":
        """A copy with some fields replaced (validation re-runs)."""
        return replace(self, **changes)

    #: Canonical presets from the paper's multimedia scenario (Fig. 2).
    @classmethod
    def media_stream(cls, interface: str = "aci", rate_pps: float = 2000.0) -> "ConnectionConfig":
        """Audio/video: no flow control, no error control, low latency."""
        return cls(
            flow_control="none",
            error_control="none",
            interface=interface,
            rate_pps=rate_pps,
        )

    @classmethod
    def reliable_data(cls, interface: str = "sci") -> "ConnectionConfig":
        """Data stream: reliable, credit-controlled transfer."""
        return cls(
            flow_control="credit",
            error_control="selective_repeat",
            interface=interface,
        )


def _env_flag(name: str) -> bool:
    import os

    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


@dataclass
class NodeConfig:
    """Node-level settings."""

    name: str
    host: str = "127.0.0.1"
    control_port: int = 0  # 0 = ephemeral
    thread_package: str = "kernel"  # "kernel" | "user"
    #: HPI fabric shared with cluster peers (None = module default).
    hpi_fabric: object = None
    #: Timer thread tick (drives retransmission + rate pacing).
    timer_tick: float = 0.005
    #: Enable the internal event tracer.  None defers to the NCS_TRACE
    #: environment variable (documented in README), so examples and
    #: benchmarks can switch tracing on without code edits.
    trace: Optional[bool] = None
    #: Publish runtime metrics into the process metrics registry.  None
    #: defers to the NCS_METRICS environment variable.
    metrics: Optional[bool] = None
    #: Registry to publish into when metrics are on (None = the process
    #: default from repro.obs).
    metrics_registry: object = None
    #: Keep a bounded FlightRecorder ring of recent protocol events on
    #: this node.  None defers to NCS_FLIGHT; unlike tracing/metrics the
    #: recorder defaults ON (a ring append is cheap, and anomaly
    #: post-mortems need the events from *before* enabling anything).
    flight_recorder: Optional[bool] = None
    #: FlightRecorder ring capacity (events retained).
    recorder_capacity: int = 512
    #: Run the health watchdog thread on this node.  None defers to
    #: NCS_WATCHDOG (default off: ``node.health()`` still classifies on
    #: demand without the thread).
    watchdog: Optional[bool] = None
    #: Watchdog sampling period (seconds).
    watchdog_period: float = 0.25
    #: Overload-protection settings (repro.pressure.PressureConfig).
    #: None defers to the NCS_PRESSURE_* environment knobs.
    pressure: Optional[object] = None
    #: Ceiling for the batch_max a *peer* may request on a
    #: ConnectRequestPdu; a hostile or buggy peer must not pick our
    #: memory profile (values above are clamped, non-positive rejected).
    batch_max_ceiling: int = 1024
    #: Collector control address ("host:port") this node ships telemetry
    #: snapshots to.  None defers to the NCS_TELEMETRY environment
    #: variable; empty/unset means no exporter thread is started.
    telemetry: Optional[str] = None
    #: Telemetry export period (seconds).  None defers to
    #: NCS_TELEMETRY_INTERVAL (default 0.25).
    telemetry_interval: Optional[float] = None
    #: Latency X-ray sampling (repro.obs.xray): an XrayConfig, a spec
    #: string like "64" / "1/64;seed=7", or False to force it off.  None
    #: defers to the NCS_XRAY environment variable (unset = off).
    xray: Optional[object] = None
    #: Default data plane for connections this node originates or
    #: accepts: "threaded" (per-connection Send/Receive threads) or
    #: "event" (one selector loop multiplexing every data interface).
    #: None defers to NCS_DATA_PLANE (unset = "threaded").  Individual
    #: connections may still pin mode="bypass"/"threaded" explicitly.
    data_plane: Optional[str] = None

    def data_plane_mode(self) -> str:
        """Resolve the node's data plane: explicit, env, or threaded."""
        plane = self.data_plane
        if plane is None:
            import os

            plane = os.environ.get("NCS_DATA_PLANE", "").strip().lower()
        if not plane:
            return "threaded"
        if plane not in ("threaded", "event"):
            raise ValueError(
                f"data_plane must be 'threaded' or 'event', got {plane!r}"
            )
        return plane

    def pressure_config(self):
        """Resolve the effective PressureConfig (explicit or from env)."""
        if self.pressure is not None:
            return self.pressure
        from repro.pressure import pressure_from_env

        return pressure_from_env()

    def trace_enabled(self) -> bool:
        return self.trace if self.trace is not None else _env_flag("NCS_TRACE")

    def metrics_enabled(self) -> bool:
        return self.metrics if self.metrics is not None else _env_flag("NCS_METRICS")

    def flight_recorder_enabled(self) -> bool:
        if self.flight_recorder is not None:
            return self.flight_recorder
        import os

        raw = os.environ.get("NCS_FLIGHT", "").strip().lower()
        if not raw:
            return True  # default on
        return raw in ("1", "true", "yes", "on")

    def watchdog_enabled(self) -> bool:
        return self.watchdog if self.watchdog is not None else _env_flag("NCS_WATCHDOG")

    def telemetry_target(self) -> Optional[tuple]:
        """Collector ``(host, port)`` to export to, or None (no export)."""
        raw = self.telemetry
        if raw is None:
            import os

            raw = os.environ.get("NCS_TELEMETRY", "")
        raw = raw.strip()
        if not raw:
            return None
        host, _, port = raw.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"telemetry target must be 'host:port', got {raw!r}"
            )
        return (host, int(port))

    def xray_config(self):
        """Resolve the effective XrayConfig, or None (sampling off)."""
        from repro.obs.xray import XrayConfig

        if self.xray is not None:
            if self.xray is False:
                return None
            if isinstance(self.xray, XrayConfig):
                return self.xray
            return XrayConfig.parse(str(self.xray))
        return XrayConfig.from_env()

    def telemetry_export_interval(self) -> float:
        if self.telemetry_interval is not None:
            return self.telemetry_interval
        import os

        raw = os.environ.get("NCS_TELEMETRY_INTERVAL", "").strip()
        return float(raw) if raw else 0.25
