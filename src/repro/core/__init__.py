"""NCS core: nodes, connections, and the NCS_send/NCS_recv primitives.

This is the paper's primary contribution assembled from the substrates:
a multithreaded message-passing node with separated control and data
planes, per-connection data transfer threads, runtime-selectable flow
control, error control and communication interfaces, and a thread-bypass
"procedure" variant of the primitives (§4.2).
"""

from repro.core.config import ConnectionConfig, NodeConfig
from repro.core.errors import (
    ConnectionClosedError,
    ConnectRejectedError,
    ConnectTimeoutError,
    LinkDialError,
    NcsError,
    NCSTimeout,
    NCSUnavailable,
    SendFailedError,
)
from repro.core.handles import SendHandle, SendStatus
from repro.core.connection import Connection
from repro.core.heartbeat import FailureDetector
from repro.core.node import Node

__all__ = [
    "Connection",
    "FailureDetector",
    "ConnectionClosedError",
    "ConnectionConfig",
    "ConnectRejectedError",
    "ConnectTimeoutError",
    "LinkDialError",
    "NcsError",
    "NCSTimeout",
    "NCSUnavailable",
    "Node",
    "NodeConfig",
    "SendFailedError",
    "SendHandle",
    "SendStatus",
]
