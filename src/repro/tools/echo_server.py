"""Echo server: accept NCS connections and echo every message.

Usage:
    python -m repro.tools.echo_server [--port PORT] [--name NAME]
                                      [--thread-package kernel|user]

Prints the control address clients should dial, then serves until
interrupted.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Node, NodeConfig


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0,
                        help="control port (default: ephemeral)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--name", default="echo-server")
    parser.add_argument("--thread-package", choices=("kernel", "user"),
                        default="kernel")
    parser.add_argument("--max-connections", type=int, default=0,
                        help="exit after serving this many (0 = forever)")
    return parser


def serve(node: Node, max_connections: int = 0, echo_limit: int = 0) -> int:
    """Accept-and-echo loop; returns connections served."""
    served = 0
    while max_connections == 0 or served < max_connections:
        connection = node.accept(timeout=0.5)
        if connection is None:
            if node._closed:
                break
            continue
        served += 1
        node.pkg.spawn(_echo_loop, connection, echo_limit,
                       name=f"echo-{connection.conn_id}")
    return served


def _echo_loop(connection, echo_limit: int) -> None:
    echoed = 0
    while not connection.closed:
        try:
            message = connection.recv(timeout=0.5)
        except Exception:
            return
        if message is None:
            continue
        connection.send(message)
        echoed += 1
        if echo_limit and echoed >= echo_limit:
            return


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    node = Node(NodeConfig(
        name=args.name,
        host=args.host,
        control_port=args.port,
        thread_package=args.thread_package,
    ))
    host, port = node.address
    print(f"LISTENING {host}:{port}", flush=True)
    try:
        serve(node, args.max_connections)
    except KeyboardInterrupt:
        pass
    finally:
        node.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
