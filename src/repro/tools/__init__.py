"""Command-line tools for running NCS across real processes.

* ``python -m repro.tools.echo_server`` — serve echo on every accepted
  connection;
* ``python -m repro.tools.echo_client`` — connect, sweep message sizes,
  print a latency table (the paper's §4.3 echo benchmark, live);
* ``python -m repro.tools.ping`` — one-shot reachability + RTT probe;
* ``python -m repro.tools.ncs_stat`` — render runtime metrics snapshots
  and trace summaries (see :mod:`repro.obs`).

These give the library a multi-process story: the test suite runs
everything in one process for determinism, but the wire protocol is
process-agnostic, and these tools exercise it across real OS processes.
"""
