"""Echo client: the paper's §4.3 roundtrip benchmark against a live server.

Usage:
    python -m repro.tools.echo_client HOST:PORT
        [--sizes 1,1024,4096,65536] [--iterations 100]
        [--interface sci|aci|hpi] [--flow-control credit|window|rate|none]
        [--error-control selective_repeat|go_back_n|none]
        [--mode threaded|bypass]

Times are averaged over the iterations after discarding the best and
worst samples, exactly as the paper measures.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.runner import format_table, size_label
from repro.core import ConnectionConfig, Node, NodeConfig
from repro.util.stats import trimmed_mean

DEFAULT_SIZES = "1,1024,4096,8192,16384,32768,65536"


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("server", help="HOST:PORT of a repro echo server")
    parser.add_argument("--sizes", default=DEFAULT_SIZES)
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--interface", default="sci",
                        choices=("sci", "aci", "hpi"))
    parser.add_argument("--flow-control", default="credit",
                        choices=("credit", "window", "rate", "none"))
    parser.add_argument("--error-control", default="selective_repeat",
                        choices=("selective_repeat", "go_back_n", "none"))
    parser.add_argument("--mode", default="threaded",
                        choices=("threaded", "bypass"))
    return parser


def run_sweep(connection, sizes, iterations) -> dict:
    """Roundtrip seconds (trimmed mean) per size."""
    results = {}
    for size in sizes:
        payload = b"x" * size
        samples = []
        for _ in range(iterations):
            start = time.perf_counter()
            connection.send(payload)
            reply = connection.recv(timeout=30.0)
            if reply is None:
                raise RuntimeError(f"echo of {size} B timed out")
            samples.append(time.perf_counter() - start)
        results[size] = trimmed_mean(samples)
    return results


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    host, _, port = args.server.rpartition(":")
    sizes = [int(s) for s in args.sizes.split(",") if s]
    node = Node(NodeConfig(name="echo-client"))
    try:
        connection = node.connect(
            (host, int(port)),
            ConnectionConfig(
                interface=args.interface,
                flow_control=args.flow_control,
                error_control=args.error_control,
                mode=args.mode,
            ),
            peer_name="echo-server",
        )
        results = run_sweep(connection, sizes, args.iterations)
        rows = [(size_label(s), results[s] * 1e6) for s in sizes]
        print(format_table(
            f"Echo roundtrip (us, trimmed mean of {args.iterations}) — "
            f"{args.interface}/{args.flow_control}/{args.error_control}"
            f"/{args.mode}",
            ("size", "rtt_us"),
            rows,
            col_width=14,
        ), flush=True)
    finally:
        node.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
