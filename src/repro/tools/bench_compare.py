"""Diff two persisted benchmark runs and flag regressions.

Usage::

    python -m repro.tools.bench_compare BASELINE.json CURRENT.json \\
        [--threshold 0.25] [--key SUBSTR] [--json]

Both inputs are ``BENCH_<name>.json`` records written by
:func:`repro.bench.persist.persist_run`.  Every numeric leaf shared by
the two results is compared; metrics are assumed lower-is-better
(latencies, stage costs) unless the key names a rate (``throughput``,
``mbps``, ``per_s``, ``bandwidth``, ``msgs``), which flips the
direction.  A metric that moved the wrong way by more than
``--threshold`` (fractional, default 0.25) is a regression; any
regression makes the exit status 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.persist import BenchResultError, flatten_numeric, load_run

#: Key fragments marking higher-is-better metrics.
HIGHER_IS_BETTER = ("throughput", "mbps", "per_s", "bandwidth", "msgs")

#: Key fragments that are provenance, not measurements.
IGNORED = ("written_at", "git_sha", "schema")


def direction(key: str) -> int:
    """+1 when higher is better, -1 when lower is better."""
    lowered = key.lower()
    return 1 if any(mark in lowered for mark in HIGHER_IS_BETTER) else -1


def compare(
    baseline: dict,
    current: dict,
    threshold: float = 0.25,
    key_filter: Optional[str] = None,
) -> dict:
    """Structured comparison of two benchmark records."""
    base_flat = flatten_numeric(baseline.get("results", {}))
    curr_flat = flatten_numeric(current.get("results", {}))
    rows: List[dict] = []
    for key in sorted(set(base_flat) & set(curr_flat)):
        if key_filter and key_filter not in key:
            continue
        if any(mark in key for mark in IGNORED):
            continue
        old, new = base_flat[key], curr_flat[key]
        if old == 0:
            change = 0.0 if new == 0 else float("inf")
        else:
            change = (new - old) / abs(old)
        # Positive `regress` = moved in the bad direction.
        regress = -change * direction(key)
        rows.append(
            {
                "key": key,
                "baseline": old,
                "current": new,
                "change": change,
                "regression": regress > threshold,
                "improvement": -regress > threshold,
            }
        )
    return {
        "baseline_name": baseline.get("name", "?"),
        "current_name": current.get("name", "?"),
        "baseline_sha": baseline.get("git_sha", "")[:12],
        "current_sha": current.get("git_sha", "")[:12],
        "threshold": threshold,
        "compared": len(rows),
        "only_baseline": sorted(set(base_flat) - set(curr_flat)),
        "only_current": sorted(set(curr_flat) - set(base_flat)),
        "rows": rows,
        "regressions": [row for row in rows if row["regression"]],
    }


def format_report(report: dict) -> str:
    lines = [
        f"bench_compare: {report['baseline_name']} "
        f"[{report['baseline_sha'] or 'no-sha'}] -> "
        f"{report['current_name']} [{report['current_sha'] or 'no-sha'}]  "
        f"(threshold {report['threshold'] * 100:.0f}%)",
    ]
    key_width = max([len(row["key"]) for row in report["rows"]], default=10)
    for row in report["rows"]:
        if row["regression"]:
            marker = "REGRESSION"
        elif row["improvement"]:
            marker = "improved"
        else:
            marker = ""
        lines.append(
            f"  {row['key'].ljust(key_width)}  "
            f"{row['baseline']:>12.4f} -> {row['current']:>12.4f}  "
            f"{row['change'] * 100:>+8.1f}%  {marker}"
        )
    if report["only_baseline"]:
        lines.append(
            f"  (only in baseline: {', '.join(report['only_baseline'][:8])}"
            + (" ..." if len(report["only_baseline"]) > 8 else "")
            + ")"
        )
    if report["only_current"]:
        lines.append(
            f"  (only in current: {', '.join(report['only_current'][:8])}"
            + (" ..." if len(report["only_current"]) > 8 else "")
            + ")"
        )
    count = len(report["regressions"])
    lines.append(
        f"{report['compared']} metrics compared, "
        f"{count} regression{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Compare two BENCH_*.json benchmark records.",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional change counting as a regression (default 0.25)",
    )
    parser.add_argument(
        "--key", default=None, help="only compare metrics containing SUBSTR"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_run(args.baseline)
        current = load_run(args.current)
    except BenchResultError as exc:
        print(f"bench_compare: error: {exc}", file=sys.stderr)
        return 2
    report = compare(baseline, current, args.threshold, args.key)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
