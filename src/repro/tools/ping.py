"""One-shot NCS reachability probe.

Usage:
    python -m repro.tools.ping HOST:PORT [--count 4]

Establishes a connection to a repro echo server and reports per-probe
roundtrip times, ping-style.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import ConnectionConfig, Node, NodeConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("server", help="HOST:PORT of a repro echo server")
    parser.add_argument("--count", type=int, default=4)
    args = parser.parse_args(argv)
    host, _, port = args.server.rpartition(":")
    node = Node(NodeConfig(name="ping"))
    try:
        start = time.perf_counter()
        connection = node.connect(
            (host, int(port)),
            ConnectionConfig(interface="sci", flow_control="none",
                             error_control="none"),
            peer_name="server",
        )
        setup_ms = (time.perf_counter() - start) * 1e3
        print(f"connected to {args.server} in {setup_ms:.2f} ms", flush=True)
        for sequence in range(args.count):
            start = time.perf_counter()
            connection.send(f"ping-{sequence}".encode())
            reply = connection.recv(timeout=5.0)
            elapsed = (time.perf_counter() - start) * 1e6
            status = "ok" if reply is not None else "TIMEOUT"
            print(f"seq={sequence} rtt={elapsed:.1f} us {status}", flush=True)
            if reply is None:
                return 1
    finally:
        node.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
