"""ncs_top — live terminal dashboard over the cluster telemetry plane.

Subcommands::

    python -m repro.tools.ncs_top [demo] [--duration S] [--json]
                                  [--prometheus] [--jsonl FILE]
    python -m repro.tools.ncs_top listen ADDR [--frames N] [--interval S]
                                  [--prometheus] [--jsonl FILE]

* **demo** (the default): spin up an in-process cluster — one collector
  node plus two worker nodes shipping telemetry snapshots over the
  control plane — run echo traffic between the workers, and render the
  dashboard from what the collector aggregates.  ``--json`` prints the
  raw cluster snapshot instead of the dashboard; ``--prometheus`` dumps
  the Prometheus text exposition at the end.
* **listen ADDR**: bind a collector node at ``ADDR`` (``host:port``) and
  refresh the dashboard every ``--interval`` seconds as remote nodes
  (started with ``NCS_TELEMETRY=ADDR``) report in.  ``--frames 0``
  runs until interrupted.

The dashboard shows, per node: health state, budget occupancy, snapshot
kind (full/degraded), sequence holes (= sheds or loss at the source),
and per-connection throughput (derived from the bytes_sent/received
time-series rings), credit stalls, and pressure counters.

Examples::

    python -m repro.tools.ncs_top
    python -m repro.tools.ncs_top demo --prometheus
    python -m repro.tools.ncs_top listen 127.0.0.1:9200 --frames 0 &
    NCS_TELEMETRY=127.0.0.1:9200 python examples/quickstart.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Tuple

# ----------------------------------------------------------------------
# Rendering (pure functions over a Collector — unit-testable)
# ----------------------------------------------------------------------

_BAR_WIDTH = 20


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _human_rate(bytes_per_s: float) -> str:
    for unit in ("B/s", "KB/s", "MB/s", "GB/s"):
        if abs(bytes_per_s) < 1024.0 or unit == "GB/s":
            return f"{bytes_per_s:8.1f} {unit}"
        bytes_per_s /= 1024.0
    return f"{bytes_per_s:8.1f} GB/s"


def _ring_rate(points: List[Tuple[float, float]]) -> float:
    """Counter rate over a ring's window (0.0 if underdetermined)."""
    if len(points) < 2:
        return 0.0
    (t0, v0), (t1, v1) = points[0], points[-1]
    if t1 <= t0:
        return 0.0
    return max(0.0, (v1 - v0) / (t1 - t0))


def render_dashboard(collector, stale_after: float = 2.0) -> str:
    """One text frame of the cluster view (no ANSI, pipe-friendly)."""
    snapshot = collector.cluster_snapshot(stale_after=stale_after)
    lines = [
        f"ncs_top — collector {snapshot['collector']}"
        f" | cluster {snapshot['cluster_state']}"
        f" | snapshots {snapshot['snapshots_received']}"
        f" (missed {snapshot['missed']},"
        f" malformed {snapshot['snapshots_malformed']})",
        "",
    ]
    if not snapshot["nodes"]:
        lines.append("  (no telemetry received yet)")
        return "\n".join(lines) + "\n"
    for entry in snapshot["nodes"]:
        body = entry.get("body", {})
        occupancy = float(body.get("occupancy", 0.0))
        stale = " STALE" if entry["stale"] else ""
        lines.append(
            f"  node {entry['node']:<12} {entry['state']:<10}"
            f" occ {_bar(occupancy)} {occupancy * 100:5.1f}%"
            f"  kind={entry['kind'] or '-'}"
            f" seq={entry['last_sequence']}"
            f" missed={entry['missed']}"
            f" age={entry['age']:.2f}s{stale}"
        )
        view = collector.view(entry["node"])
        xray_conns = body.get("xray", {}).get("conns", {})
        for conn_id, totals in sorted(body.get("conns", {}).items()):
            tx_rate = rx_rate = 0.0
            if view is not None:
                tx_rate = _ring_rate(
                    view.series(f"conns.{conn_id}.bytes_sent")
                )
                rx_rate = _ring_rate(
                    view.series(f"conns.{conn_id}.bytes_received")
                )
            stalls = int(
                totals.get("fc_tx_credit_stalls", 0)
                + totals.get("pressure_credits_withheld", 0)
            )
            line = (
                f"    conn {conn_id:>4} -> {str(totals.get('peer', '?')):<12}"
                f" tx {_human_rate(tx_rate)}"
                f" rx {_human_rate(rx_rate)}"
                f" msgs {int(totals.get('messages_sent', 0))}"
                f"/{int(totals.get('messages_received', 0))}"
                f" stalls {stalls}"
                f" shed {int(totals.get('pressure_deliveries_shed', 0))}"
            )
            xray = xray_conns.get(conn_id)
            if xray and "send_p50_s" in xray:
                # X-ray sampled send latency (entry -> wire departure).
                line += (
                    f" lat p50 {xray['send_p50_s'] * 1e6:7.0f}us"
                    f" p99 {xray['send_p99_s'] * 1e6:7.0f}us"
                )
            lines.append(line)
        pressure = body.get("pressure", {})
        if pressure:
            lines.append(
                f"    pressure used={int(pressure.get('used', 0))}"
                f"/{int(pressure.get('node_bytes', 0))}"
                f" waits={int(pressure.get('admission_waits', 0))}"
                f" rejects={int(pressure.get('admission_rejections', 0))}"
                f" tele_exempt={int(pressure.get('telemetry_exempt_bytes', 0))}B"
                f" tele_sheds={int(pressure.get('telemetry_sheds', 0))}"
            )
        for peer, estimate in sorted(body.get("clock", {}).items()):
            lines.append(
                f"    clock vs {peer}: offset"
                f" {estimate.get('offset', 0.0) * 1e3:+.3f} ms"
                f" (rtt {estimate.get('rtt', 0.0) * 1e3:.3f} ms,"
                f" {estimate.get('samples', 0)} samples)"
            )
    return "\n".join(lines) + "\n"


def _emit_outputs(collector, args) -> None:
    """Shared --prometheus/--jsonl handling for both subcommands."""
    if getattr(args, "prometheus", False):
        from repro.obs.telemetry import render_prometheus

        sys.stdout.write(render_prometheus(collector))
    if getattr(args, "jsonl", None):
        from repro.obs.telemetry import export_jsonl

        written = export_jsonl(collector, args.jsonl)
        print(f"wrote {written} lines to {args.jsonl}")


# ----------------------------------------------------------------------
# demo: in-process cluster
# ----------------------------------------------------------------------


def _cmd_demo(args) -> int:
    from repro import ConnectionConfig, Node
    from repro.core.config import NodeConfig
    from repro.obs.telemetry import Collector

    hub = Node(NodeConfig(name="hub"))
    collector = Collector(hub)
    target = f"{hub.address[0]}:{hub.address[1]}"

    # 1-in-8 X-ray sampling so the dashboard's latency columns and the
    # Prometheus xray series have data within the short demo window.
    alice = Node(
        NodeConfig(name="alice", telemetry=target, telemetry_interval=0.05,
                   xray="8")
    )
    bob = Node(
        NodeConfig(name="bob", telemetry=target, telemetry_interval=0.05,
                   xray="8")
    )
    try:
        config = ConnectionConfig(
            interface="sci",
            flow_control="credit",
            error_control="selective_repeat",
            sdu_size=4096,
        )
        conn = alice.connect(bob.address, config, peer_name="bob")
        peer = bob.accept(timeout=5.0)
        payload = b"t" * args.size
        deadline = time.monotonic() + args.duration
        while time.monotonic() < deadline:
            conn.send(payload, wait=True, timeout=5.0)
            peer.recv(timeout=5.0)
            peer.send(payload, wait=True, timeout=5.0)
            conn.recv(timeout=5.0)
        # Final flush so the dashboard reflects the last exchanges.
        for node in (alice, bob):
            node.telemetry_exporter.export_once()
        time.sleep(0.1)  # let the control plane deliver the flush
        if args.json:
            print(json.dumps(collector.cluster_snapshot(), indent=2,
                             default=repr))
        else:
            sys.stdout.write(render_dashboard(collector))
        _emit_outputs(collector, args)
        return 0 if collector.snapshots_received > 0 else 1
    finally:
        alice.close()
        bob.close()
        hub.close()


# ----------------------------------------------------------------------
# listen: collector for external nodes
# ----------------------------------------------------------------------


def _parse_address(raw: str) -> Tuple[str, int]:
    host, _, port = raw.rpartition(":")
    if not host or not port:
        raise SystemExit(f"ncs_top: ADDR must be host:port, got {raw!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"ncs_top: bad port in {raw!r}")


def _cmd_listen(args) -> int:
    from repro.core.config import NodeConfig
    from repro.core.node import Node
    from repro.obs.telemetry import Collector

    host, port = _parse_address(args.address)
    node = Node(NodeConfig(name="ncs-top", host=host, control_port=port))
    collector = Collector(node)
    print(
        f"ncs_top listening on {node.address[0]}:{node.address[1]} — "
        f"point nodes at it with NCS_TELEMETRY={node.address[0]}:"
        f"{node.address[1]}",
        file=sys.stderr,
    )
    frame = 0
    try:
        while args.frames <= 0 or frame < args.frames:
            time.sleep(args.interval)
            frame += 1
            if args.clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(render_dashboard(collector))
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    finally:
        _emit_outputs(collector, args)
        node.close()
    return 0


# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ncs_top", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="in-process cluster demo")
    demo.add_argument("--duration", type=float, default=1.0,
                      help="seconds of echo traffic (default 1.0)")
    demo.add_argument("--size", type=int, default=8192,
                      help="echo payload bytes (default 8192)")
    demo.add_argument("--json", action="store_true",
                      help="print the raw cluster snapshot as JSON")
    demo.add_argument("--prometheus", action="store_true",
                      help="also dump Prometheus text exposition")
    demo.add_argument("--jsonl", metavar="FILE",
                      help="append the cluster view to FILE as JSONL")

    listen = sub.add_parser("listen", help="collector for external nodes")
    listen.add_argument("address", metavar="ADDR", help="host:port to bind")
    listen.add_argument("--frames", type=int, default=0,
                        help="frames to render before exiting (0 = forever)")
    listen.add_argument("--interval", type=float, default=1.0,
                        help="seconds between frames (default 1.0)")
    listen.add_argument("--clear", action="store_true",
                        help="clear the terminal between frames")
    listen.add_argument("--prometheus", action="store_true",
                        help="dump Prometheus text on exit")
    listen.add_argument("--jsonl", metavar="FILE",
                        help="append the final cluster view to FILE")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "listen":
        return _cmd_listen(args)
    if args.command != "demo":
        # Default subcommand: demo with its own defaults.
        args = parser.parse_args(["demo"] + (argv or sys.argv[1:]))
    return _cmd_demo(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.stderr.close()
        sys.exit(0)
