"""ncs_stat — render NCS runtime metrics, traces, and health.

Subcommands::

    python -m repro.tools.ncs_stat [demo] [--json --iterations N --size B]
    python -m repro.tools.ncs_stat snapshot --load FILE [--json]
    python -m repro.tools.ncs_stat trace FILE
    python -m repro.tools.ncs_stat health [--starve] [--json]
    python -m repro.tools.ncs_stat faults [SPEC]
    python -m repro.tools.ncs_stat recovery [--faults SPEC] [--json]
    python -m repro.tools.ncs_stat xray [--load FILE ...] [--json]
                                        [--output FILE]

* **demo** (the default with no subcommand): run a short in-process echo
  exchange with metrics enabled and print the resulting registry
  snapshot — per-connection byte/message gauges, flow/error-control
  engine counters, control-plane PDU counts, message-size histograms.
* **snapshot --load FILE**: pretty-print a JSON snapshot written earlier
  via ``MetricsRegistry.dump`` (benchmarks write one automatically when
  ``NCS_METRICS_DUMP=path.json`` is set).  A missing or corrupt file
  exits non-zero with a one-line explanation instead of a traceback.
* **trace FILE**: summarize a JSONL trace file produced by
  ``NCS_TRACE=1`` (event counts per category/name plus the distinct
  message ids seen in each plane).
* **health**: run a watchdog-supervised demo exchange and print the
  node's health report; ``--starve`` forces credit starvation (all data
  frames dropped) so the STALLED classification and the flight
  recorder's anomaly dump can be seen live.  Exits 0 when the final
  state is OK, 1 otherwise.
* **faults [SPEC]**: validate and describe a fault plan (``NCS_FAULTS``
  grammar).  With no SPEC argument, reads the ``NCS_FAULTS`` variable.
  A malformed plan exits 1 with the parser's explanation — the fastest
  way to debug a chaos schedule before committing a test to it.
* **recovery**: run a supervised echo exchange, sever the transport
  mid-stream (optionally under an extra ``--faults`` schedule), and
  print the supervisor's status plus the recovery timeline from the
  flight recorder.  Exits 0 when the session ends CONNECTED with every
  message delivered exactly once.
* **xray**: the latency critical-path analyzer.  With no arguments it
  runs an X-ray-sampled echo exchange, joins the sender and receiver
  spans by trace id, and renders per-message stage waterfalls plus a
  stage-dominance report ("where did my p99 go").  ``--load FILE ...``
  joins spans from :meth:`XrayRecorder.dump` files instead (one per
  node; clock offsets come from ``--offset NODE=SECONDS``), so spans
  captured on a live cluster can be analyzed offline.

The pre-subcommand spellings (``--load FILE``, ``--trace FILE``) are
still accepted at the top level.

Examples::

    python -m repro.tools.ncs_stat
    python -m repro.tools.ncs_stat demo --json --iterations 200 --size 4096
    NCS_METRICS=1 NCS_METRICS_DUMP=run.json python examples/quickstart.py
    python -m repro.tools.ncs_stat snapshot --load run.json
    NCS_TRACE=1 python examples/quickstart.py
    python -m repro.tools.ncs_stat trace ncs_trace.jsonl
    python -m repro.tools.ncs_stat health --starve
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Tuple

from repro.obs.registry import MetricsRegistry, format_snapshot


class SnapshotError(ValueError):
    """A metrics snapshot file is missing, unreadable, or malformed."""


def load_snapshot(path: str) -> dict:
    """Read and validate a ``MetricsRegistry.dump`` JSON snapshot.

    Raises :class:`SnapshotError` with an actionable message when the
    file is missing, is not JSON, or parses but is not snapshot-shaped
    (so a stray JSON file cannot crash the renderer with a KeyError).
    """
    if not os.path.exists(path):
        raise SnapshotError(f"snapshot file not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snap = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path} is not valid JSON: {exc}") from exc
    except OSError as exc:
        raise SnapshotError(f"cannot read {path}: {exc}") from exc
    if not isinstance(snap, dict) or not any(
        isinstance(snap.get(kind), list)
        for kind in ("counters", "gauges", "histograms")
    ):
        raise SnapshotError(
            f"{path} is valid JSON but not a metrics snapshot (expected "
            f"counters/gauges/histograms lists — was it written by "
            f"MetricsRegistry.dump?)"
        )
    snap.setdefault("counters", [])
    snap.setdefault("gauges", [])
    snap.setdefault("histograms", [])
    return snap


def run_echo_demo(
    iterations: int = 50,
    payload_size: int = 1024,
    interface: str = "sci",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """One metrics-enabled echo session between two in-process nodes."""
    from repro.core import ConnectionConfig, Node, NodeConfig

    registry = registry or MetricsRegistry(enabled=True)
    node_a = Node(
        NodeConfig(name="stat-a", metrics=True, metrics_registry=registry)
    )
    node_b = Node(
        NodeConfig(name="stat-b", metrics=True, metrics_registry=registry)
    )
    try:
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(interface=interface),
            peer_name="stat-b",
        )
        peer = node_b.accept(timeout=5.0)
        payload = bytes(payload_size)
        for _ in range(iterations):
            conn.send(payload)
            received = peer.recv(timeout=5.0)
            if received is None:
                raise RuntimeError("echo demo lost a message")
            peer.send(received)
            if conn.recv(timeout=5.0) is None:
                raise RuntimeError("echo demo lost a reply")
    finally:
        node_a.close()
        node_b.close()
    return registry


def run_health_demo(
    starve: bool = False,
    period: float = 0.2,
    settle_s: Optional[float] = None,
) -> Tuple[dict, list]:
    """A watchdog-supervised exchange; returns (health report, dumps).

    With ``starve=True`` the connection uses credit flow control with
    every data frame dropped and two-phase resync pushed out of reach
    (the resync request rides the lossless control link and would
    otherwise rescue the pool): credits never return, the sender
    wedges, and the watchdog classifies the connection STALLED and
    triggers the flight recorder's anomaly dump.
    """
    from repro.core import ConnectionConfig, Node, NodeConfig

    node_a = Node(
        NodeConfig(name="health-a", watchdog=True, watchdog_period=period)
    )
    node_b = Node(NodeConfig(name="health-b"))
    try:
        if starve:
            config = ConnectionConfig(
                interface="sci",
                flow_control="credit",
                error_control="none",
                initial_credits=2,
                loss_rate=1.0,
                fc_resync_timeout=3600.0,
            )
        else:
            config = ConnectionConfig(interface="sci")
        conn = node_a.connect(node_b.address, config, peer_name="health-b")
        peer = node_b.accept(timeout=5.0)
        payload = bytes(512)
        for _ in range(8):
            conn.send(payload)
            if not starve:
                received = peer.recv(timeout=5.0)
                if received is not None:
                    peer.send(received)
                    conn.recv(timeout=5.0)
        # Give the watchdog enough periods to see the (lack of)
        # progress; starvation also needs the stall to age past the
        # instantaneous threshold.
        time.sleep(settle_s if settle_s is not None else (1.5 if starve else 3 * period))
        report = node_a.health()
        dumps = list(node_a.recorder.dumps)
    finally:
        node_a.close()
        node_b.close()
    return report, dumps


def format_health(report: dict) -> str:
    lines = [f"node {report.get('node', '?')}: {report['state']}"]
    for entry in report.get("connections", []):
        lines.append(
            f"  conn {entry['conn_id']} peer={entry.get('peer', '?')} "
            f"queued={entry.get('queued', 0)} "
            f"retransmits={entry.get('retransmits', 0)}: {entry['state']}"
        )
        for reason in entry.get("reasons", []):
            lines.append(f"    - {reason}")
    for peer in report.get("peers", []):
        lines.append(
            f"  peer {peer['address'][0]}:{peer['address'][1]}: "
            f"{peer['state']}"
        )
    lines.append(
        f"  watchdog samples: {report.get('samples_taken', 0)}, "
        f"recorder auto-dumps: {report.get('recorder_dumps', 0)}"
    )
    return "\n".join(lines)


def summarize_trace(path: str) -> str:
    """Per-(category, name) event counts for a JSONL trace file."""
    counts: dict = {}
    plane_msg_ids: dict = {}
    total = 0
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            total += 1
            key = (event.get("category", "?"), event.get("name", "?"))
            counts[key] = counts.get(key, 0) + 1
            msg_id = event.get("msg_id")
            if msg_id is not None:
                plane_msg_ids.setdefault(event.get("category", "?"), set()).add(
                    msg_id
                )
    lines = [f"{total} events in {path}" + (f" ({malformed} malformed)" if malformed else "")]
    for (category, name), count in sorted(counts.items()):
        lines.append(f"  {category}.{name}: {count}")
    for category in sorted(plane_msg_ids):
        lines.append(
            f"  distinct msg_ids in {category} plane: {len(plane_msg_ids[category])}"
        )
    return "\n".join(lines)


def run_recovery_demo(
    faults: Optional[str] = None,
    messages: int = 24,
    sever_at: int = 12,
) -> Tuple[dict, list, int, int]:
    """A supervised echo stream with a mid-stream transport severing.

    Returns ``(status, recovery_events, sent, received)``; the caller
    judges success (CONNECTED, received == sent).
    """
    from repro.core import ConnectionConfig, Node, NodeConfig
    from repro.core.errors import NcsError
    from repro.faults import parse_fault_plan
    from repro.recovery import RecoveryPolicy, Responder, Supervisor

    config = ConnectionConfig(
        fault_plan=parse_fault_plan(faults) if faults else None,
    )
    policy = RecoveryPolicy(
        backoff_base=0.02, backoff_max=0.25, jitter=0.1,
        max_attempts=12, connect_timeout=2.0,
    )
    server = Node(NodeConfig(name="recovery-server"))
    client = Node(NodeConfig(name="recovery-client"))
    received = 0
    try:
        responder = Responder(server, session="demo")

        def echo_loop() -> None:
            while True:
                try:
                    payload = responder.recv(timeout=0.1)
                except NcsError:
                    return
                if payload is not None:
                    try:
                        responder.send(payload)
                    except NcsError:
                        pass

        import threading

        threading.Thread(target=echo_loop, daemon=True).start()
        sup = Supervisor(
            client, server.address, config=config,
            session="demo", policy=policy,
        )
        for index in range(messages):
            if index == sever_at and sup.connection is not None:
                inner = getattr(
                    sup.connection.interface, "_inner",
                    sup.connection.interface,
                )
                inner.close()
            sup.send(b"recovery-%03d" % index)
            time.sleep(0.01)
        deadline = time.monotonic() + 30.0
        while received < messages and time.monotonic() < deadline:
            try:
                got = sup.recv(timeout=0.2)
            except NcsError:
                break
            if got is not None:
                received += 1
        status = sup.status()
        status["state"] = sup.state
        events = [
            entry for entry in client.recorder.snapshot()
            if entry["category"] == "recovery"
        ]
        sup.close()
        responder.close()
    finally:
        client.close()
        server.close()
    return status, events, messages, received


def format_recovery(status: dict, events: list, sent: int, received: int) -> str:
    lines = [
        f"session {status['session']}: {status['state']}  "
        f"({received}/{sent} messages echoed exactly once)",
        f"  incarnations={status['incarnations']} "
        f"outages={status['outages']} "
        f"reconnect_attempts={status['reconnect_attempts']} "
        f"failovers={status['failovers']}",
        f"  replayed_messages={status['replayed_messages']} "
        f"dedup_rejected={status['dedup_rejected']} "
        f"last_downtime={status['last_downtime']}s",
        "  timeline:",
    ]
    for entry in events:
        detail = {
            k: v for k, v in entry.items()
            if k not in ("ts", "category", "name")
        }
        rendered = " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
        lines.append(f"    {entry['ts']:.3f}  {entry['name']}  {rendered}")
    return "\n".join(lines)


def run_pressure_demo(
    quota_bytes: int = 8192,
    messages: int = 40,
    payload_size: int = 2048,
    rejects: int = 50,
) -> dict:
    """Exercise the overload-protection subsystem; returns a report dict.

    Two phases between two in-process nodes:

    1. *Slow consumer*: blast ``messages`` messages at a peer that never
       calls ``recv`` until the delivery quota trips the credit gate —
       showing withheld credits and the sender's flow-control stall.
    2. *Fail-fast probe*: with the send budget artificially exhausted,
       time ``rejects`` fail-fast admission rejections (median/p99 ms).
    """
    from repro.core import ConnectionConfig, Node, NodeConfig
    from repro.core.errors import NCSOverloaded
    from repro.pressure import PressureConfig

    cfg = PressureConfig(
        node_bytes=1 << 20,
        conn_bytes=1 << 20,
        delivery_quota_bytes=quota_bytes,
    )
    node_a = Node(NodeConfig(name="pressure-a", pressure=cfg))
    node_b = Node(NodeConfig(name="pressure-b", pressure=cfg))
    report: dict = {}
    try:
        conn = node_a.connect(
            node_b.address, ConnectionConfig(), peer_name="pressure-b"
        )
        peer = node_b.accept(timeout=5.0)
        payload = bytes(payload_size)
        for _ in range(messages):
            conn.send(payload)
        deadline = time.monotonic() + 3.0
        while not peer.credit_gate_closed and time.monotonic() < deadline:
            time.sleep(0.02)
        time.sleep(0.3)  # let the sender hit the credit stall
        peer_stats = peer.stats()
        report["slow_consumer"] = {
            "gate_closed": peer.credit_gate_closed,
            "slow_consumer_trips": peer_stats.get("slow_consumer_trips", 0),
            "credits_withheld": peer_stats.get("credits_withheld", 0),
            "delivery_bytes": node_b.pressure.site_used(
                "delivery", peer.conn_id
            ),
            "sender_credit_stalls": conn.metrics_totals().get(
                "fc_tx_credit_stalls", 0
            ),
        }
        drained = 0
        while peer.recv(0.5) is not None:
            drained += 1
        report["slow_consumer"]["drained"] = drained
        report["slow_consumer"]["gate_after_drain"] = peer.credit_gate_closed

        # Fail-fast probe: exhaust the per-connection send budget, then
        # time how fast admission turns requests away.
        probe = node_a.connect(
            node_b.address,
            ConnectionConfig(admission="fail-fast"),
            peer_name="pressure-b",
        )
        node_b.accept(timeout=5.0)
        node_a.pressure.force_reserve("send", probe.conn_id, cfg.conn_bytes)
        latencies = []
        for _ in range(rejects):
            start = time.perf_counter()
            try:
                probe.send(b"x")
            except NCSOverloaded:
                pass
            latencies.append((time.perf_counter() - start) * 1000.0)
        node_a.pressure.release("send", probe.conn_id, cfg.conn_bytes)
        latencies.sort()
        report["fail_fast"] = {
            "rejections": len(latencies),
            "median_ms": latencies[len(latencies) // 2],
            "p99_ms": latencies[int(len(latencies) * 0.99) - 1],
        }
        report["budget_a"] = node_a.pressure.snapshot()
        report["budget_b"] = node_b.pressure.snapshot()
    finally:
        node_a.close()
        node_b.close()
    return report


def format_pressure(report: dict) -> str:
    slow = report.get("slow_consumer", {})
    fast = report.get("fail_fast", {})
    lines = [
        "overload protection demo",
        "  slow consumer:",
        f"    credit gate tripped: {slow.get('gate_closed')}"
        f" (trips={slow.get('slow_consumer_trips')})",
        f"    credits withheld: {slow.get('credits_withheld')}",
        f"    delivery bytes at peak: {slow.get('delivery_bytes')}",
        f"    sender credit stalls: {slow.get('sender_credit_stalls')}",
        f"    drained {slow.get('drained')} messages; "
        f"gate after drain: {slow.get('gate_after_drain')}",
        "  fail-fast admission:",
        f"    {fast.get('rejections')} rejections: "
        f"median {fast.get('median_ms', 0):.3f} ms, "
        f"p99 {fast.get('p99_ms', 0):.3f} ms",
    ]
    for label in ("budget_a", "budget_b"):
        snap = report.get(label, {})
        lines.append(f"  {label}:")
        lines.append(
            f"    used={snap.get('used')} peak={snap.get('peak_used')} "
            f"of node_bytes={snap.get('node_bytes')}"
        )
        sites = snap.get("site_peaks", {})
        lines.append(
            "    site peaks: "
            + " ".join(f"{site}={sites.get(site, 0)}" for site in sorted(sites))
        )
        lines.append(
            f"    rejections={snap.get('admission_rejections')} "
            f"waits={snap.get('admission_waits')} "
            f"shed={snap.get('deliveries_shed')} "
            f"shed_control_pdus={snap.get('shed_control_pdus')}"
        )
    return "\n".join(lines)


def run_xray_demo(
    iterations: int = 40,
    payload_size: int = 4096,
    interface: str = "sci",
    period: int = 1,
) -> Tuple[list, dict, dict]:
    """An X-ray-sampled echo run; returns (joined spans, report, snapshot).

    Both nodes sample at ``1/period`` so every exchanged message (at the
    default period=1) produces a joined sender+receiver journey — the
    demo is about showing the waterfall, not about sampling overhead.
    """
    from repro.core import ConnectionConfig, Node, NodeConfig
    from repro.obs.xray import XrayConfig, dominance_report, join_spans

    cfg = XrayConfig(period=period, ring_capacity=max(512, 4 * iterations))
    node_a = Node(NodeConfig(name="xray-a", xray=cfg))
    node_b = Node(NodeConfig(name="xray-b", xray=cfg))
    try:
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(
                interface=interface,
                flow_control="credit",
                error_control="selective_repeat",
            ),
            peer_name="xray-b",
        )
        peer = node_b.accept(timeout=5.0)
        payload = bytes(payload_size)
        for _ in range(iterations):
            conn.send(payload)
            received = peer.recv(timeout=5.0)
            if received is None:
                raise RuntimeError("xray demo lost a message")
            peer.send(received)
            if conn.recv(timeout=5.0) is None:
                raise RuntimeError("xray demo lost a reply")
        time.sleep(0.05)  # let trailing send spans finalize
        spans = node_a.xray.spans() + node_b.xray.spans()
        snapshot = {
            "xray-a": node_a.xray.snapshot(),
            "xray-b": node_b.xray.snapshot(),
        }
    finally:
        node_a.close()
        node_b.close()
    # Both nodes share one process clock: no offsets needed.
    joined = join_spans(spans)
    return joined, dominance_report(joined), snapshot


def format_xray_waterfall(span: dict, width: int = 48) -> str:
    """One joined span as an indented stage waterfall."""
    from repro.obs.xray import STAGE_ORDER

    e2e = max(1, span["e2e_ns"])
    lines = [
        f"  msg {span['msg']} {span['sender']} -> {span['receiver']}"
        f" ({span['size']} B, trace {span['trace']:#x}):"
        f" e2e {e2e / 1e3:.1f} us"
    ]
    offset_ns = 0
    for label in STAGE_ORDER:
        duration = span["stages"].get(label)
        if duration is None:
            continue
        # start/length clamp to the frame: overlapped stages (e.g. a
        # batched interface_write that outlives the receiver's first
        # read) would otherwise push bars past the right edge.
        start = min(width - 1, int(offset_ns / e2e * width))
        length = max(1, min(int(duration / e2e * width), width - start))
        bar = " " * start + "#" * length
        lines.append(
            f"    {label:<16} |{bar:<{width}}|"
            f" {duration / 1e3:9.1f} us ({duration / e2e * 100:5.1f}%)"
        )
        offset_ns += duration
    return "\n".join(lines)


def format_xray(
    joined: list,
    report: dict,
    snapshot: Optional[dict] = None,
    waterfalls: int = 3,
) -> str:
    """Waterfalls for the slowest spans + the stage-dominance report."""
    lines = [f"latency x-ray: {report.get('spans', 0)} joined spans"]
    if not joined:
        lines.append("  (no joined spans — is sampling on at both ends?)")
        return "\n".join(lines)
    slowest = sorted(joined, key=lambda s: s["e2e_ns"], reverse=True)
    lines.append("")
    lines.append(f"slowest {min(waterfalls, len(slowest))} journeys:")
    for span in slowest[:waterfalls]:
        lines.append(format_xray_waterfall(span))
    lines.append("")
    lines.append(
        f"stage dominance (tail = {report['tail_spans']} spans at"
        f" >= {report['tail_threshold_ns'] / 1e3:.1f} us e2e):"
    )
    lines.append(f"  {'stage':<16} {'overall':>8} {'tail':>8}")
    labels = sorted(
        set(report["overall"]) | set(report["tail"]),
        key=lambda label: -report["overall"].get(label, 0.0),
    )
    for label in labels:
        mark = ""
        if label == report.get("tail_dominant"):
            mark = "  <- tail dominant"
        lines.append(
            f"  {label:<16}"
            f" {report['overall'].get(label, 0.0) * 100:7.1f}%"
            f" {report['tail'].get(label, 0.0) * 100:7.1f}%{mark}"
        )
    if snapshot:
        lines.append("")
        lines.append("per-connection quantiles:")
        for node_name, snap in sorted(snapshot.items()):
            for conn_id, stats in sorted(snap.get("conns", {}).items()):
                if "send_p50_s" in stats:
                    lines.append(
                        f"  {node_name} conn {conn_id} send:"
                        f" p50 {stats['send_p50_s'] * 1e6:8.1f} us"
                        f"  p95 {stats['send_p95_s'] * 1e6:8.1f} us"
                        f"  p99 {stats['send_p99_s'] * 1e6:8.1f} us"
                    )
                if "recv_p50_s" in stats:
                    lines.append(
                        f"  {node_name} conn {conn_id} recv:"
                        f" p50 {stats['recv_p50_s'] * 1e6:8.1f} us"
                        f"  p95 {stats['recv_p95_s'] * 1e6:8.1f} us"
                        f"  p99 {stats['recv_p99_s'] * 1e6:8.1f} us"
                    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _cmd_demo(args) -> int:
    registry = run_echo_demo(
        iterations=args.iterations,
        payload_size=args.size,
        interface=args.interface,
    )
    print(registry.to_json(indent=2) if args.json else registry.format_text())
    return 0


def _cmd_snapshot(args) -> int:
    path = args.load or getattr(args, "file", None)
    if not path:
        print(
            "ncs_stat snapshot: no snapshot file given (use --load FILE)",
            file=sys.stderr,
        )
        return 2
    try:
        snap = load_snapshot(path)
    except SnapshotError as exc:
        print(f"ncs_stat: error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(snap, indent=2, sort_keys=True) if args.json
          else format_snapshot(snap))
    return 0


def _cmd_trace(args) -> int:
    try:
        print(summarize_trace(args.file))
    except OSError as exc:
        print(f"ncs_stat: error: cannot read trace file: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_health(args) -> int:
    report, dumps = run_health_demo(starve=args.starve, period=args.period)
    if args.json:
        print(json.dumps({"report": report, "dumps": len(dumps)}, indent=2))
    else:
        print(format_health(report))
        for dump in dumps:
            print()
            print(
                "\n".join(
                    FlightRecorderFormatter.format(dump).splitlines()[:40]
                )
            )
    return 0 if report["state"] == "OK" else 1


def _cmd_faults(args) -> int:
    from repro.faults import FAULTS_ENV, FaultPlanError, parse_fault_plan

    spec = args.spec if args.spec is not None else os.environ.get(FAULTS_ENV)
    if not spec:
        print(
            f"ncs_stat faults: no plan given (pass SPEC or set {FAULTS_ENV})",
            file=sys.stderr,
        )
        return 2
    try:
        plan = parse_fault_plan(spec)
    except FaultPlanError as exc:
        print(f"ncs_stat: invalid fault plan: {exc}", file=sys.stderr)
        return 1
    print(f"fault plan (seed {plan.seed}):")
    for line in plan.describe():
        print(f"  {line}")
    return 0


def _cmd_recovery(args) -> int:
    try:
        status, events, sent, received = run_recovery_demo(
            faults=args.faults, messages=args.messages,
        )
    except Exception as exc:  # noqa: BLE001 — demo must not traceback
        print(f"ncs_stat: recovery demo failed: {exc}", file=sys.stderr)
        return 1
    ok = status["state"] == "CONNECTED" and received == sent
    if args.json:
        print(json.dumps(
            {"status": status, "events": events, "sent": sent,
             "received": received, "ok": ok},
            indent=2,
        ))
    else:
        print(format_recovery(status, events, sent, received))
    return 0 if ok else 1


def _cmd_pressure(args) -> int:
    try:
        report = run_pressure_demo(
            quota_bytes=args.quota,
            messages=args.messages,
            payload_size=args.size,
        )
    except Exception as exc:  # noqa: BLE001 — demo must not traceback
        print(f"ncs_stat: pressure demo failed: {exc}", file=sys.stderr)
        return 1
    ok = (
        report.get("slow_consumer", {}).get("gate_closed")
        and report.get("fail_fast", {}).get("rejections", 0) > 0
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=repr))
    else:
        print(format_pressure(report))
    return 0 if ok else 1


def _cmd_xray(args) -> int:
    from repro.obs.xray import dominance_report, join_spans, load_spans

    snapshot = None
    if args.load:
        offsets = {}
        for raw in args.offset or []:
            node_name, sep, value = raw.partition("=")
            if not sep:
                print(
                    f"ncs_stat xray: bad --offset {raw!r}"
                    f" (expected NODE=SECONDS)",
                    file=sys.stderr,
                )
                return 2
            try:
                offsets[node_name] = float(value)
            except ValueError:
                print(
                    f"ncs_stat xray: bad --offset seconds {value!r}",
                    file=sys.stderr,
                )
                return 2
        spans = []
        for path in args.load:
            try:
                spans.extend(load_spans(path))
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"ncs_stat: error: {exc}", file=sys.stderr)
                return 1
        joined = join_spans(spans, offsets=offsets)
        report = dominance_report(joined)
    else:
        try:
            joined, report, snapshot = run_xray_demo(
                iterations=args.iterations,
                payload_size=args.size,
                interface=args.interface,
            )
        except Exception as exc:  # noqa: BLE001 — demo must not traceback
            print(f"ncs_stat: xray demo failed: {exc}", file=sys.stderr)
            return 1
    if args.json:
        rendered = json.dumps(
            {"joined": joined, "report": report, "snapshot": snapshot},
            indent=2, sort_keys=True,
        )
    else:
        rendered = format_xray(
            joined, report, snapshot, waterfalls=args.waterfalls
        )
    print(rendered)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered)
                handle.write("\n")
        except OSError as exc:
            print(f"ncs_stat: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 1
    return 0 if joined else 1


class FlightRecorderFormatter:
    """Thin indirection so the import stays local to the health path."""

    @staticmethod
    def format(record: dict) -> str:
        from repro.obs.recorder import FlightRecorder

        return FlightRecorder.format_dump(record)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ncs_stat", description="Inspect NCS runtime metrics and health."
    )
    # Legacy top-level flags (pre-subcommand interface).
    parser.add_argument("--load", metavar="FILE", help=argparse.SUPPRESS)
    parser.add_argument("--trace", metavar="FILE", help=argparse.SUPPRESS)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    parser.add_argument(
        "--iterations", type=int, default=50, help="demo echo round trips"
    )
    parser.add_argument(
        "--size", type=int, default=1024, help="demo payload bytes"
    )
    parser.add_argument(
        "--interface",
        default="sci",
        choices=("sci", "aci", "hpi"),
        help="demo data-plane interface",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="metrics-enabled echo demo (default)")
    demo.add_argument("--json", action="store_true")
    demo.add_argument("--iterations", type=int, default=50)
    demo.add_argument("--size", type=int, default=1024)
    demo.add_argument("--interface", default="sci",
                      choices=("sci", "aci", "hpi"))

    snapshot = sub.add_parser(
        "snapshot", help="render a dumped JSON metrics snapshot"
    )
    snapshot.add_argument("file", nargs="?", help="snapshot JSON file")
    snapshot.add_argument("--load", metavar="FILE",
                          help="snapshot JSON file (same as positional)")
    snapshot.add_argument("--json", action="store_true")

    trace = sub.add_parser("trace", help="summarize a JSONL trace file")
    trace.add_argument("file", help="JSONL trace file")

    health = sub.add_parser(
        "health", help="watchdog-supervised demo and health report"
    )
    health.add_argument(
        "--starve",
        action="store_true",
        help="force credit starvation (demonstrates STALLED + auto-dump)",
    )
    health.add_argument(
        "--period", type=float, default=0.2, help="watchdog period (s)"
    )
    health.add_argument("--json", action="store_true")

    faults = sub.add_parser(
        "faults", help="validate and describe an NCS_FAULTS plan"
    )
    faults.add_argument(
        "spec", nargs="?", default=None,
        help="fault plan spec (default: the NCS_FAULTS variable)",
    )

    recovery = sub.add_parser(
        "recovery", help="supervised echo demo with a mid-stream outage"
    )
    recovery.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="extra fault schedule for the data plane",
    )
    recovery.add_argument(
        "--messages", type=int, default=24, help="messages to echo"
    )
    recovery.add_argument("--json", action="store_true")

    pressure = sub.add_parser(
        "pressure", help="overload-protection demo: credit gate + fail-fast"
    )
    pressure.add_argument(
        "--quota", type=int, default=8192,
        help="delivery quota bytes before the credit gate closes",
    )
    pressure.add_argument(
        "--messages", type=int, default=40, help="messages to blast"
    )
    pressure.add_argument(
        "--size", type=int, default=2048, help="payload bytes per message"
    )
    pressure.add_argument("--json", action="store_true")

    xray = sub.add_parser(
        "xray", help="latency critical path: waterfalls + stage dominance"
    )
    xray.add_argument(
        "--load", metavar="FILE", nargs="+", default=None,
        help="join XrayRecorder.dump files instead of running the demo",
    )
    xray.add_argument(
        "--offset", metavar="NODE=SECONDS", action="append", default=None,
        help="clock offset for a loaded node (ClockSync convention: "
             "peer_clock - local), repeatable",
    )
    xray.add_argument(
        "--iterations", type=int, default=40, help="demo echo round trips"
    )
    xray.add_argument(
        "--size", type=int, default=4096, help="demo payload bytes"
    )
    xray.add_argument(
        "--interface", default="sci", choices=("sci", "aci", "hpi"),
        help="demo data-plane interface",
    )
    xray.add_argument(
        "--waterfalls", type=int, default=3,
        help="slowest journeys to render as waterfalls",
    )
    xray.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the rendering to FILE (CI artifact)",
    )
    xray.add_argument("--json", action="store_true")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "recovery":
        return _cmd_recovery(args)
    if args.command == "pressure":
        return _cmd_pressure(args)
    if args.command == "xray":
        return _cmd_xray(args)
    if args.command == "demo":
        return _cmd_demo(args)

    # Legacy flag routing (no subcommand given).
    if args.trace:
        args.file = args.trace
        return _cmd_trace(args)
    if args.load:
        return _cmd_snapshot(args)
    return _cmd_demo(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
        sys.exit(0)
