"""ncs_stat — render NCS runtime metrics and trace summaries.

Three modes:

* **demo** (default, no arguments): run a short in-process echo exchange
  with metrics enabled and print the resulting registry snapshot.  The
  registry is per-process, so this is the quickest way to see every
  metric the runtime publishes — per-connection byte/message gauges,
  flow/error-control engine counters, control-plane PDU counts, and the
  message-size histograms.
* **--load FILE**: pretty-print a JSON snapshot written earlier via
  ``MetricsRegistry.dump`` (benchmarks write one automatically when
  ``NCS_METRICS_DUMP=path.json`` is set — see
  :func:`repro.bench.runner.dump_metrics_if_requested`).
* **--trace FILE**: summarize a JSONL trace file produced by
  ``NCS_TRACE=1`` (event counts per category/name plus the distinct
  message ids seen in each plane).

Examples::

    python -m repro.tools.ncs_stat
    python -m repro.tools.ncs_stat --json --iterations 200 --size 4096
    NCS_METRICS=1 NCS_METRICS_DUMP=run.json python examples/quickstart.py
    python -m repro.tools.ncs_stat --load run.json
    NCS_TRACE=1 python examples/quickstart.py
    python -m repro.tools.ncs_stat --trace ncs_trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.registry import MetricsRegistry, format_snapshot


def run_echo_demo(
    iterations: int = 50,
    payload_size: int = 1024,
    interface: str = "sci",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """One metrics-enabled echo session between two in-process nodes."""
    from repro.core import ConnectionConfig, Node, NodeConfig

    registry = registry or MetricsRegistry(enabled=True)
    node_a = Node(
        NodeConfig(name="stat-a", metrics=True, metrics_registry=registry)
    )
    node_b = Node(
        NodeConfig(name="stat-b", metrics=True, metrics_registry=registry)
    )
    try:
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(interface=interface),
            peer_name="stat-b",
        )
        peer = node_b.accept(timeout=5.0)
        payload = bytes(payload_size)
        for _ in range(iterations):
            conn.send(payload)
            received = peer.recv(timeout=5.0)
            if received is None:
                raise RuntimeError("echo demo lost a message")
            peer.send(received)
            if conn.recv(timeout=5.0) is None:
                raise RuntimeError("echo demo lost a reply")
    finally:
        node_a.close()
        node_b.close()
    return registry


def summarize_trace(path: str) -> str:
    """Per-(category, name) event counts for a JSONL trace file."""
    counts: dict = {}
    plane_msg_ids: dict = {}
    total = 0
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            total += 1
            key = (event.get("category", "?"), event.get("name", "?"))
            counts[key] = counts.get(key, 0) + 1
            msg_id = event.get("msg_id")
            if msg_id is not None:
                plane_msg_ids.setdefault(event.get("category", "?"), set()).add(
                    msg_id
                )
    lines = [f"{total} events in {path}" + (f" ({malformed} malformed)" if malformed else "")]
    for (category, name), count in sorted(counts.items()):
        lines.append(f"  {category}.{name}: {count}")
    for category in sorted(plane_msg_ids):
        lines.append(
            f"  distinct msg_ids in {category} plane: {len(plane_msg_ids[category])}"
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ncs_stat", description="Inspect NCS runtime metrics."
    )
    parser.add_argument(
        "--load", metavar="FILE", help="render a dumped JSON metrics snapshot"
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="summarize a JSONL trace file"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    parser.add_argument(
        "--iterations", type=int, default=50, help="demo echo round trips"
    )
    parser.add_argument(
        "--size", type=int, default=1024, help="demo payload bytes"
    )
    parser.add_argument(
        "--interface",
        default="sci",
        choices=("sci", "aci", "hpi"),
        help="demo data-plane interface",
    )
    args = parser.parse_args(argv)

    if args.trace:
        try:
            print(summarize_trace(args.trace))
        except OSError as exc:
            parser.error(f"cannot read trace file: {exc}")
        return 0
    if args.load:
        try:
            with open(args.load, "r", encoding="utf-8") as handle:
                snap = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load snapshot: {exc}")
        print(json.dumps(snap, indent=2, sort_keys=True) if args.json
              else format_snapshot(snap))
        return 0
    registry = run_echo_demo(
        iterations=args.iterations,
        payload_size=args.size,
        interface=args.interface,
    )
    print(registry.to_json(indent=2) if args.json else registry.format_text())
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
        sys.exit(0)
