"""Deterministic multicast spanning tree.

All members share the same sorted membership list, so each can compute
the same tree locally with no extra coordination: the list is rotated to
put the origin at index 0, then a k-ary heap layout assigns children.
Every member therefore knows its own children for any origin, which is
all that store-and-forward multicast needs.

``networkx`` validates the construction in tests (the edge set really is
a spanning tree: connected, acyclic, n-1 edges).
"""

from __future__ import annotations

import math
from typing import List, Sequence

DEFAULT_FANOUT = 2


def _rotated(members: Sequence[str], origin: str) -> List[str]:
    ordered = sorted(members)
    if origin not in ordered:
        raise ValueError(f"origin {origin!r} is not a group member")
    pivot = ordered.index(origin)
    return ordered[pivot:] + ordered[:pivot]


def spanning_tree_children(
    members: Sequence[str],
    origin: str,
    me: str,
    fanout: int = DEFAULT_FANOUT,
) -> List[str]:
    """Members ``me`` must forward to, in the tree rooted at ``origin``."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    order = _rotated(members, origin)
    if me not in order:
        raise ValueError(f"member {me!r} is not in the group")
    index = order.index(me)
    first_child = fanout * index + 1
    return [
        order[child]
        for child in range(first_child, min(first_child + fanout, len(order)))
    ]


def tree_parent(
    members: Sequence[str], origin: str, me: str, fanout: int = DEFAULT_FANOUT
) -> str | None:
    """The member that forwards to ``me`` (None for the origin itself)."""
    order = _rotated(members, origin)
    index = order.index(me)
    if index == 0:
        return None
    return order[(index - 1) // fanout]


def tree_depth(member_count: int, fanout: int = DEFAULT_FANOUT) -> int:
    """Depth of the k-ary tree over ``member_count`` members.

    The latency advantage over repetitive send: O(log_k n) forwarding
    hops instead of the origin's O(n) serial sends.
    """
    if member_count <= 0:
        return 0
    if fanout == 1:
        return member_count - 1
    # Index of the last member in heap layout determines the depth.
    depth = 0
    boundary = 1  # members with depth <= depth
    per_level = 1
    while boundary < member_count:
        per_level *= fanout
        boundary += per_level
        depth += 1
    return depth
