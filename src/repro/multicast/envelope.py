"""Wire envelope for multicast data messages.

Multicast payloads travel over ordinary NCS point-to-point connections;
the envelope adds what forwarding needs: the group, the origin member
(the tree root), and the membership version the origin used (so a
forwarder with a stale view can detect the mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.codec import ByteReader, ByteWriter

_MAGIC = 0x4D  # 'M'


class EnvelopeError(ValueError):
    """Raised when an inbound frame is not a valid multicast envelope."""


@dataclass(frozen=True)
class MulticastEnvelope:
    """One multicast message in flight."""

    group: str
    origin: str  # member id ("host:port") of the sender
    version: int  # membership version at the origin
    #: True when receivers must forward along the spanning tree; False
    #: for repetitive send (the origin reaches everyone directly).
    forward: bool
    payload: bytes
    #: Per-origin sequence number.  Tree repair can race an in-flight
    #: multicast (origin and forwarders computing different trees), so
    #: one member may legitimately be sent the same envelope twice;
    #: receivers dedup on (origin, seq) to keep delivery exactly-once.
    seq: int = 0

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u8(_MAGIC)
        writer.lp_str(self.group)
        writer.lp_str(self.origin)
        writer.u32(self.version)
        writer.u64(self.seq)
        writer.u8(1 if self.forward else 0)
        writer.lp_bytes(self.payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "MulticastEnvelope":
        reader = ByteReader(data)
        try:
            magic = reader.u8()
            if magic != _MAGIC:
                raise EnvelopeError(f"bad envelope magic 0x{magic:02X}")
            return cls(
                group=reader.lp_str(),
                origin=reader.lp_str(),
                version=reader.u32(),
                seq=reader.u64(),
                forward=bool(reader.u8()),
                payload=reader.lp_bytes(),
            )
        except ValueError as exc:
            raise EnvelopeError(str(exc)) from exc
