"""Collective operations over NCS groups.

The paper lists "group communication, synchronization" among NCS's
communication services; the barrier lives in
:class:`~repro.multicast.group.GroupManager`, and this module builds the
standard collectives on top of the multicast/unicast primitives:

* ``broadcast`` — root to all (spanning tree by default);
* ``gather`` — all to root, results tagged by member;
* ``scatter`` — root sends each member its own piece;
* ``reduce`` — gather + fold at the root;
* ``allreduce`` — reduce + broadcast of the result.

Epoch discipline matches the barrier: the Nth call of an operation on
each member forms the Nth global instance of that operation, so members
call collectives in lockstep (the SPMD convention every MPI program
follows).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.multicast.group import GroupError, GroupManager


class Collective:
    """Collective operations bound to one :class:`GroupManager`."""

    def __init__(self, manager: GroupManager):
        self.manager = manager
        self._lock = threading.Lock()
        #: (group, op) -> local epoch counter
        self._epochs: Dict[Tuple[str, str], int] = {}

    def _next_epoch(self, group: str, op: str) -> int:
        with self._lock:
            epoch = self._epochs.get((group, op), 0) + 1
            self._epochs[(group, op)] = epoch
            return epoch

    def _wire(self, group: str, op: str, epoch: int) -> str:
        return f"{group}#{op}:{epoch}"

    # ------------------------------------------------------------------

    def broadcast(
        self,
        group: str,
        payload: Optional[bytes] = None,
        root: Optional[str] = None,
        algorithm: str = "spanning_tree",
        timeout: float = 10.0,
    ) -> bytes:
        """Root's ``payload`` reaches every member; all return it.

        The root passes ``payload``; every other member passes None.
        ``root`` defaults to the group coordinator.
        """
        manager = self.manager
        view = manager.view(group)
        root = root or view.coordinator
        epoch = self._next_epoch(group, "bcast")
        wire = self._wire(group, "bcast", epoch)
        if manager.me == root:
            if payload is None:
                raise GroupError("the broadcast root must supply a payload")
            manager.multicast(
                group, payload, algorithm=algorithm, wait=True,
                timeout=timeout, wire_group=wire,
            )
            return payload
        result = manager.recv_tagged(wire, timeout=timeout)
        if result is None:
            raise GroupError(f"broadcast epoch {epoch} on {group!r} timed out")
        _origin, data = result
        return data

    def gather(
        self,
        group: str,
        payload: bytes,
        root: Optional[str] = None,
        timeout: float = 10.0,
    ) -> Optional[Dict[str, bytes]]:
        """Every member contributes; the root returns {member: payload},
        everyone else returns None."""
        manager = self.manager
        view = manager.view(group)
        root = root or view.coordinator
        epoch = self._next_epoch(group, "gather")
        wire = self._wire(group, "gather", epoch)
        if manager.me == root:
            results = {manager.me: payload}
            expected = len(view.members) - 1
            for _ in range(expected):
                item = manager.recv_tagged(wire, timeout=timeout)
                if item is None:
                    raise GroupError(
                        f"gather epoch {epoch} on {group!r}: only "
                        f"{len(results) - 1}/{expected} contributions arrived"
                    )
                origin, data = item
                results[origin] = data
            return results
        manager.unicast(group, root, payload, wire_group=wire)
        return None

    def scatter(
        self,
        group: str,
        chunks: Optional[Dict[str, bytes]] = None,
        root: Optional[str] = None,
        timeout: float = 10.0,
    ) -> bytes:
        """The root distributes ``chunks[member]`` to each member; every
        member (root included) returns its own piece."""
        manager = self.manager
        view = manager.view(group)
        root = root or view.coordinator
        epoch = self._next_epoch(group, "scatter")
        wire = self._wire(group, "scatter", epoch)
        if manager.me == root:
            if chunks is None:
                raise GroupError("the scatter root must supply the chunks")
            missing = set(view.members) - set(chunks)
            if missing:
                raise GroupError(f"scatter missing chunks for {sorted(missing)}")
            for member in view.others(manager.me):
                manager.unicast(group, member, chunks[member], wire_group=wire)
            return chunks[manager.me]
        item = manager.recv_tagged(wire, timeout=timeout)
        if item is None:
            raise GroupError(f"scatter epoch {epoch} on {group!r} timed out")
        _origin, data = item
        return data

    def reduce(
        self,
        group: str,
        payload: bytes,
        fold: Callable[[List[bytes]], bytes],
        root: Optional[str] = None,
        timeout: float = 10.0,
    ) -> Optional[bytes]:
        """Fold every member's contribution at the root.

        ``fold`` receives the contributions ordered by member id (a
        deterministic order every member can predict).  Root returns the
        folded value; others return None.
        """
        manager = self.manager
        view = manager.view(group)
        root = root or view.coordinator
        gathered = self.gather(group, payload, root=root, timeout=timeout)
        if gathered is None:
            return None
        ordered = [gathered[member] for member in sorted(gathered)]
        return fold(ordered)

    def allreduce(
        self,
        group: str,
        payload: bytes,
        fold: Callable[[List[bytes]], bytes],
        timeout: float = 10.0,
    ) -> bytes:
        """reduce at the coordinator, then broadcast of the result."""
        manager = self.manager
        view = manager.view(group)
        root = view.coordinator
        reduced = self.reduce(group, payload, fold, root=root, timeout=timeout)
        if manager.me == root:
            return self.broadcast(group, reduced, root=root, timeout=timeout)
        return self.broadcast(group, None, root=root, timeout=timeout)


# -- common folds ------------------------------------------------------------


def fold_concat(parts: List[bytes]) -> bytes:
    """Concatenate contributions in member order."""
    return b"".join(parts)


def fold_sum_u64(parts: List[bytes]) -> bytes:
    """Sum contributions interpreted as big-endian u64 (8 bytes each)."""
    total = sum(int.from_bytes(p, "big") for p in parts)
    return (total & (2**64 - 1)).to_bytes(8, "big")


def fold_max_u64(parts: List[bytes]) -> bytes:
    """Maximum of contributions interpreted as big-endian u64."""
    return max(int.from_bytes(p, "big") for p in parts).to_bytes(8, "big")
