"""Group communication services (paper §2).

NCS "supports ... multicasting algorithms (e.g., repetitive send/receive
or a multicast spanning tree)", selected per group at runtime, with
dynamic membership maintained over the control plane (Fig. 2's
"Control Information (e.g., Membership information)").

* :class:`GroupManager` — per-node group service: membership, multicast
  send/receive, barrier synchronization;
* ``algorithm="repetitive"`` — the origin sends the message point-to-
  point to every member in turn;
* ``algorithm="spanning_tree"`` — members form a deterministic k-ary
  tree rooted at the origin and forward along tree edges, so the origin
  pays O(k) sends instead of O(n).
"""

from repro.multicast.collective import (
    Collective,
    fold_concat,
    fold_max_u64,
    fold_sum_u64,
)
from repro.multicast.envelope import MulticastEnvelope
from repro.multicast.group import GroupManager, GroupView
from repro.multicast.tree import spanning_tree_children, tree_depth

MULTICAST_ALGORITHMS = ("repetitive", "spanning_tree")

__all__ = [
    "Collective",
    "GroupManager",
    "GroupView",
    "MULTICAST_ALGORITHMS",
    "MulticastEnvelope",
    "fold_concat",
    "fold_max_u64",
    "fold_sum_u64",
    "spanning_tree_children",
    "tree_depth",
]
