"""Group membership, multicast, and barrier synchronization.

One :class:`GroupManager` per node.  Membership is coordinator-based:
the creator of a group is its coordinator; joins/leaves go to the
coordinator over the control plane, and every change pushes a
:class:`~repro.protocol.pdus.GroupInfoPdu` snapshot to all members —
the "Control Information (e.g., Membership information)" flowing between
participants in the paper's Fig. 2.

Multicast *data* travels over ordinary NCS point-to-point connections
(lazily established between member pairs), using either algorithm from
the paper: repetitive send/receive, or store-and-forward down the
deterministic spanning tree of :mod:`repro.multicast.tree`.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ConnectionConfig
from repro.core.connection import Connection
from repro.core.errors import NcsError, NCSOverloaded, SendFailedError
from repro.multicast.envelope import EnvelopeError, MulticastEnvelope
from repro.multicast.tree import spanning_tree_children
from repro.protocol.pdus import (
    BarrierPdu,
    GroupInfoPdu,
    GroupJoinPdu,
    GroupLeavePdu,
)

#: dst_node prefix marking a connection as group-layer traffic.
GROUP_PEER_PREFIX = "#group"


class _EnvelopeDedup:
    """Exactly-once admission of one origin's envelope sequence numbers.

    A member sees only the subset of an origin's seqs addressed to it,
    so a contiguous watermark never compacts; instead keep a bounded
    window of recent seqs (duplicates are produced by repair races and
    arrive within the EC retry horizon, far inside the window) plus a
    floor below which everything is stale.
    """

    WINDOW = 4096

    def __init__(self):
        self._seen: set = set()
        self._order: deque = deque()
        self._floor = 0

    def accept(self, seq: int) -> bool:
        if seq <= self._floor or seq in self._seen:
            return False
        self._seen.add(seq)
        self._order.append(seq)
        while len(self._order) > self.WINDOW:
            evicted = self._order.popleft()
            self._seen.discard(evicted)
            self._floor = max(self._floor, evicted)
        return True


class GroupError(NcsError):
    """Group-layer failure (unknown group, join timeout, ...)."""


@dataclass
class GroupView:
    """A member's current picture of one group."""

    name: str
    version: int
    members: List[str]
    coordinator: str

    def others(self, me: str) -> List[str]:
        return [m for m in self.members if m != me]


@dataclass
class _CoordinatorState:
    """Book-keeping held only at the group's coordinator."""

    members: List[str] = field(default_factory=list)
    version: int = 0
    #: barrier epoch -> set of members that have arrived
    arrivals: Dict[int, set] = field(default_factory=dict)


class GroupManager:
    """Per-node group communication service."""

    def __init__(
        self,
        node,
        data_config: Optional[ConnectionConfig] = None,
        fanout: int = 2,
    ):
        self.node = node
        self.me = f"{node.host}:{node.control_port}"
        self.fanout = fanout
        self.data_config = data_config or ConnectionConfig(interface="sci")
        self._views: Dict[str, GroupView] = {}
        self._coordinating: Dict[str, _CoordinatorState] = {}
        self._queues: Dict[str, object] = {}  # group -> pkg.channel
        self._data_conns: Dict[str, Connection] = {}
        self._lock = threading.Lock()
        self._membership_events: Dict[str, threading.Event] = {}
        #: group -> local barrier epoch counter
        self._barrier_epochs: Dict[str, int] = {}
        self._barrier_events: Dict[Tuple[str, int], threading.Event] = {}
        node.group_pdu_handler = self._on_group_pdu
        node.accept_router = self._route_accepted
        self.multicasts_sent = 0
        self.envelopes_forwarded = 0
        #: Sum of per-multicast target counts: divide by multicasts_sent
        #: for the mean first-hop fan-out of the chosen algorithm.
        self.fanout_total = 0
        #: Members whose data connection failed: multicasts route around
        #: them and the coordinator is told to drop them (tree repair).
        self._dead_members: set = set()
        #: Dead members whose removal we have seen in a membership push;
        #: if such a member reappears in a later push it rejoined and is
        #: revived.
        self._confirmed_left: set = set()
        self.route_arounds = 0
        self.members_marked_dead = 0
        #: Fan-out sends refused by the node's memory budget: the member
        #: stays alive (it's *our* budget, not their failure) and the
        #: caller gets typed backpressure.
        self.fanout_overloads = 0
        #: Outgoing envelope sequence (per manager, so per origin) and
        #: the per-origin admission filters: tree repair racing an
        #: in-flight multicast can cover one member twice, and the
        #: duplicate must die here, not reach the application.
        self._seq = itertools.count(1)
        self._seen: Dict[str, _EnvelopeDedup] = {}
        self.duplicate_envelopes = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def create(self, group: str) -> GroupView:
        """Create ``group`` with this node as coordinator and member."""
        with self._lock:
            if group in self._views:
                raise GroupError(f"group {group!r} already exists locally")
            state = _CoordinatorState(members=[self.me], version=1)
            self._coordinating[group] = state
            view = GroupView(group, 1, [self.me], self.me)
            self._views[group] = view
            self._ensure_queue(group)
            return view

    def join(
        self,
        group: str,
        coordinator: Tuple[str, int],
        timeout: float = 5.0,
    ) -> GroupView:
        """Join a group managed by the node at ``coordinator``."""
        event = threading.Event()
        with self._lock:
            self._membership_events[group] = event
            self._ensure_queue(group)
        link = self.node.control_link(coordinator)
        self.node.control_send(link, GroupJoinPdu(group, self.me))
        if not event.wait(timeout):
            raise GroupError(f"join of group {group!r} timed out")
        return self.view(group)

    def leave(self, group: str) -> None:
        """Leave a remote group (coordinators cannot leave their group)."""
        view = self.view(group)
        if view.coordinator == self.me:
            raise GroupError("the coordinator cannot leave its own group")
        host, port = view.coordinator.rsplit(":", 1)
        link = self.node.control_link((host, int(port)))
        self.node.control_send(link, GroupLeavePdu(group, self.me))
        with self._lock:
            self._views.pop(group, None)

    def view(self, group: str) -> GroupView:
        with self._lock:
            view = self._views.get(group)
        if view is None:
            raise GroupError(f"not a member of group {group!r}")
        return view

    # ------------------------------------------------------------------
    # Multicast
    # ------------------------------------------------------------------

    def multicast(
        self,
        group: str,
        payload: bytes,
        algorithm: str = "spanning_tree",
        wait: bool = False,
        timeout: Optional[float] = 10.0,
        wire_group: Optional[str] = None,
    ) -> None:
        """Send ``payload`` to every other member of ``group``.

        ``algorithm`` is per-call, mirroring the paper's runtime
        selection: "repetitive" sends point-to-point to each member;
        "spanning_tree" sends to this node's tree children, who forward.
        ``wire_group`` (internal) lets collectives route replies into a
        dedicated delivery queue while using the real group's membership.
        """
        view = self.view(group)
        wire = wire_group or group
        seq = next(self._seq)
        if algorithm == "repetitive":
            targets = view.others(self.me)
            envelope = MulticastEnvelope(
                wire, self.me, view.version, False, payload, seq=seq
            )
        elif algorithm == "spanning_tree":
            targets = spanning_tree_children(
                view.members, origin=self.me, me=self.me, fanout=self.fanout
            )
            envelope = MulticastEnvelope(
                wire, self.me, view.version, True, payload, seq=seq
            )
        else:
            raise ValueError(
                f"unknown multicast algorithm {algorithm!r}; "
                "choose 'repetitive' or 'spanning_tree'"
            )
        frame = envelope.encode()
        # Graceful degradation: a dead child's subtree would have received
        # the message by forwarding — cover those members with direct
        # sends until the coordinator repairs the tree.  Failures show up
        # either synchronously (_try_send returns None) or, for a peer
        # that died mid-flight, at handle.wait() as SendFailedError; both
        # paths feed the same route-around.
        pending: List[tuple] = []  # (member, handle) awaiting wait()
        covered = {self.me}
        to_send = list(targets)
        while to_send:
            failed = []
            for member in to_send:
                handle = self._try_send(group, member, frame)
                if handle is None:
                    failed.append(member)
                else:
                    pending.append((member, handle))
                    covered.add(member)
            if failed and algorithm == "spanning_tree":
                to_send = self._route_around(view, self.me, failed, covered)
            else:
                to_send = []
        self.multicasts_sent += 1
        self.fanout_total += len(targets)
        if self.node.tracer.enabled:
            self.node.tracer.emit(
                "multicast",
                "fanout",
                group=group,
                algorithm=algorithm,
                targets=len(targets),
                size=len(payload),
            )
        if wait:
            while pending:
                failed = []
                for member, handle in pending:
                    try:
                        handle.wait(timeout)
                    except SendFailedError:
                        self._mark_dead(group, member, "send retries exhausted")
                        covered.discard(member)
                        failed.append(member)
                if not (failed and algorithm == "spanning_tree"):
                    break
                pending = []
                for member in self._route_around(view, self.me, failed, covered):
                    handle = self._try_send(group, member, frame)
                    if handle is not None:
                        pending.append((member, handle))
                        covered.add(member)

    def unicast(
        self,
        group: str,
        member: str,
        payload: bytes,
        wire_group: Optional[str] = None,
    ) -> None:
        """Send ``payload`` to one specific member of ``group``
        (the building block of gather/scatter)."""
        view = self.view(group)
        envelope = MulticastEnvelope(
            wire_group or group, self.me, view.version, False, payload,
            seq=next(self._seq),
        )
        self._data_conn(member).send(envelope.encode())

    def recv(self, group: str, timeout: Optional[float] = None) -> Optional[bytes]:
        """Next multicast payload delivered to this member."""
        queue = self._ensure_queue(group)
        try:
            return queue.get(timeout=timeout)
        except TimeoutError:
            return None

    # ------------------------------------------------------------------
    # Barrier synchronization
    # ------------------------------------------------------------------

    def barrier(self, group: str, timeout: float = 10.0) -> None:
        """Block until every member of ``group`` has called barrier().

        Epochs are implicit: the Nth barrier() call on each member forms
        the Nth global barrier, so members must call it in lockstep.
        """
        view = self.view(group)
        with self._lock:
            epoch = self._barrier_epochs.get(group, 0) + 1
            self._barrier_epochs[group] = epoch
            event = threading.Event()
            self._barrier_events[(group, epoch)] = event
        arrive = BarrierPdu(group, epoch, 0, self.me)
        if view.coordinator == self.me:
            self._coordinator_barrier_arrive(arrive)
        else:
            host, port = view.coordinator.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, arrive)
        if not event.wait(timeout):
            raise GroupError(
                f"barrier epoch {epoch} of group {group!r} timed out"
            )
        with self._lock:
            self._barrier_events.pop((group, epoch), None)

    # ------------------------------------------------------------------
    # Control-plane handling (installed as node.group_pdu_handler)
    # ------------------------------------------------------------------

    def _on_group_pdu(self, pdu, link) -> None:
        if isinstance(pdu, GroupJoinPdu):
            self._coordinator_add(pdu.group, pdu.member)
        elif isinstance(pdu, GroupLeavePdu):
            self._coordinator_remove(pdu.group, pdu.member)
        elif isinstance(pdu, GroupInfoPdu):
            self._apply_membership(pdu)
        elif isinstance(pdu, BarrierPdu):
            if pdu.phase == 0:
                self._coordinator_barrier_arrive(pdu)
            else:
                self._barrier_release(pdu)

    def _coordinator_add(self, group: str, member: str) -> None:
        with self._lock:
            state = self._coordinating.get(group)
            if state is None:
                return
            if member not in state.members:
                state.members.append(member)
                state.version += 1
        self._push_membership(group)

    def _coordinator_remove(self, group: str, member: str) -> None:
        with self._lock:
            state = self._coordinating.get(group)
            if state is None or member not in state.members:
                return
            state.members.remove(member)
            state.version += 1
        self._push_membership(group)

    def _push_membership(self, group: str) -> None:
        with self._lock:
            state = self._coordinating[group]
            snapshot = GroupInfoPdu(group, state.version, tuple(state.members))
        self._apply_membership(snapshot)  # coordinator updates itself
        for member in snapshot.members:
            if member == self.me:
                continue
            host, port = member.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, snapshot)

    def _apply_membership(self, pdu: GroupInfoPdu) -> None:
        with self._lock:
            view = self._views.get(pdu.group)
            old_members = set(view.members) if view is not None else set()
            new_members = set(pdu.members)
            # Dead-member lifecycle: once a push omits a member we marked
            # dead, its removal is confirmed; if a confirmed-removed
            # member shows up in a later push it rejoined — revive it.
            departed = (self._dead_members & old_members) - new_members
            self._dead_members -= departed
            self._confirmed_left |= departed
            revived = self._confirmed_left & new_members
            self._confirmed_left -= revived
            coordinator = view.coordinator if view is not None else (
                self.me if pdu.group in self._coordinating else None
            )
            if coordinator is None:
                # First snapshot after our join: the pusher coordinates.
                coordinator = pdu.members[0] if pdu.members else self.me
            self._views[pdu.group] = GroupView(
                pdu.group, pdu.version, list(pdu.members), coordinator
            )
            self._ensure_queue(pdu.group)
            event = self._membership_events.get(pdu.group)
        if event is not None and self.me in pdu.members:
            event.set()

    def _coordinator_barrier_arrive(self, pdu: BarrierPdu) -> None:
        with self._lock:
            state = self._coordinating.get(pdu.group)
            if state is None:
                return
            arrived = state.arrivals.setdefault(pdu.epoch, set())
            arrived.add(pdu.member)
            complete = len(arrived) >= len(state.members)
            members = list(state.members)
            if complete:
                state.arrivals.pop(pdu.epoch, None)
        if not complete:
            return
        release = BarrierPdu(pdu.group, pdu.epoch, 1, self.me)
        self._barrier_release(release)  # coordinator releases itself
        for member in members:
            if member == self.me:
                continue
            host, port = member.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, release)

    def _barrier_release(self, pdu: BarrierPdu) -> None:
        with self._lock:
            event = self._barrier_events.get((pdu.group, pdu.epoch))
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    # Fault handling: dead members, route-around, tree repair
    # ------------------------------------------------------------------

    def _try_send(self, group: str, member: str, frame: bytes):
        """Send to one member; on failure mark it dead and return None.

        :class:`NCSOverloaded` is the exception to the death rule: the
        member is healthy, *this node's* memory budget refused the send.
        Marking it dead would amputate a live subtree over local
        pressure, so the overload is counted and re-raised for the
        caller to apply backpressure.
        """
        if member in self._dead_members:
            return None
        try:
            return self._data_conn(member).send(frame)
        except NCSOverloaded:
            self.fanout_overloads += 1
            self.node.recorder.record(
                "pressure", "fanout_overload", group=group, member=member
            )
            raise
        except (NcsError, OSError) as exc:
            self._mark_dead(group, member, str(exc))
            return None

    def _mark_dead(self, group: str, member: str, reason: str) -> None:
        with self._lock:
            if member in self._dead_members:
                return
            self._dead_members.add(member)
            stale = self._data_conns.pop(member, None)
        self.members_marked_dead += 1
        self.node.recorder.record(
            "recovery", "member_dead",
            group=group, member=member, reason=reason[:80],
        )
        if stale is not None and not stale.closed:
            stale.close(notify_peer=False)
        # Tree repair: tell the coordinator so the next membership push
        # rebuilds the spanning tree without the dead member.
        view = self._views.get(group)
        if view is None:
            return
        if view.coordinator == self.me:
            self._coordinator_remove(group, member)
        else:
            try:
                host, port = view.coordinator.rsplit(":", 1)
                link = self.node.control_link((host, int(port)))
                self.node.control_send(link, GroupLeavePdu(group, member))
            except (NcsError, OSError):
                pass  # coordinator unreachable; local route-around stands

    def _route_around(
        self, view: GroupView, origin: str, failed: List[str], covered: set
    ) -> List[str]:
        """Alive members in the subtrees of ``failed`` children.

        Walks each dead child's subtree (in the tree rooted at
        ``origin``); alive descendants get direct delivery, dead ones
        are descended through so *their* subtrees stay covered too.
        """
        result: List[str] = []
        stack = list(failed)
        seen = set(failed)
        while stack:
            dead = stack.pop()
            self.route_arounds += 1
            try:
                children = spanning_tree_children(
                    view.members, origin=origin, me=dead, fanout=self.fanout
                )
            except ValueError:
                continue
            for child in children:
                if child in seen or child in covered:
                    continue
                seen.add(child)
                if child in self._dead_members:
                    stack.append(child)
                else:
                    result.append(child)
        if result:
            self.node.recorder.record(
                "recovery", "route_around",
                group=view.name, dead=len(failed), rerouted=len(result),
            )
        return result

    # ------------------------------------------------------------------
    # Data-plane plumbing
    # ------------------------------------------------------------------

    def _ensure_queue(self, group: str):
        queue = self._queues.get(group)
        if queue is None:
            queue = self.node.pkg.channel()
            self._queues[group] = queue
        return queue

    def _data_conn(self, member: str) -> Connection:
        with self._lock:
            connection = self._data_conns.get(member)
        if connection is not None and not connection.closed:
            return connection
        host, port = member.rsplit(":", 1)
        connection = self.node.connect(
            (host, int(port)),
            self.data_config,
            peer_name=f"{GROUP_PEER_PREFIX}:{self.me}",
        )
        with self._lock:
            self._data_conns[member] = connection
        self.node.pkg.spawn(
            self._pump, connection, name=f"{self.node.name}-mcastpump"
        )
        return connection

    def _route_accepted(self, request, connection: Connection) -> bool:
        """Claim inbound group-layer connections (node.accept_router)."""
        if not request.dst_node.startswith(GROUP_PEER_PREFIX):
            return False
        # The initiator embeds its member id after the prefix.
        peer_member = request.dst_node[len(GROUP_PEER_PREFIX) + 1 :]
        with self._lock:
            self._data_conns.setdefault(peer_member, connection)
        self.node.pkg.spawn(
            self._pump, connection, name=f"{self.node.name}-mcastpump"
        )
        return True

    def _pump(self, connection: Connection) -> None:
        """Receive loop for one group data connection."""
        while not connection.closed:
            try:
                frame = connection.recv(timeout=0.2)
            except NcsError:
                return
            if frame is None:
                continue
            try:
                envelope = MulticastEnvelope.decode(frame)
            except EnvelopeError:
                continue
            self._handle_envelope(envelope)

    def _handle_envelope(self, envelope: MulticastEnvelope) -> None:
        # Exactly-once admission: a route-around racing a tree repair can
        # legitimately send us the same envelope twice (origin and
        # forwarders computing different trees); drop the second copy —
        # and do not forward it, the first copy already did.
        if envelope.seq:
            with self._lock:
                dedup = self._seen.get(envelope.origin)
                if dedup is None:
                    dedup = self._seen[envelope.origin] = _EnvelopeDedup()
                fresh = dedup.accept(envelope.seq)
            if not fresh:
                self.duplicate_envelopes += 1
                return
        # Collective operations address pseudo-groups ("team#gather:3"):
        # membership and forwarding come from the base group, delivery
        # goes to the pseudo-group's own queue tagged with the origin.
        base_group, _sep, _op = envelope.group.partition("#")
        queue = self._ensure_queue(envelope.group)
        if _sep:
            queue.put((envelope.origin, envelope.payload))
        else:
            queue.put(envelope.payload)
        if not envelope.forward:
            return
        with self._lock:
            view = self._views.get(base_group)
        if view is None:
            return
        try:
            children = spanning_tree_children(
                view.members, origin=envelope.origin, me=self.me, fanout=self.fanout
            )
        except ValueError:
            return  # stale membership: origin or we left the group
        frame = envelope.encode()
        failed = []
        for child in children:
            try:
                sent = self._try_send(base_group, child, frame)
            except NCSOverloaded:
                # Local budget refused the forward: skip this child for
                # now (counted in _try_send); the origin's retransmission
                # covers the subtree, and the child is NOT dead.
                continue
            if sent is None:
                failed.append(child)
            else:
                self.envelopes_forwarded += 1
        if failed:
            # Forwarders repair locally too: a dead child's subtree gets
            # the envelope by direct send (still tagged forward=True so
            # grandchildren keep forwarding from their own position).
            covered = {self.me, *children} - set(failed)
            for member in self._route_around(
                view, envelope.origin, failed, covered
            ):
                try:
                    if self._try_send(base_group, member, frame) is not None:
                        self.envelopes_forwarded += 1
                except NCSOverloaded:
                    continue
        if children and self.node.tracer.enabled:
            self.node.tracer.emit(
                "multicast",
                "forward",
                group=base_group,
                origin=envelope.origin,
                children=len(children),
            )

    def recv_tagged(
        self, wire_group: str, timeout: Optional[float] = None
    ) -> Optional[tuple]:
        """Next (origin, payload) pair from a collective pseudo-group."""
        queue = self._ensure_queue(wire_group)
        try:
            return queue.get(timeout=timeout)
        except TimeoutError:
            return None

    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """Observable counters for the metrics collector."""
        with self._lock:
            groups = len(self._views)
            data_conns = len(self._data_conns)
        return {
            "groups": groups,
            "data_connections": data_conns,
            "multicasts_sent": self.multicasts_sent,
            "envelopes_forwarded": self.envelopes_forwarded,
            "fanout_total": self.fanout_total,
            "dead_members": len(self._dead_members),
            "members_marked_dead": self.members_marked_dead,
            "fanout_overloads": self.fanout_overloads,
            "route_arounds": self.route_arounds,
            "duplicate_envelopes": self.duplicate_envelopes,
        }

    def close(self) -> None:
        """Drop group state (connections are owned by the node)."""
        with self._lock:
            self._views.clear()
            self._coordinating.clear()
            self._data_conns.clear()
