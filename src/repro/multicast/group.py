"""Group membership, multicast, and barrier synchronization.

One :class:`GroupManager` per node.  Membership is coordinator-based:
the creator of a group is its coordinator; joins/leaves go to the
coordinator over the control plane, and every change pushes a
:class:`~repro.protocol.pdus.GroupInfoPdu` snapshot to all members —
the "Control Information (e.g., Membership information)" flowing between
participants in the paper's Fig. 2.

Multicast *data* travels over ordinary NCS point-to-point connections
(lazily established between member pairs), using either algorithm from
the paper: repetitive send/receive, or store-and-forward down the
deterministic spanning tree of :mod:`repro.multicast.tree`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ConnectionConfig
from repro.core.connection import Connection
from repro.core.errors import NcsError
from repro.multicast.envelope import EnvelopeError, MulticastEnvelope
from repro.multicast.tree import spanning_tree_children
from repro.protocol.pdus import (
    BarrierPdu,
    GroupInfoPdu,
    GroupJoinPdu,
    GroupLeavePdu,
)

#: dst_node prefix marking a connection as group-layer traffic.
GROUP_PEER_PREFIX = "#group"


class GroupError(NcsError):
    """Group-layer failure (unknown group, join timeout, ...)."""


@dataclass
class GroupView:
    """A member's current picture of one group."""

    name: str
    version: int
    members: List[str]
    coordinator: str

    def others(self, me: str) -> List[str]:
        return [m for m in self.members if m != me]


@dataclass
class _CoordinatorState:
    """Book-keeping held only at the group's coordinator."""

    members: List[str] = field(default_factory=list)
    version: int = 0
    #: barrier epoch -> set of members that have arrived
    arrivals: Dict[int, set] = field(default_factory=dict)


class GroupManager:
    """Per-node group communication service."""

    def __init__(
        self,
        node,
        data_config: Optional[ConnectionConfig] = None,
        fanout: int = 2,
    ):
        self.node = node
        self.me = f"{node.host}:{node.control_port}"
        self.fanout = fanout
        self.data_config = data_config or ConnectionConfig(interface="sci")
        self._views: Dict[str, GroupView] = {}
        self._coordinating: Dict[str, _CoordinatorState] = {}
        self._queues: Dict[str, object] = {}  # group -> pkg.channel
        self._data_conns: Dict[str, Connection] = {}
        self._lock = threading.Lock()
        self._membership_events: Dict[str, threading.Event] = {}
        #: group -> local barrier epoch counter
        self._barrier_epochs: Dict[str, int] = {}
        self._barrier_events: Dict[Tuple[str, int], threading.Event] = {}
        node.group_pdu_handler = self._on_group_pdu
        node.accept_router = self._route_accepted
        self.multicasts_sent = 0
        self.envelopes_forwarded = 0
        #: Sum of per-multicast target counts: divide by multicasts_sent
        #: for the mean first-hop fan-out of the chosen algorithm.
        self.fanout_total = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def create(self, group: str) -> GroupView:
        """Create ``group`` with this node as coordinator and member."""
        with self._lock:
            if group in self._views:
                raise GroupError(f"group {group!r} already exists locally")
            state = _CoordinatorState(members=[self.me], version=1)
            self._coordinating[group] = state
            view = GroupView(group, 1, [self.me], self.me)
            self._views[group] = view
            self._ensure_queue(group)
            return view

    def join(
        self,
        group: str,
        coordinator: Tuple[str, int],
        timeout: float = 5.0,
    ) -> GroupView:
        """Join a group managed by the node at ``coordinator``."""
        event = threading.Event()
        with self._lock:
            self._membership_events[group] = event
            self._ensure_queue(group)
        link = self.node.control_link(coordinator)
        self.node.control_send(link, GroupJoinPdu(group, self.me))
        if not event.wait(timeout):
            raise GroupError(f"join of group {group!r} timed out")
        return self.view(group)

    def leave(self, group: str) -> None:
        """Leave a remote group (coordinators cannot leave their group)."""
        view = self.view(group)
        if view.coordinator == self.me:
            raise GroupError("the coordinator cannot leave its own group")
        host, port = view.coordinator.rsplit(":", 1)
        link = self.node.control_link((host, int(port)))
        self.node.control_send(link, GroupLeavePdu(group, self.me))
        with self._lock:
            self._views.pop(group, None)

    def view(self, group: str) -> GroupView:
        with self._lock:
            view = self._views.get(group)
        if view is None:
            raise GroupError(f"not a member of group {group!r}")
        return view

    # ------------------------------------------------------------------
    # Multicast
    # ------------------------------------------------------------------

    def multicast(
        self,
        group: str,
        payload: bytes,
        algorithm: str = "spanning_tree",
        wait: bool = False,
        timeout: Optional[float] = 10.0,
        wire_group: Optional[str] = None,
    ) -> None:
        """Send ``payload`` to every other member of ``group``.

        ``algorithm`` is per-call, mirroring the paper's runtime
        selection: "repetitive" sends point-to-point to each member;
        "spanning_tree" sends to this node's tree children, who forward.
        ``wire_group`` (internal) lets collectives route replies into a
        dedicated delivery queue while using the real group's membership.
        """
        view = self.view(group)
        wire = wire_group or group
        if algorithm == "repetitive":
            targets = view.others(self.me)
            envelope = MulticastEnvelope(wire, self.me, view.version, False, payload)
        elif algorithm == "spanning_tree":
            targets = spanning_tree_children(
                view.members, origin=self.me, me=self.me, fanout=self.fanout
            )
            envelope = MulticastEnvelope(wire, self.me, view.version, True, payload)
        else:
            raise ValueError(
                f"unknown multicast algorithm {algorithm!r}; "
                "choose 'repetitive' or 'spanning_tree'"
            )
        frame = envelope.encode()
        handles = []
        for member in targets:
            connection = self._data_conn(member)
            handles.append(connection.send(frame))
        self.multicasts_sent += 1
        self.fanout_total += len(targets)
        if self.node.tracer.enabled:
            self.node.tracer.emit(
                "multicast",
                "fanout",
                group=group,
                algorithm=algorithm,
                targets=len(targets),
                size=len(payload),
            )
        if wait:
            for handle in handles:
                handle.wait(timeout)

    def unicast(
        self,
        group: str,
        member: str,
        payload: bytes,
        wire_group: Optional[str] = None,
    ) -> None:
        """Send ``payload`` to one specific member of ``group``
        (the building block of gather/scatter)."""
        view = self.view(group)
        envelope = MulticastEnvelope(
            wire_group or group, self.me, view.version, False, payload
        )
        self._data_conn(member).send(envelope.encode())

    def recv(self, group: str, timeout: Optional[float] = None) -> Optional[bytes]:
        """Next multicast payload delivered to this member."""
        queue = self._ensure_queue(group)
        try:
            return queue.get(timeout=timeout)
        except TimeoutError:
            return None

    # ------------------------------------------------------------------
    # Barrier synchronization
    # ------------------------------------------------------------------

    def barrier(self, group: str, timeout: float = 10.0) -> None:
        """Block until every member of ``group`` has called barrier().

        Epochs are implicit: the Nth barrier() call on each member forms
        the Nth global barrier, so members must call it in lockstep.
        """
        view = self.view(group)
        with self._lock:
            epoch = self._barrier_epochs.get(group, 0) + 1
            self._barrier_epochs[group] = epoch
            event = threading.Event()
            self._barrier_events[(group, epoch)] = event
        arrive = BarrierPdu(group, epoch, 0, self.me)
        if view.coordinator == self.me:
            self._coordinator_barrier_arrive(arrive)
        else:
            host, port = view.coordinator.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, arrive)
        if not event.wait(timeout):
            raise GroupError(
                f"barrier epoch {epoch} of group {group!r} timed out"
            )
        with self._lock:
            self._barrier_events.pop((group, epoch), None)

    # ------------------------------------------------------------------
    # Control-plane handling (installed as node.group_pdu_handler)
    # ------------------------------------------------------------------

    def _on_group_pdu(self, pdu, link) -> None:
        if isinstance(pdu, GroupJoinPdu):
            self._coordinator_add(pdu.group, pdu.member)
        elif isinstance(pdu, GroupLeavePdu):
            self._coordinator_remove(pdu.group, pdu.member)
        elif isinstance(pdu, GroupInfoPdu):
            self._apply_membership(pdu)
        elif isinstance(pdu, BarrierPdu):
            if pdu.phase == 0:
                self._coordinator_barrier_arrive(pdu)
            else:
                self._barrier_release(pdu)

    def _coordinator_add(self, group: str, member: str) -> None:
        with self._lock:
            state = self._coordinating.get(group)
            if state is None:
                return
            if member not in state.members:
                state.members.append(member)
                state.version += 1
        self._push_membership(group)

    def _coordinator_remove(self, group: str, member: str) -> None:
        with self._lock:
            state = self._coordinating.get(group)
            if state is None or member not in state.members:
                return
            state.members.remove(member)
            state.version += 1
        self._push_membership(group)

    def _push_membership(self, group: str) -> None:
        with self._lock:
            state = self._coordinating[group]
            snapshot = GroupInfoPdu(group, state.version, tuple(state.members))
        self._apply_membership(snapshot)  # coordinator updates itself
        for member in snapshot.members:
            if member == self.me:
                continue
            host, port = member.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, snapshot)

    def _apply_membership(self, pdu: GroupInfoPdu) -> None:
        with self._lock:
            view = self._views.get(pdu.group)
            coordinator = view.coordinator if view is not None else (
                self.me if pdu.group in self._coordinating else None
            )
            if coordinator is None:
                # First snapshot after our join: the pusher coordinates.
                coordinator = pdu.members[0] if pdu.members else self.me
            self._views[pdu.group] = GroupView(
                pdu.group, pdu.version, list(pdu.members), coordinator
            )
            self._ensure_queue(pdu.group)
            event = self._membership_events.get(pdu.group)
        if event is not None and self.me in pdu.members:
            event.set()

    def _coordinator_barrier_arrive(self, pdu: BarrierPdu) -> None:
        with self._lock:
            state = self._coordinating.get(pdu.group)
            if state is None:
                return
            arrived = state.arrivals.setdefault(pdu.epoch, set())
            arrived.add(pdu.member)
            complete = len(arrived) >= len(state.members)
            members = list(state.members)
            if complete:
                state.arrivals.pop(pdu.epoch, None)
        if not complete:
            return
        release = BarrierPdu(pdu.group, pdu.epoch, 1, self.me)
        self._barrier_release(release)  # coordinator releases itself
        for member in members:
            if member == self.me:
                continue
            host, port = member.rsplit(":", 1)
            link = self.node.control_link((host, int(port)))
            self.node.control_send(link, release)

    def _barrier_release(self, pdu: BarrierPdu) -> None:
        with self._lock:
            event = self._barrier_events.get((pdu.group, pdu.epoch))
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    # Data-plane plumbing
    # ------------------------------------------------------------------

    def _ensure_queue(self, group: str):
        queue = self._queues.get(group)
        if queue is None:
            queue = self.node.pkg.channel()
            self._queues[group] = queue
        return queue

    def _data_conn(self, member: str) -> Connection:
        with self._lock:
            connection = self._data_conns.get(member)
        if connection is not None and not connection.closed:
            return connection
        host, port = member.rsplit(":", 1)
        connection = self.node.connect(
            (host, int(port)),
            self.data_config,
            peer_name=f"{GROUP_PEER_PREFIX}:{self.me}",
        )
        with self._lock:
            self._data_conns[member] = connection
        self.node.pkg.spawn(
            self._pump, connection, name=f"{self.node.name}-mcastpump"
        )
        return connection

    def _route_accepted(self, request, connection: Connection) -> bool:
        """Claim inbound group-layer connections (node.accept_router)."""
        if not request.dst_node.startswith(GROUP_PEER_PREFIX):
            return False
        # The initiator embeds its member id after the prefix.
        peer_member = request.dst_node[len(GROUP_PEER_PREFIX) + 1 :]
        with self._lock:
            self._data_conns.setdefault(peer_member, connection)
        self.node.pkg.spawn(
            self._pump, connection, name=f"{self.node.name}-mcastpump"
        )
        return True

    def _pump(self, connection: Connection) -> None:
        """Receive loop for one group data connection."""
        while not connection.closed:
            try:
                frame = connection.recv(timeout=0.2)
            except NcsError:
                return
            if frame is None:
                continue
            try:
                envelope = MulticastEnvelope.decode(frame)
            except EnvelopeError:
                continue
            self._handle_envelope(envelope)

    def _handle_envelope(self, envelope: MulticastEnvelope) -> None:
        # Collective operations address pseudo-groups ("team#gather:3"):
        # membership and forwarding come from the base group, delivery
        # goes to the pseudo-group's own queue tagged with the origin.
        base_group, _sep, _op = envelope.group.partition("#")
        queue = self._ensure_queue(envelope.group)
        if _sep:
            queue.put((envelope.origin, envelope.payload))
        else:
            queue.put(envelope.payload)
        if not envelope.forward:
            return
        with self._lock:
            view = self._views.get(base_group)
        if view is None:
            return
        try:
            children = spanning_tree_children(
                view.members, origin=envelope.origin, me=self.me, fanout=self.fanout
            )
        except ValueError:
            return  # stale membership: origin or we left the group
        frame = envelope.encode()
        for child in children:
            self._data_conn(child).send(frame)
            self.envelopes_forwarded += 1
        if children and self.node.tracer.enabled:
            self.node.tracer.emit(
                "multicast",
                "forward",
                group=base_group,
                origin=envelope.origin,
                children=len(children),
            )

    def recv_tagged(
        self, wire_group: str, timeout: Optional[float] = None
    ) -> Optional[tuple]:
        """Next (origin, payload) pair from a collective pseudo-group."""
        queue = self._ensure_queue(wire_group)
        try:
            return queue.get(timeout=timeout)
        except TimeoutError:
            return None

    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """Observable counters for the metrics collector."""
        with self._lock:
            groups = len(self._views)
            data_conns = len(self._data_conns)
        return {
            "groups": groups,
            "data_connections": data_conns,
            "multicasts_sent": self.multicasts_sent,
            "envelopes_forwarded": self.envelopes_forwarded,
            "fanout_total": self.fanout_total,
        }

    def close(self) -> None:
        """Drop group state (connections are owned by the node)."""
        with self._lock:
            self._views.clear()
            self._coordinating.clear()
            self._data_conns.clear()
