"""Effect records returned by the sans-I/O protocol engines.

Error- and flow-control engines never touch sockets or timers; every
entry point returns an :class:`Effects` describing what the caller (the
threaded runtime or the simulator) should now do: SDUs to put on the data
connection, PDUs to put on the control connection, messages to deliver to
the application, completion/failure notifications, and the next timer
deadline to arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.protocol.headers import Sdu
from repro.protocol.pdus import ControlPdu


@dataclass
class Effects:
    """Aggregated side effects requested by a protocol engine."""

    #: SDUs to transmit on the data connection, in order.
    transmits: List[Sdu] = field(default_factory=list)
    #: PDUs to transmit on the control connection, in order.
    controls: List[ControlPdu] = field(default_factory=list)
    #: Fully reassembled messages to hand to the application, in order.
    deliveries: List[bytes] = field(default_factory=list)
    #: msg_ids whose transmission completed (sender side).
    completed: List[int] = field(default_factory=list)
    #: msg_ids abandoned after exhausting retries (sender side).
    failed: List[int] = field(default_factory=list)
    #: Absolute time at which the engine next needs an ``on_timer`` call
    #: (None = no timer needed).  Callers re-arm after every entry point.
    timer_at: Optional[float] = None

    def merge(self, other: "Effects") -> "Effects":
        """Append ``other``'s effects onto this one (returns self)."""
        self.transmits.extend(other.transmits)
        self.controls.extend(other.controls)
        self.deliveries.extend(other.deliveries)
        self.completed.extend(other.completed)
        self.failed.extend(other.failed)
        if other.timer_at is not None:
            if self.timer_at is None or other.timer_at < self.timer_at:
                self.timer_at = other.timer_at
        return self

    def empty(self) -> bool:
        return not (
            self.transmits
            or self.controls
            or self.deliveries
            or self.completed
            or self.failed
        )
