"""Segmentation and reassembly.

Paper §3.2: the user message is segmented into packets of the
user-chosen SDU size (4 KB–64 KB, default 4 KB — the Fore ATM API caps
SDUs at 4 KB and a single AAL5 frame at 64 KB); each packet gets a
sequence number and an end-of-message bit; the receiver reassembles and
tracks a per-SDU status bitmap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.protocol.headers import Sdu
from repro.util.bitmap import AckBitmap

#: SDU size bounds from §3.2.  The default matches the Fore API limit.
MIN_SDU_SIZE = 4 * 1024
MAX_SDU_SIZE = 64 * 1024
DEFAULT_SDU_SIZE = 4 * 1024


def validate_sdu_size(sdu_size: int) -> int:
    """Check an SDU size against the paper's 4 KB–64 KB envelope."""
    if not MIN_SDU_SIZE <= sdu_size <= MAX_SDU_SIZE:
        raise ValueError(
            f"SDU size must be within [{MIN_SDU_SIZE}, {MAX_SDU_SIZE}] bytes "
            f"(paper §3.2), got {sdu_size}"
        )
    return sdu_size


def segment_message(
    connection_id: int,
    msg_id: int,
    payload: bytes,
    sdu_size: int,
    trace_id: int = 0,
    span_id: Optional[int] = None,
) -> list[Sdu]:
    """Split ``payload`` into framed SDUs.

    A zero-length message still produces one (empty, end-bit) SDU so the
    receiver has something to acknowledge.

    When ``trace_id`` is non-zero every SDU carries the trace envelope,
    so retransmissions (which replay the stored SDUs) stay in-trace for
    free.  ``span_id`` defaults to the message id, which is unique per
    direction — good enough to tell two messages of one trace apart.
    """
    validate_sdu_size(sdu_size)
    if not isinstance(payload, bytes):
        payload = bytes(payload)  # snapshot mutable buffers before aliasing
    if span_id is None:
        span_id = (msg_id & 0xFFFFFFFF) if trace_id else 0
    # memoryview slices alias the message instead of copying each chunk;
    # the bytes are copied exactly once, when an interface serializes
    # the SDU into its wire buffer.
    view = memoryview(payload)
    chunks = [view[i : i + sdu_size] for i in range(0, len(payload), sdu_size)]
    if not chunks:
        chunks = [b""]
    total = len(chunks)
    return [
        Sdu.build(
            connection_id=connection_id,
            msg_id=msg_id,
            seqno=seqno,
            total_sdus=total,
            payload=chunk,
            end_bit=(seqno == total - 1),
            trace_id=trace_id,
            span_id=span_id,
        )
        for seqno, chunk in enumerate(chunks)
    ]


@dataclass
class ReassemblyState:
    """Receiver-side state for one in-flight message."""

    msg_id: int
    total_sdus: int
    bitmap: AckBitmap
    fragments: Dict[int, bytes] = field(default_factory=dict)
    #: Clock reading when the first SDU arrived; used by garbage collection.
    started_at: float = 0.0

    def complete(self) -> bool:
        return self.bitmap.all_received()

    def assemble(self) -> bytes:
        """Rebuild the original message; only valid once complete."""
        if not self.complete():
            missing = self.bitmap.pending()
            raise RuntimeError(
                f"message {self.msg_id} incomplete, missing SDUs {missing}"
            )
        return b"".join(self.fragments[i] for i in range(self.total_sdus))


class DuplicateSduError(Exception):
    """An SDU arrived twice with different payloads (protocol violation)."""


class Reassembler:
    """Collects SDUs back into messages, per connection direction.

    ``add`` returns the completed message bytes when the final missing
    SDU arrives, else None.  Corrupted SDUs (CRC mismatch) are counted
    and *not* merged — they stay pending in the bitmap, which is what
    drives selective retransmission.
    """

    #: How many recently completed message ids to remember so late
    #: retransmissions (e.g. after a lost ACK) are recognized as
    #: duplicates instead of starting a phantom reassembly.
    COMPLETED_MEMORY = 1024

    def __init__(self, gc_timeout: Optional[float] = None):
        self._inflight: Dict[int, ReassemblyState] = {}
        self._completed: "dict[int, None]" = {}  # insertion-ordered set
        #: Highest msg_id ever *evicted* from the completed memory.
        #: Message ids are monotonically increasing per direction, so a
        #: retransmit at or below the floor is for a message finished
        #: long ago — treat it as a duplicate rather than opening a
        #: phantom reassembly that would re-deliver the message.
        self._completed_floor = 0
        self._gc_timeout = gc_timeout
        self.corrupted_count = 0
        self.duplicate_count = 0
        #: Payload bytes currently held in in-flight fragment buffers —
        #: the reassembly site the node's MemoryBudget accounts.
        self.buffered_bytes = 0

    def state_of(self, msg_id: int) -> Optional[ReassemblyState]:
        """In-flight reassembly state for ``msg_id`` (None if unknown)."""
        return self._inflight.get(msg_id)

    def add(self, sdu: Sdu, now: float = 0.0) -> Optional[bytes]:
        """Merge one SDU; return the whole message if now complete."""
        header = sdu.header
        if header.msg_id in self._completed or (
            header.msg_id <= self._completed_floor
            and header.msg_id not in self._inflight
        ):
            self.duplicate_count += 1  # late retransmit of a finished message
            return None
        state = self._inflight.get(header.msg_id)
        if state is None:
            state = ReassemblyState(
                msg_id=header.msg_id,
                total_sdus=header.total_sdus,
                bitmap=AckBitmap(header.total_sdus, all_set=True),
                started_at=now,
            )
            self._inflight[header.msg_id] = state
        if header.total_sdus != state.total_sdus:
            raise DuplicateSduError(
                f"msg {header.msg_id}: inconsistent total_sdus "
                f"({header.total_sdus} vs {state.total_sdus})"
            )
        if not sdu.payload_intact():
            # Leave the bitmap bit set: the SDU is "received in error"
            # (paper Fig. 5) and will be selectively retransmitted.
            self.corrupted_count += 1
            return None
        if not state.bitmap.is_pending(header.seqno):
            self.duplicate_count += 1  # benign duplicate (retransmit race)
            return None
        state.fragments[header.seqno] = sdu.payload
        state.bitmap.mark_received(header.seqno)
        self.buffered_bytes += len(sdu.payload)
        if state.complete():
            self.buffered_bytes -= sum(
                len(fragment) for fragment in state.fragments.values()
            )
            del self._inflight[header.msg_id]
            self._completed[header.msg_id] = None
            while len(self._completed) > self.COMPLETED_MEMORY:
                evicted = next(iter(self._completed))
                self._completed.pop(evicted)
                self._completed_floor = max(self._completed_floor, evicted)
            return state.assemble()
        return None

    def bitmap_for(self, msg_id: int, total_sdus: int) -> AckBitmap:
        """Current ACK bitmap for ``msg_id``.

        A message known to have completed gets an all-clear bitmap; an
        in-flight message gets a snapshot of its real bitmap; anything
        else — never seen, *or completed so long ago that it was evicted
        from the completed memory* — gets every bit set.  Never-seen must
        not alias completed: an all-clear bitmap in an AckPdu tells the
        sender "fully received", and answering that for a message this
        side has no record of would silently retire data the receiver
        never assembled.  All-set errs in the safe direction (the sender
        retransmits; genuine stale retransmits die at the sender as
        duplicate ACKs for an already-retired message).
        """
        state = self._inflight.get(msg_id)
        if state is not None:
            if state.bitmap.size == total_sdus:
                # O(1): share the immutable int behind the live bitmap
                # instead of round-tripping O(total_sdus) bytes per ack.
                return state.bitmap.snapshot()
            return AckBitmap.from_bytes(state.bitmap.to_bytes(), total_sdus)
        if msg_id in self._completed:
            return AckBitmap(total_sdus, all_set=False)
        return AckBitmap(total_sdus, all_set=True)

    def gc(self, now: float) -> list[int]:
        """Drop in-flight messages older than ``gc_timeout``; return ids.

        Used by unreliable (no-error-control) connections so a lost SDU
        cannot leak reassembly state forever.
        """
        if self._gc_timeout is None:
            return []
        stale = [
            msg_id
            for msg_id, state in self._inflight.items()
            if now - state.started_at > self._gc_timeout
        ]
        for msg_id in stale:
            self.buffered_bytes -= sum(
                len(fragment)
                for fragment in self._inflight[msg_id].fragments.values()
            )
            del self._inflight[msg_id]
        return stale

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)
