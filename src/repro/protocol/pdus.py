"""Control-plane PDUs.

Everything that travels on a *control connection*: acknowledgment bitmaps
and credits (the paper's Fig. 5/7 control traffic), connection signaling
(the Master Thread's connection management), and group membership for the
multicast service.  Keeping these off the data connections is the
separation-of-control-and-data principle the architecture is built
around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Type

from repro.protocol.headers import PduType
from repro.util.bitmap import AckBitmap
from repro.util.codec import ByteReader, ByteWriter


class PduDecodeError(ValueError):
    """Raised when a control frame cannot be parsed."""


@dataclass(frozen=True)
class ControlPdu:
    """Base class for control-plane messages."""

    #: Wire discriminator; every concrete subclass assigns one.
    TYPE: ClassVar[PduType]

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u8(int(self.TYPE))
        self._encode_body(writer)
        return writer.getvalue()

    def _encode_body(self, writer: ByteWriter) -> None:
        raise NotImplementedError

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "ControlPdu":
        raise NotImplementedError


_REGISTRY: Dict[int, Type[ControlPdu]] = {}


def _register(cls: Type[ControlPdu]) -> Type[ControlPdu]:
    _REGISTRY[int(cls.TYPE)] = cls
    return cls


def decode_control_pdu(data: bytes) -> ControlPdu:
    """Parse any control PDU from its wire form."""
    if not data:
        raise PduDecodeError("empty control frame")
    reader = ByteReader(data)
    type_tag = reader.u8()
    cls = _REGISTRY.get(type_tag)
    if cls is None:
        raise PduDecodeError(f"unknown control PDU type {type_tag}")
    try:
        return cls._decode_body(reader)
    except ValueError as exc:
        raise PduDecodeError(f"malformed {cls.__name__}: {exc}") from exc


@_register
@dataclass(frozen=True)
class AckPdu(ControlPdu):
    """Selective-repeat acknowledgment: the receiver's full bitmap.

    A set bit marks an SDU still missing/in-error (paper Fig. 5: "1 =
    Error"); an all-clear bitmap completes the message at the sender.
    """

    TYPE = PduType.ACK
    connection_id: int
    msg_id: int
    bitmap: AckBitmap

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.u32(self.msg_id)
        writer.u32(self.bitmap.size)
        writer.lp_bytes(self.bitmap.to_bytes())

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "AckPdu":
        connection_id = reader.u32()
        msg_id = reader.u32()
        size = reader.u32()
        bitmap = AckBitmap.from_bytes(reader.lp_bytes(), size)
        return cls(connection_id, msg_id, bitmap)


@_register
@dataclass(frozen=True)
class CumAckPdu(ControlPdu):
    """Go-back-N cumulative acknowledgment: next expected sequence number."""

    TYPE = PduType.CUM_ACK
    connection_id: int
    msg_id: int
    next_expected: int

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.u32(self.msg_id)
        writer.u32(self.next_expected)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "CumAckPdu":
        return cls(reader.u32(), reader.u32(), reader.u32())


@_register
@dataclass(frozen=True)
class CreditPdu(ControlPdu):
    """Credit grant from receiver to sender (paper Fig. 7 step 5).

    ``credits`` is the number of additional packets the receiver has
    buffers for; the dynamic credit policy grows it for active
    connections (§3.3 "active connections get more credits").
    """

    TYPE = PduType.CREDIT
    connection_id: int
    credits: int

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.u32(self.credits)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "CreditPdu":
        return cls(reader.u32(), reader.u32())


@_register
@dataclass(frozen=True)
class CreditResyncPdu(ControlPdu):
    """Sender-to-receiver request to restore a dried-up credit pool.

    A credit rides the data packet it admitted, so losing either the
    packet or the grant destroys a credit; a sender stalled at zero
    credits asks the *receiver* to re-issue the initial allotment rather
    than unilaterally restoring it.  This keeps the receiver in charge:
    a slow-consumer credit gate answers with a zero-credit CreditPdu
    ("stay pinned") instead of a grant, so backpressure cannot be
    defeated by resynchronization.
    """

    TYPE = PduType.CREDIT_RESYNC
    connection_id: int

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "CreditResyncPdu":
        return cls(reader.u32())


@_register
@dataclass(frozen=True)
class ConnectRequestPdu(ControlPdu):
    """Connection setup carrying the requested per-connection QOS
    configuration: flow/error algorithms, interface, SDU size, initial
    credits — the paper's "connection can be configured to meet the QOS
    requirements of that connection"."""

    TYPE = PduType.CONNECT_REQUEST
    connection_id: int
    src_node: str
    dst_node: str
    src_data_port: int
    flow_control: str
    error_control: str
    interface: str
    sdu_size: int
    initial_credits: int
    window_size: int
    rate_pps: float
    #: Vectored-path coalescing width; both ends honor the initiator's
    #: choice so batch_max=1 really restores per-frame behavior
    #: end-to-end.
    batch_max: int = 64

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.lp_str(self.src_node)
        writer.lp_str(self.dst_node)
        writer.u32(self.src_data_port)
        writer.lp_str(self.flow_control)
        writer.lp_str(self.error_control)
        writer.lp_str(self.interface)
        writer.u32(self.sdu_size)
        writer.u32(self.initial_credits)
        writer.u32(self.window_size)
        writer.f64(self.rate_pps)
        writer.u32(self.batch_max)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "ConnectRequestPdu":
        return cls(
            connection_id=reader.u32(),
            src_node=reader.lp_str(),
            dst_node=reader.lp_str(),
            src_data_port=reader.u32(),
            flow_control=reader.lp_str(),
            error_control=reader.lp_str(),
            interface=reader.lp_str(),
            sdu_size=reader.u32(),
            initial_credits=reader.u32(),
            window_size=reader.u32(),
            rate_pps=reader.f64(),
            batch_max=reader.u32(),
        )


@_register
@dataclass(frozen=True)
class ConnectAcceptPdu(ControlPdu):
    """Positive signaling reply; carries the acceptor's data-plane port."""

    TYPE = PduType.CONNECT_ACCEPT
    connection_id: int
    data_port: int

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.u32(self.data_port)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "ConnectAcceptPdu":
        return cls(reader.u32(), reader.u32())


@_register
@dataclass(frozen=True)
class ConnectRejectPdu(ControlPdu):
    """Negative signaling reply with a human-readable reason."""

    TYPE = PduType.CONNECT_REJECT
    connection_id: int
    reason: str

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)
        writer.lp_str(self.reason)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "ConnectRejectPdu":
        return cls(reader.u32(), reader.lp_str())


@_register
@dataclass(frozen=True)
class ClosePdu(ControlPdu):
    """Orderly connection teardown."""

    TYPE = PduType.CLOSE
    connection_id: int

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.connection_id)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "ClosePdu":
        return cls(reader.u32())


@_register
@dataclass(frozen=True)
class GroupJoinPdu(ControlPdu):
    """Ask the group coordinator to add a member."""

    TYPE = PduType.GROUP_JOIN
    group: str
    member: str

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.group)
        writer.lp_str(self.member)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "GroupJoinPdu":
        return cls(reader.lp_str(), reader.lp_str())


@_register
@dataclass(frozen=True)
class GroupLeavePdu(ControlPdu):
    """Ask the group coordinator to remove a member."""

    TYPE = PduType.GROUP_LEAVE
    group: str
    member: str

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.group)
        writer.lp_str(self.member)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "GroupLeavePdu":
        return cls(reader.lp_str(), reader.lp_str())


@_register
@dataclass(frozen=True)
class GroupInfoPdu(ControlPdu):
    """Membership snapshot pushed to every member on change (the control
    information of Fig. 2: "e.g., Membership information")."""

    TYPE = PduType.GROUP_INFO
    group: str
    version: int
    members: tuple

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.group)
        writer.u32(self.version)
        writer.u32(len(self.members))
        for member in self.members:
            writer.lp_str(member)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "GroupInfoPdu":
        group = reader.lp_str()
        version = reader.u32()
        count = reader.u32()
        members = tuple(reader.lp_str() for _ in range(count))
        return cls(group, version, members)


@_register
@dataclass(frozen=True)
class BarrierPdu(ControlPdu):
    """Barrier synchronization token (arrive / release phases)."""

    TYPE = PduType.BARRIER
    group: str
    epoch: int
    phase: int  # 0 = arrive, 1 = release
    member: str

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.group)
        writer.u32(self.epoch)
        writer.u8(self.phase)
        writer.lp_str(self.member)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "BarrierPdu":
        return cls(reader.lp_str(), reader.u32(), reader.u8(), reader.lp_str())


@_register
@dataclass(frozen=True)
class TelemetryPdu(ControlPdu):
    """One node-telemetry snapshot shipped in-band on the control plane.

    ``kind`` discriminates the snapshot shape ("full" vs "degraded");
    ``sent_at`` is the emitting node's monotonic clock at serialization
    time so the collector can align snapshots using the same clock
    offsets the trace merger uses.  The body is JSON — telemetry values
    are open-ended (metrics, health, pressure) and never parsed on the
    hot path, so a self-describing encoding beats a rigid binary one.
    """

    TYPE = PduType.TELEMETRY
    node: str
    sequence: int
    sent_at: float
    kind: str
    body: bytes

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.node)
        writer.u32(self.sequence)
        writer.f64(self.sent_at)
        writer.lp_str(self.kind)
        writer.lp_bytes(self.body)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "TelemetryPdu":
        return cls(
            reader.lp_str(),
            reader.u32(),
            reader.f64(),
            reader.lp_str(),
            reader.lp_bytes(),
        )


@_register
@dataclass(frozen=True)
class HeartbeatPdu(ControlPdu):
    """Liveness probe on the control connection.

    Doubles as the clock-synchronization carrier: the prober stamps its
    monotonic clock in ``t_send``, the responder echoes it and stamps its
    own clock in ``t_reply``, and the prober's reply handler derives RTT
    and an NTP-style clock offset from the pair (see
    :class:`repro.obs.telemetry.ClockSync`).  Zero means "not stamped".
    """

    TYPE = PduType.HEARTBEAT
    node: str
    sequence: int
    t_send: float = 0.0
    t_reply: float = 0.0

    def _encode_body(self, writer: ByteWriter) -> None:
        writer.lp_str(self.node)
        writer.u32(self.sequence)
        writer.f64(self.t_send)
        writer.f64(self.t_reply)

    @classmethod
    def _decode_body(cls, reader: ByteReader) -> "HeartbeatPdu":
        return cls(reader.lp_str(), reader.u32(), reader.f64(), reader.f64())
