"""SDU framing: the data-plane packet format.

The paper attaches to every Service Data Unit a *sequence number* and a
*control bit* that marks the final SDU of a message (Fig. 5).  This
header carries exactly those, plus the connection/message identifiers the
Compute Thread supplies to ``NCS_send`` ("destination process id,
destination thread id, session id") and a payload CRC so the unreliable
ACI path can detect corruption the way AAL5's trailer CRC does.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace

from repro.util.crc import crc32_aal5

#: Wire magic: "NC" — rejects cross-protocol garbage early.
MAGIC = 0x4E43
VERSION = 1

#: struct layout: magic, version, flags, connection_id, msg_id, seqno,
#: total_sdus, payload_len, payload_crc
_HEADER_FMT = "!HBBIIIIII"
HEADER_SIZE = struct.calcsize(_HEADER_FMT)

_FLAG_END = 0x01
#: Header carries the optional trace envelope extension (trace_id u64,
#: span_id u32) immediately after the fixed header.  Absent when tracing
#: is off, so untraced traffic pays zero wire overhead and old decoders
#: reject nothing.
_FLAG_TRACE = 0x02

_TRACE_EXT_FMT = "!QI"
TRACE_EXT_SIZE = struct.calcsize(_TRACE_EXT_FMT)


class PduType(enum.IntEnum):
    """Discriminates every frame on either connection type."""

    DATA = 1
    ACK = 2
    CUM_ACK = 3
    CREDIT = 4
    CONNECT_REQUEST = 5
    CONNECT_ACCEPT = 6
    CONNECT_REJECT = 7
    CLOSE = 8
    GROUP_JOIN = 9
    GROUP_LEAVE = 10
    GROUP_INFO = 11
    BARRIER = 12
    HEARTBEAT = 13
    TELEMETRY = 14
    CREDIT_RESYNC = 15


class HeaderError(ValueError):
    """Raised when an incoming frame fails header validation."""


@dataclass(frozen=True)
class SduHeader:
    """Per-SDU header (paper Fig. 5: sequence number + end-of-message bit).

    ``total_sdus`` is carried for receiver bitmap sizing; the end bit
    remains authoritative for "last SDU", exactly as in the paper.

    ``trace_id``/``span_id`` form the cross-node causal-trace envelope:
    when non-zero the header grows by a 12-byte extension so the deliver
    and ack events on the remote node join the sender's trace.  A zero
    trace_id means "untraced" and keeps the classic fixed-size header.
    """

    connection_id: int
    msg_id: int
    seqno: int
    total_sdus: int
    payload_len: int
    payload_crc: int
    end_bit: bool
    trace_id: int = 0
    span_id: int = 0

    @property
    def header_size(self) -> int:
        """Encoded size of *this* header (fixed part + trace extension)."""
        return HEADER_SIZE + (TRACE_EXT_SIZE if self.trace_id else 0)

    def _flags(self) -> int:
        flags = _FLAG_END if self.end_bit else 0
        if self.trace_id:
            flags |= _FLAG_TRACE
        return flags

    def encode(self) -> bytes:
        fixed = struct.pack(
            _HEADER_FMT,
            MAGIC,
            VERSION,
            self._flags(),
            self.connection_id,
            self.msg_id,
            self.seqno,
            self.total_sdus,
            self.payload_len,
            self.payload_crc,
        )
        if not self.trace_id:
            return fixed
        return fixed + struct.pack(_TRACE_EXT_FMT, self.trace_id, self.span_id)

    def encode_into(self, buf: bytearray) -> int:
        """Append the encoded header to ``buf``; returns bytes written.

        The coalesced-write fast path: batching interfaces build one
        contiguous transmit buffer, so the header is packed straight
        into it instead of through a temporary ``bytes`` object.
        """
        offset = len(buf)
        size = self.header_size
        buf += bytes(size)
        struct.pack_into(
            _HEADER_FMT,
            buf,
            offset,
            MAGIC,
            VERSION,
            self._flags(),
            self.connection_id,
            self.msg_id,
            self.seqno,
            self.total_sdus,
            self.payload_len,
            self.payload_crc,
        )
        if self.trace_id:
            struct.pack_into(
                _TRACE_EXT_FMT,
                buf,
                offset + HEADER_SIZE,
                self.trace_id,
                self.span_id,
            )
        return size

    @classmethod
    def decode(cls, data: bytes) -> "SduHeader":
        if len(data) < HEADER_SIZE:
            raise HeaderError(
                f"short header: {len(data)} bytes < {HEADER_SIZE}"
            )
        magic, version, flags, conn_id, msg_id, seqno, total, plen, pcrc = (
            struct.unpack_from(_HEADER_FMT, data)
        )
        if magic != MAGIC:
            raise HeaderError(f"bad magic 0x{magic:04X}")
        if version != VERSION:
            raise HeaderError(f"unsupported protocol version {version}")
        trace_id = span_id = 0
        if flags & _FLAG_TRACE:
            if len(data) < HEADER_SIZE + TRACE_EXT_SIZE:
                raise HeaderError(
                    f"short trace extension: {len(data)} bytes < "
                    f"{HEADER_SIZE + TRACE_EXT_SIZE}"
                )
            trace_id, span_id = struct.unpack_from(
                _TRACE_EXT_FMT, data, HEADER_SIZE
            )
        return cls(
            connection_id=conn_id,
            msg_id=msg_id,
            seqno=seqno,
            total_sdus=total,
            payload_len=plen,
            payload_crc=pcrc,
            end_bit=bool(flags & _FLAG_END),
            trace_id=trace_id,
            span_id=span_id,
        )


@dataclass(frozen=True)
class Sdu:
    """A framed Service Data Unit: header plus payload bytes.

    ``payload`` is any bytes-like object; the segmentation layer hands
    in zero-copy ``memoryview`` slices of the original message, which
    the encode paths copy exactly once — into the wire buffer.
    """

    header: SduHeader
    payload: bytes

    @classmethod
    def build(
        cls,
        connection_id: int,
        msg_id: int,
        seqno: int,
        total_sdus: int,
        payload: bytes,
        end_bit: bool,
        trace_id: int = 0,
        span_id: int = 0,
    ) -> "Sdu":
        header = SduHeader(
            connection_id=connection_id,
            msg_id=msg_id,
            seqno=seqno,
            total_sdus=total_sdus,
            payload_len=len(payload),
            payload_crc=crc32_aal5(payload),
            end_bit=end_bit,
            trace_id=trace_id,
            span_id=span_id,
        )
        return cls(header, payload)

    def encode(self) -> bytes:
        """Serialize for the wire: header immediately followed by payload."""
        # join() accepts memoryview payloads and allocates the result
        # exactly once (a `bytes + memoryview` concat would TypeError).
        return b"".join((self.header.encode(), self.payload))

    def encode_into(self, buf: bytearray) -> int:
        """Append the full wire frame to ``buf``; returns the frame size.

        Used by coalescing interfaces (SCI's vectored ``send_many``) so
        a batch of SDUs becomes one contiguous buffer with no per-frame
        ``bytes`` intermediates.
        """
        self.header.encode_into(buf)
        buf += self.payload
        return self.header.header_size + len(self.payload)

    @classmethod
    def decode(cls, data: bytes) -> "Sdu":
        """Parse a frame; raises :class:`HeaderError` on malformed input."""
        header = SduHeader.decode(data)
        start = header.header_size
        payload = data[start : start + header.payload_len]
        if len(payload) != header.payload_len:
            raise HeaderError(
                f"truncated payload: header says {header.payload_len}, "
                f"frame carries {len(payload)}"
            )
        return cls(header, payload)

    def payload_intact(self) -> bool:
        """Recompute the payload CRC; False means in-transit corruption."""
        return crc32_aal5(self.payload) == self.header.payload_crc

    @property
    def wire_size(self) -> int:
        return self.header.header_size + len(self.payload)

    def corrupted_copy(self) -> "Sdu":
        """Return a copy with one payload bit flipped (fault injection)."""
        if not self.payload:
            # No payload bits to damage; corrupt the CRC expectation instead.
            bad_header = replace(
                self.header, payload_crc=self.header.payload_crc ^ 1
            )
            return Sdu(bad_header, self.payload)
        damaged = bytearray(self.payload)
        damaged[0] ^= 0x80
        return Sdu(self.header, bytes(damaged))
