"""NCS wire protocol: SDU framing, control PDUs, segmentation.

Everything in this package is *sans-I/O*: pure data structures and state
machines with no sockets, threads, or clocks.  The live threaded runtime
(`repro.core`) and the discrete-event simulator (`repro.simnet`) both
drive these objects, which is how one protocol implementation backs both
real execution and the paper's deterministic evaluation.
"""

from repro.protocol.headers import (
    HEADER_SIZE,
    PduType,
    Sdu,
    SduHeader,
)
from repro.protocol.pdus import (
    AckPdu,
    BarrierPdu,
    ClosePdu,
    ConnectAcceptPdu,
    ConnectRejectPdu,
    ConnectRequestPdu,
    ControlPdu,
    CreditPdu,
    CreditResyncPdu,
    CumAckPdu,
    GroupInfoPdu,
    GroupJoinPdu,
    GroupLeavePdu,
    HeartbeatPdu,
    decode_control_pdu,
)
from repro.protocol.segmentation import (
    DEFAULT_SDU_SIZE,
    MAX_SDU_SIZE,
    MIN_SDU_SIZE,
    Reassembler,
    ReassemblyState,
    segment_message,
    validate_sdu_size,
)

__all__ = [
    "AckPdu",
    "BarrierPdu",
    "ClosePdu",
    "ConnectAcceptPdu",
    "ConnectRejectPdu",
    "ConnectRequestPdu",
    "ControlPdu",
    "CreditPdu",
    "CreditResyncPdu",
    "CumAckPdu",
    "DEFAULT_SDU_SIZE",
    "GroupInfoPdu",
    "GroupJoinPdu",
    "GroupLeavePdu",
    "HEADER_SIZE",
    "HeartbeatPdu",
    "MAX_SDU_SIZE",
    "MIN_SDU_SIZE",
    "PduType",
    "Reassembler",
    "ReassemblyState",
    "Sdu",
    "SduHeader",
    "decode_control_pdu",
    "segment_message",
    "validate_sdu_size",
]
