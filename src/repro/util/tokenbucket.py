"""Token bucket used by the rate-based flow controller.

Rate-based flow control is one of the three families the paper lists
(§3.3: "rate-based, credit-based, and window-based").  The bucket refills
at ``rate`` tokens per second up to ``capacity``; each transmitted packet
spends one token (or its byte count, depending on the controller's
configuration).
"""

from __future__ import annotations

from repro.util.clock import Clock, MonotonicClock


class TokenBucket:
    """Classic token bucket with lazy refill.

    Not thread-safe by itself; the rate-based flow controller serializes
    access through its own lock.
    """

    __slots__ = ("rate", "capacity", "_tokens", "_last_refill", "_clock")

    def __init__(self, rate: float, capacity: float, clock: Clock | None = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock or MonotonicClock()
        self._tokens = capacity
        self._last_refill = self._clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (after lazy refill)."""
        self._refill()
        return self._tokens

    def try_consume(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; return success."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def time_until_available(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available (0 if now).

        Returns ``inf`` when ``amount`` exceeds capacity — it will never
        be satisfiable and the caller must split the request.
        """
        self._refill()
        if self._tokens >= amount:
            return 0.0
        if amount > self.capacity:
            return float("inf")
        return (amount - self._tokens) / self.rate
