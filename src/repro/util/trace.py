"""Lightweight event tracing.

NCS threads and the simulator both emit trace events (thread activations,
packet transmissions, credit updates, retransmissions).  The tracer is how
tests assert on *internal* protocol behaviour — e.g. "the sender
retransmitted exactly the SDUs whose bitmap bits were set" — without
reaching into private state, and how EXPERIMENTS.md quantifies overhead
composition.

Events can also be exported: :class:`JsonlSink` streams them as JSON
Lines (one object per event, safe to tail), and :class:`ChromeTraceSink`
writes the Chrome ``trace_event`` format loadable in ``chrome://tracing``
or Perfetto.  Setting ``NCS_TRACE=1`` in the environment enables tracing
on every :class:`~repro.core.node.Node` and attaches a JSONL sink
(``NCS_TRACE_FILE``, default ``ncs_trace.jsonl``) — no code edits needed.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.util.clock import Clock, MonotonicClock

#: Every live file-backed sink; the atexit hook below closes them so a
#: process that never calls close() still flushes its trace to disk
#: (ChromeTraceSink in particular buffers everything until close).
_LIVE_SINKS: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_REGISTERED = False
_ATEXIT_LOCK = threading.Lock()


def _register_sink(sink) -> None:
    global _ATEXIT_REGISTERED
    _LIVE_SINKS.add(sink)
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_flush_all_sinks)
            _ATEXIT_REGISTERED = True


def _flush_all_sinks() -> None:
    for sink in list(_LIVE_SINKS):
        try:
            sink.close()
        except Exception:
            pass  # interpreter is shutting down; best effort only


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped occurrence inside the system."""

    timestamp: float
    category: str
    name: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.timestamp:.6f}] {self.category}.{self.name} {extras}".rstrip()

    def to_dict(self) -> dict:
        return {
            "ts": self.timestamp,
            "category": self.category,
            "name": self.name,
            **self.detail,
        }


class Tracer:
    """Collects :class:`TraceEvent` records; cheap when disabled.

    A tracer can be shared across threads: ``emit`` appends the event and
    fans it out to sinks under one lock, so no sink ever interleaves with
    a concurrent ``clear()`` rebinding the event list.
    """

    def __init__(self, clock: Optional[Clock] = None, enabled: bool = True):
        self.clock = clock or MonotonicClock()
        self.enabled = enabled
        # RLock: a sink may legitimately call back into tracer accessors.
        self._lock = threading.RLock()
        self._events: list[TraceEvent] = []
        self._sinks: list[Callable[[TraceEvent], None]] = []

    def emit(self, category: str, name: str, **detail: Any) -> None:
        """Record an event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(self.clock.now(), category, name, detail)
        with self._lock:
            self._events.append(event)
            for sink in self._sinks:
                sink(event)

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        """Also forward every event to ``sink`` (e.g. print, file)."""
        with self._lock:
            self._sinks.append(sink)

    @property
    def events(self) -> list[TraceEvent]:
        """Snapshot copy of all events recorded so far."""
        with self._lock:
            return list(self._events)

    def select(self, category: Optional[str] = None, name: Optional[str] = None) -> list[TraceEvent]:
        """Events filtered by category and/or name."""
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category, name))

    def clear(self) -> None:
        with self._lock:
            self._events = []

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ----------------------------------------------------------------------
# Export sinks
# ----------------------------------------------------------------------


class JsonlSink:
    """Streams events to a file as JSON Lines, one object per event.

    Append-mode and line-flushed, so multiple nodes in one process (or
    several processes on a shared filesystem) can feed the same file and
    a crash loses at most the current line.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")
        _register_sink(self)

    def __call__(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_dict(), default=repr)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class ChromeTraceSink:
    """Buffers events and writes Chrome ``trace_event`` JSON on close.

    Load the output in ``chrome://tracing`` or https://ui.perfetto.dev;
    every event becomes an instant event on the thread that emitted it,
    with the event detail attached as ``args``.
    """

    def __init__(self, path: str, pid: int = 0):
        self.path = path
        self.pid = pid or os.getpid()
        self._lock = threading.Lock()
        self._records: list[dict] = []
        _register_sink(self)

    def __call__(self, event: TraceEvent) -> None:
        record = {
            "name": f"{event.category}.{event.name}",
            "cat": event.category,
            "ph": "i",  # instant event
            "s": "t",  # thread scope
            "ts": event.timestamp * 1e6,  # Chrome wants microseconds
            "pid": self.pid,
            "tid": threading.get_ident() & 0xFFFF,
            "args": dict(event.detail),
        }
        with self._lock:
            self._records.append(record)

    def write(self) -> None:
        with self._lock:
            records = list(self._records)
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": records, "displayTimeUnit": "ms"},
                      handle, default=repr)

    close = write


def write_chrome_trace(events: Sequence[TraceEvent], path: str) -> None:
    """One-shot export of already-collected events (``tracer.events``)."""
    sink = ChromeTraceSink(path)
    for event in events:
        sink(event)
    sink.write()


# ----------------------------------------------------------------------
# Environment wiring (documented in README: NCS_TRACE / NCS_TRACE_FILE)
# ----------------------------------------------------------------------

#: Default JSONL path when tracing is enabled via the environment.
DEFAULT_TRACE_FILE = "ncs_trace.jsonl"


def trace_env_enabled() -> bool:
    """True when ``NCS_TRACE`` requests tracing (1/true/yes/on)."""
    return os.environ.get("NCS_TRACE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def jsonl_sink_from_env() -> Optional[JsonlSink]:
    """A shared :class:`JsonlSink` honouring ``NCS_TRACE_FILE``.

    Returns None unless ``NCS_TRACE`` is enabled.  All nodes in the
    process share one sink per path, so their events land in one file.
    """
    if not trace_env_enabled():
        return None
    path = os.environ.get("NCS_TRACE_FILE", DEFAULT_TRACE_FILE)
    with _ENV_SINK_LOCK:
        sink = _ENV_SINKS.get(path)
        if sink is None:
            sink = JsonlSink(path)
            _ENV_SINKS[path] = sink
        return sink


_ENV_SINKS: dict = {}
_ENV_SINK_LOCK = threading.Lock()


def new_trace_id() -> int:
    """A fresh non-zero 64-bit trace id.

    Random rather than sequential so ids allocated independently on
    different nodes of a cluster cannot collide; zero is reserved for
    "untraced" in the SDU header envelope, hence the forced low bit.
    """
    return int.from_bytes(os.urandom(8), "big") | 1


#: Module-level tracer that components fall back to when none is supplied.
#: Disabled by default so production paths pay one attribute check.
GLOBAL_TRACER = Tracer(enabled=False)
