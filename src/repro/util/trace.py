"""Lightweight event tracing.

NCS threads and the simulator both emit trace events (thread activations,
packet transmissions, credit updates, retransmissions).  The tracer is how
tests assert on *internal* protocol behaviour — e.g. "the sender
retransmitted exactly the SDUs whose bitmap bits were set" — without
reaching into private state, and how EXPERIMENTS.md quantifies overhead
composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.util.clock import Clock, MonotonicClock


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped occurrence inside the system."""

    timestamp: float
    category: str
    name: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.timestamp:.6f}] {self.category}.{self.name} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records; cheap when disabled.

    A tracer can be shared across threads: appends to a Python list are
    atomic under the GIL, which is all the synchronization this needs.
    """

    def __init__(self, clock: Optional[Clock] = None, enabled: bool = True):
        self.clock = clock or MonotonicClock()
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._sinks: list[Callable[[TraceEvent], None]] = []

    def emit(self, category: str, name: str, **detail: Any) -> None:
        """Record an event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(self.clock.now(), category, name, detail)
        self._events.append(event)
        for sink in self._sinks:
            sink(event)

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        """Also forward every event to ``sink`` (e.g. print, file)."""
        self._sinks.append(sink)

    @property
    def events(self) -> list[TraceEvent]:
        """All events recorded so far (shared list; do not mutate)."""
        return self._events

    def select(self, category: Optional[str] = None, name: Optional[str] = None) -> list[TraceEvent]:
        """Events filtered by category and/or name."""
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category, name))

    def clear(self) -> None:
        self._events = []

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


#: Module-level tracer that components fall back to when none is supplied.
#: Disabled by default so production paths pay one attribute check.
GLOBAL_TRACER = Tracer(enabled=False)
