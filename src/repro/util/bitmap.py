"""Acknowledgment bitmap for the selective-repeat error control scheme.

The paper's receiver (Fig. 5) keeps one bit per SDU: ``0`` means the SDU
arrived intact, ``1`` means it is missing or arrived in error.  When the
end-of-message SDU arrives, the whole bitmap travels back to the sender
inside an Acknowledgment PDU over the *control* connection, and the sender
retransmits exactly the SDUs whose bit is still set.

The paper initializes the map to all-ones ("assume everything is in error")
and *clears* a bit on successful receipt; this class follows that
convention.
"""

from __future__ import annotations


class AckBitmap:
    """A fixed-capacity bitmap of SDU receive status.

    Bit semantics match the paper: a **set** bit marks an SDU that still
    needs retransmission; a **clear** bit marks a correctly received SDU.
    """

    __slots__ = ("_bits", "_size")

    def __init__(self, size: int, all_set: bool = True):
        if size < 0:
            raise ValueError(f"bitmap size must be >= 0, got {size}")
        self._size = size
        self._bits = (1 << size) - 1 if all_set else 0

    @property
    def size(self) -> int:
        """Number of SDU slots tracked by this bitmap."""
        return self._size

    def mark_received(self, seqno: int) -> None:
        """Clear the bit for ``seqno`` (SDU received without error)."""
        self._check(seqno)
        self._bits &= ~(1 << seqno)

    def mark_error(self, seqno: int) -> None:
        """Set the bit for ``seqno`` (SDU missing or corrupted)."""
        self._check(seqno)
        self._bits |= 1 << seqno

    def is_pending(self, seqno: int) -> bool:
        """True if ``seqno`` still needs (re)transmission."""
        self._check(seqno)
        return bool(self._bits >> seqno & 1)

    def all_received(self) -> bool:
        """True once every tracked SDU has been received intact."""
        return self._bits == 0

    def pending(self) -> list[int]:
        """Sequence numbers that still need retransmission, ascending."""
        return [i for i in range(self._size) if self._bits >> i & 1]

    def pending_count(self) -> int:
        """Number of SDUs still outstanding."""
        return bin(self._bits).count("1")

    def merge_errors(self, other: "AckBitmap") -> None:
        """OR another bitmap's error bits into this one (same size)."""
        if other._size != self._size:
            raise ValueError(
                f"cannot merge bitmaps of different sizes "
                f"({self._size} vs {other._size})"
            )
        self._bits |= other._bits

    def snapshot(self) -> "AckBitmap":
        """An O(1) immutable copy of the current state.

        ``_bits`` is a plain int, so sharing it is safe: later
        ``mark_*`` calls on the live bitmap rebind ``_bits`` rather
        than mutating it, leaving the snapshot untouched.  This is the
        cheap alternative to the ``from_bytes(to_bytes())`` round trip
        (O(size) encode + decode) on the per-ack hot path.
        """
        bm = AckBitmap.__new__(AckBitmap)
        bm._size = self._size
        bm._bits = self._bits
        return bm

    # -- wire format ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode as little-endian bytes, rounded up to whole bytes."""
        nbytes = (self._size + 7) // 8
        return self._bits.to_bytes(nbytes, "little")

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "AckBitmap":
        """Decode a bitmap of ``size`` slots from its wire form."""
        bm = cls(size, all_set=False)
        value = int.from_bytes(data, "little")
        mask = (1 << size) - 1
        bm._bits = value & mask
        return bm

    # -- internals ---------------------------------------------------------

    def _check(self, seqno: int) -> None:
        if not 0 <= seqno < self._size:
            raise IndexError(
                f"seqno {seqno} out of range for bitmap of size {self._size}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AckBitmap):
            return NotImplemented
        return self._size == other._size and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._size, self._bits))

    def __repr__(self) -> str:
        shown = "".join("1" if self._bits >> i & 1 else "0" for i in range(self._size))
        return f"AckBitmap(size={self._size}, bits={shown!r})"
