"""Timing statistics with the paper's measurement methodology.

The paper's echo benchmark averages over 100 iterations *after discarding
the best and worst timings* (§4.3).  ``trimmed_mean`` implements exactly
that, and ``RunningStats`` gives streaming mean/variance (Welford) for the
long-running benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def trimmed_mean(samples: list[float], discard_each_end: int = 1) -> float:
    """Mean after dropping ``discard_each_end`` smallest and largest values.

    With the default of 1 this is the paper's "averaged over 100 iterations
    after discarding the best and worst timings".  If too few samples
    remain after trimming, fall back to the plain mean.
    """
    if not samples:
        raise ValueError("trimmed_mean of empty sample set")
    if len(samples) <= 2 * discard_each_end:
        return sum(samples) / len(samples)
    ordered = sorted(samples)
    kept = ordered[discard_each_end : len(ordered) - discard_each_end]
    return sum(kept) / len(kept)


class RunningStats:
    """Streaming mean/variance/min/max via Welford's algorithm."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def merge(self, other: "RunningStats") -> None:
        """Combine another stream's statistics into this one."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def summary(self) -> "Summary":
        """Snapshot as the shared :class:`Summary` dataclass.

        A streaming accumulator cannot trim outliers, so ``trimmed``
        carries the plain mean; callers that need the paper's trimmed
        mean must keep raw samples and use :func:`summarize`.
        """
        return Summary(
            count=self.count,
            mean=self.mean,
            stddev=self.stddev,
            minimum=self.minimum,
            maximum=self.maximum,
            trimmed=self.mean,
        )

    def __repr__(self) -> str:
        return (
            f"RunningStats(n={self._count}, mean={self.mean:.6g}, "
            f"sd={self.stddev:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


@dataclass(frozen=True)
class Summary:
    """Immutable snapshot of a sample set."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    trimmed: float


def summarize(samples: list[float], discard_each_end: int = 1) -> Summary:
    """Produce a :class:`Summary` of ``samples`` (paper methodology)."""
    stats = RunningStats()
    for sample in samples:
        stats.add(sample)
    return Summary(
        count=stats.count,
        mean=stats.mean,
        stddev=stats.stddev,
        minimum=stats.minimum,
        maximum=stats.maximum,
        trimmed=trimmed_mean(samples, discard_each_end),
    )
