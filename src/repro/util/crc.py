"""CRC generators used by the ATM substrate.

AAL5 protects each CS-PDU with the 32-bit CRC from IEEE 802.3 (polynomial
0x04C11DB7, reflected, init/final 0xFFFFFFFF), and ATM OAM cells use the
CRC-10 (polynomial x^10 + x^9 + x^5 + x^4 + x + 1, i.e. 0x633).  Both are
implemented from scratch — the point is that corrupted frames are
*detected* by the AAL5 layer, which is what triggers the NCS error control
procedures (paper §3.2: "the checksumming is done by the AAL5 layer to
detect errors within the AAL5 frames").
"""

from __future__ import annotations


def _build_crc32_table() -> list[int]:
    poly = 0xEDB88320  # 0x04C11DB7 bit-reflected
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC32_TABLE = _build_crc32_table()


def crc32_aal5(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Compute the AAL5 CRC-32 of ``data``.

    The returned value is already XOR-ed with 0xFFFFFFFF, ready to be
    placed in the AAL5 trailer.  To checksum incrementally, re-invert the
    previous result: ``crc32_aal5(b, crc32_aal5(a) ^ 0xFFFFFFFF)`` equals
    ``crc32_aal5(a + b)``.

    AAL5 uses the IEEE 802.3 CRC-32, the same polynomial ``zlib.crc32``
    implements, so the hot path delegates to the C implementation;
    :func:`crc32_aal5_reference` keeps the table-driven form the tests
    validate against.
    """
    import zlib

    # zlib chains on the *finalized* previous value; our ``crc`` argument
    # is the raw register, so re-invert at the boundary.
    return zlib.crc32(data, crc ^ 0xFFFFFFFF)


def crc32_aal5_reference(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Table-driven reference implementation of :func:`crc32_aal5`."""
    for byte in data:
        crc = _CRC32_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


_CRC10_POLY = 0x633


def _build_crc10_table() -> list[int]:
    table = []
    for byte in range(256):
        # Align the byte with the top of a 10-bit register.
        crc = byte << 2
        for _ in range(8):
            crc <<= 1
            if crc & 0x400:
                crc ^= _CRC10_POLY
        table.append(crc & 0x3FF)
    return table


_CRC10_TABLE = _build_crc10_table()


def crc10(data: bytes, crc: int = 0) -> int:
    """Compute the ATM OAM CRC-10 of ``data`` (table-driven, 10-bit)."""
    for byte in data:
        crc = ((crc << 8) & 0x3FF) ^ _CRC10_TABLE[((crc >> 2) ^ byte) & 0xFF]
    return crc & 0x3FF


def crc10_bitwise(data: bytes, crc: int = 0) -> int:
    """Reference bit-at-a-time CRC-10; tests validate ``crc10`` against it."""
    for byte in data:
        for bit in range(7, -1, -1):
            in_bit = byte >> bit & 1
            top = crc >> 9 & 1
            crc = (crc << 1) & 0x3FF
            if top ^ in_bit:
                crc ^= _CRC10_POLY & 0x3FF
    return crc & 0x3FF
