"""Clock abstractions: wall time for the live runtime, virtual time for
the simulator.

Every timing-sensitive component (error-control retransmit timers, the
rate-based flow controller's token bucket, the benchmark drivers) takes a
``Clock`` so the same code runs against real time or against the
discrete-event simulator's deterministic virtual time.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source measured in float seconds."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic, arbitrary epoch)."""

    def now_us(self) -> float:
        """Current time in microseconds."""
        return self.now() * 1e6


class MonotonicClock(Clock):
    """Wall-clock implementation backed by ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock(Clock):
    """Manually advanced clock used by the discrete-event simulator.

    Only the simulation kernel may advance it; everything else reads it.
    Advancing backwards is a bug and raises immediately.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(
                f"virtual time may not go backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp

    def advance_by(self, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"virtual time delta must be >= 0, got {delta}")
        self._now += delta
