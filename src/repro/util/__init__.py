"""Shared low-level utilities used by every NCS subsystem.

This package deliberately contains only dependency-free building blocks:
acknowledgment bitmaps (selective repeat), CRC generators (AAL5), byte
codecs (wire formats and the XDR model used by the baselines), running
statistics (the paper's trimmed-mean timing methodology), clock
abstractions (wall vs. virtual time), an event tracer, and a token bucket
(rate-based flow control).
"""

from repro.util.bitmap import AckBitmap
from repro.util.clock import Clock, MonotonicClock, VirtualClock
from repro.util.codec import ByteReader, ByteWriter, XdrDecoder, XdrEncoder
from repro.util.crc import crc10, crc32_aal5
from repro.util.stats import RunningStats, summarize, trimmed_mean
from repro.util.tokenbucket import TokenBucket
from repro.util.trace import TraceEvent, Tracer

__all__ = [
    "AckBitmap",
    "ByteReader",
    "ByteWriter",
    "Clock",
    "MonotonicClock",
    "RunningStats",
    "TokenBucket",
    "TraceEvent",
    "Tracer",
    "VirtualClock",
    "XdrDecoder",
    "XdrEncoder",
    "crc10",
    "crc32_aal5",
    "summarize",
    "trimmed_mean",
]
