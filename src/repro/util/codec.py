"""Byte-level codecs for wire formats.

``ByteWriter``/``ByteReader`` are small big-endian (network order) struct
builders used by the NCS protocol headers and control PDUs.

``XdrEncoder``/``XdrDecoder`` model Sun XDR, the external data
representation that PVM and MPICH used on heterogeneous machine pairs.
The baselines charge per-byte conversion costs when two endpoints disagree
on byte order — exactly the effect that makes MPI and p4 collapse in the
paper's Figure 13 — and these classes provide a real, working XDR subset
so the conversion path is exercised rather than merely priced.
"""

from __future__ import annotations

import struct


class ByteWriter:
    """Incrementally build a network-order byte string."""

    __slots__ = ("_parts",)

    def __init__(self):
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!B", value))
        return self

    def u16(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!H", value))
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!I", value))
        return self

    def u64(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!Q", value))
        return self

    def f64(self, value: float) -> "ByteWriter":
        self._parts.append(struct.pack("!d", value))
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._parts.append(data)
        return self

    def lp_bytes(self, data: bytes) -> "ByteWriter":
        """Length-prefixed (u32) byte string."""
        self.u32(len(data))
        self._parts.append(data)
        return self

    def lp_str(self, text: str) -> "ByteWriter":
        """Length-prefixed UTF-8 string."""
        return self.lp_bytes(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class ByteReader:
    """Sequentially decode a network-order byte string."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def u8(self) -> int:
        return self._unpack("!B", 1)

    def u16(self) -> int:
        return self._unpack("!H", 2)

    def u32(self) -> int:
        return self._unpack("!I", 4)

    def u64(self) -> int:
        return self._unpack("!Q", 8)

    def f64(self) -> float:
        return self._unpack("!d", 8)

    def raw(self, count: int) -> bytes:
        self._need(count)
        data = self._data[self._pos : self._pos + count]
        self._pos += count
        return data

    def lp_bytes(self) -> bytes:
        return self.raw(self.u32())

    def lp_str(self) -> str:
        return self.lp_bytes().decode("utf-8")

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def rest(self) -> bytes:
        data = self._data[self._pos :]
        self._pos = len(self._data)
        return data

    def _unpack(self, fmt: str, size: int):
        self._need(size)
        (value,) = struct.unpack_from(fmt, self._data, self._pos)
        self._pos += size
        return value

    def _need(self, count: int) -> None:
        if self._pos + count > len(self._data):
            raise ValueError(
                f"truncated buffer: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )


class XdrEncoder:
    """Minimal Sun XDR encoder (RFC 1014 subset: int, uint, hyper, double,
    opaque, string).  Everything is big-endian and padded to 4 bytes, which
    is what makes XDR expensive on little-endian or byte-copy-averse hosts.
    """

    def __init__(self):
        self._writer = ByteWriter()

    def pack_int(self, value: int) -> None:
        self._writer.raw(struct.pack("!i", value))

    def pack_uint(self, value: int) -> None:
        self._writer.u32(value)

    def pack_hyper(self, value: int) -> None:
        self._writer.raw(struct.pack("!q", value))

    def pack_double(self, value: float) -> None:
        self._writer.f64(value)

    def pack_opaque(self, data: bytes) -> None:
        self._writer.u32(len(data))
        self._writer.raw(data)
        pad = (4 - len(data) % 4) % 4
        if pad:
            self._writer.raw(b"\x00" * pad)

    def pack_string(self, text: str) -> None:
        self.pack_opaque(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return self._writer.getvalue()


class XdrDecoder:
    """Decoder matching :class:`XdrEncoder`."""

    def __init__(self, data: bytes):
        self._reader = ByteReader(data)

    def unpack_int(self) -> int:
        return struct.unpack("!i", self._reader.raw(4))[0]

    def unpack_uint(self) -> int:
        return self._reader.u32()

    def unpack_hyper(self) -> int:
        return struct.unpack("!q", self._reader.raw(8))[0]

    def unpack_double(self) -> float:
        return self._reader.f64()

    def unpack_opaque(self) -> bytes:
        length = self._reader.u32()
        data = self._reader.raw(length)
        pad = (4 - length % 4) % 4
        if pad:
            self._reader.raw(pad)
        return data

    def unpack_string(self) -> str:
        return self.unpack_opaque().decode("utf-8")

    def done(self) -> bool:
        return self._reader.remaining() == 0
