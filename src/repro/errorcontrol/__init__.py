"""Error control algorithms (paper §3.2).

NCS supports several error control algorithms, selected per connection at
runtime; each is "implemented as a thread" in the paper's architecture.
Here each is a sans-I/O engine the Error Control Thread (or the bypass
procedure, or the simulator) drives:

* ``selective_repeat`` — the paper's default (Fig. 5/6): bitmap ACKs on
  the control connection, selective retransmission, timeout retransmits
  the whole message;
* ``go_back_n`` — cumulative ACKs, in-order-only acceptance, timeout
  rewinds to the window base;
* ``none`` — no acknowledgments; for media streams that tolerate loss.
"""

from repro.errorcontrol.base import (
    ReceiverErrorControl,
    SenderErrorControl,
    TransmissionFailed,
)
from repro.errorcontrol.go_back_n import GoBackNReceiver, GoBackNSender
from repro.errorcontrol.null import NullReceiver, NullSender
from repro.errorcontrol.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)

ALGORITHMS = ("selective_repeat", "go_back_n", "none")

__all__ = [
    "ALGORITHMS",
    "GoBackNReceiver",
    "GoBackNSender",
    "NullReceiver",
    "NullSender",
    "ReceiverErrorControl",
    "SelectiveRepeatReceiver",
    "SelectiveRepeatSender",
    "SenderErrorControl",
    "TransmissionFailed",
    "make_error_control",
]


def make_error_control(
    name: str,
    connection_id: int,
    sdu_size: int,
    **options,
) -> tuple[SenderErrorControl, ReceiverErrorControl]:
    """Build the (sender, receiver) engine pair for algorithm ``name``."""
    if name == "selective_repeat":
        return (
            SelectiveRepeatSender(connection_id, sdu_size, **options),
            SelectiveRepeatReceiver(connection_id),
        )
    if name == "go_back_n":
        return (
            GoBackNSender(connection_id, sdu_size, **options),
            GoBackNReceiver(connection_id),
        )
    if name in ("none", "null"):
        options.pop("retransmit_timeout", None)
        options.pop("max_retries", None)
        return (
            NullSender(connection_id, sdu_size),
            NullReceiver(connection_id, **options),
        )
    raise ValueError(
        f"unknown error control algorithm {name!r}; choose from {ALGORITHMS}"
    )
