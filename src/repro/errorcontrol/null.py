"""Null error control: no acknowledgments, no retransmission.

The configuration the paper prescribes for audio/video streams (§2, §3.3:
"programmers can select no flow or error control for the audio and video
connections").  Messages whose SDUs all arrive are delivered; a lost SDU
silently drops the whole message, and a periodic GC reclaims the partial
reassembly state.
"""

from __future__ import annotations

from repro.errorcontrol.base import ReceiverErrorControl, SenderErrorControl
from repro.protocol.effects import Effects
from repro.protocol.headers import Sdu
from repro.protocol.pdus import ControlPdu
from repro.protocol.segmentation import Reassembler, segment_message

#: Partial messages older than this are discarded by the receiver GC.
DEFAULT_GC_TIMEOUT = 2.0


class NullSender(SenderErrorControl):
    """Fire-and-forget sender: transmit once, complete immediately."""

    name = "none"

    def __init__(self, connection_id: int, sdu_size: int):
        self.connection_id = connection_id
        self.sdu_size = sdu_size

    def send(
        self, msg_id: int, payload: bytes, now: float, trace_id: int = 0,
        span_id=None,
    ) -> Effects:
        sdus = segment_message(
            self.connection_id, msg_id, payload, self.sdu_size,
            trace_id=trace_id, span_id=span_id,
        )
        return Effects(transmits=sdus, completed=[msg_id])

    def on_control(self, pdu: ControlPdu, now: float) -> Effects:
        return Effects()

    def on_timer(self, now: float) -> Effects:
        return Effects()

    def inflight_count(self) -> int:
        return 0


class NullReceiver(ReceiverErrorControl):
    """Deliver complete messages; drop and GC incomplete ones."""

    name = "none"

    def __init__(self, connection_id: int, gc_timeout: float = DEFAULT_GC_TIMEOUT):
        self.connection_id = connection_id
        self._reassembler = Reassembler(gc_timeout=gc_timeout)
        self._gc_timeout = gc_timeout
        self.dropped_messages = 0

    def on_sdu(self, sdu: Sdu, now: float) -> Effects:
        if sdu.header.connection_id != self.connection_id:
            return Effects()
        message = self._reassembler.add(sdu, now)
        effects = Effects()
        if message is not None:
            effects.deliveries.append(message)
        if self._reassembler.inflight_count:
            effects.timer_at = now + self._gc_timeout
        return effects

    def on_timer(self, now: float) -> Effects:
        stale = self._reassembler.gc(now)
        self.dropped_messages += len(stale)
        effects = Effects()
        if self._reassembler.inflight_count:
            effects.timer_at = now + self._gc_timeout
        return effects

    def buffered_bytes(self) -> int:
        return self._reassembler.buffered_bytes

    def metrics(self) -> dict:
        return {
            "dropped_messages": self.dropped_messages,
            "partial_inflight": self._reassembler.inflight_count,
        }
