"""Selective-repeat error control — the paper's default algorithm.

Faithful to the pseudo code in Fig. 6:

Sender
    segment → transmit all SDUs (end bit on the last) → start timer →
    wait for an Acknowledgment PDU.  On timeout, retransmit the *whole*
    message ("Go to Line 4 for retransmission").  On an ACK whose bitmap
    still has set bits, selectively retransmit exactly those SDUs and
    wait again.  An all-clear bitmap completes the message.

Receiver
    clear the bitmap bit of every SDU received intact; when an SDU with
    the end bit arrives, send an Acknowledgment PDU carrying the bitmap
    over the control connection; keep receiving retransmissions (and
    re-acknowledging) until the bitmap is clear, then reassemble into the
    user buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errorcontrol.base import ReceiverErrorControl, SenderErrorControl
from repro.errorcontrol.ordered import OrderedDelivery
from repro.protocol.effects import Effects
from repro.protocol.headers import Sdu
from repro.protocol.pdus import AckPdu, ControlPdu
from repro.protocol.segmentation import Reassembler, segment_message

#: Default retransmission timeout (seconds).  The paper leaves the value
#: to "the available timer resolution"; 200 ms suits both loopback and
#: the simulated ATM LAN.
DEFAULT_RETRANSMIT_TIMEOUT = 0.2
DEFAULT_MAX_RETRIES = 8


@dataclass
class _OutgoingMessage:
    """Sender-side bookkeeping for one in-flight message."""

    msg_id: int
    sdus: list
    deadline: float
    #: Timeouts burned so far (the retry budget counts *stalls*, not
    #: ACK rounds — an ACK that still shows pending bits is progress).
    timeouts: int = 0
    #: ACK-triggered selective rounds (secondary storm bound).
    ack_rounds: int = 0
    #: seqnos the last ACK showed missing, and when we answered it —
    #: dedupes retransmissions for duplicate ACKs.
    last_pending: Optional[tuple] = None
    last_selective_at: float = -1.0


class SelectiveRepeatSender(SenderErrorControl):
    """Sender half of the selective-repeat engine."""

    name = "selective_repeat"

    def __init__(
        self,
        connection_id: int,
        sdu_size: int,
        retransmit_timeout: float = DEFAULT_RETRANSMIT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        self.connection_id = connection_id
        self.sdu_size = sdu_size
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self._outgoing: Dict[int, _OutgoingMessage] = {}
        self.retransmitted_sdus = 0
        self.full_retransmits = 0
        self.duplicate_acks = 0
        #: Engine time of the most recent retransmission (storm recency
        #: for the health watchdog); negative = never.
        self.last_retransmit_at = -1.0

    def send(
        self, msg_id: int, payload: bytes, now: float, trace_id: int = 0,
        span_id=None,
    ) -> Effects:
        if msg_id in self._outgoing:
            raise ValueError(f"msg_id {msg_id} already in flight")
        sdus = segment_message(
            self.connection_id, msg_id, payload, self.sdu_size,
            trace_id=trace_id, span_id=span_id,
        )
        state = _OutgoingMessage(
            msg_id=msg_id,
            sdus=sdus,
            deadline=now + self.retransmit_timeout,
        )
        self._outgoing[msg_id] = state
        return Effects(transmits=list(sdus), timer_at=self._next_deadline())

    def on_control(self, pdu: ControlPdu, now: float) -> Effects:
        if not isinstance(pdu, AckPdu) or pdu.connection_id != self.connection_id:
            return Effects(timer_at=self._next_deadline())
        state = self._outgoing.get(pdu.msg_id)
        if state is None:
            # ACK for a message we already completed (duplicate ACK).
            self.duplicate_acks += 1
            return Effects(timer_at=self._next_deadline())
        pending = tuple(pdu.bitmap.pending())
        if not pending:
            del self._outgoing[pdu.msg_id]
            return Effects(completed=[pdu.msg_id], timer_at=self._next_deadline())
        # Forward progress: any ACK pushes the stall deadline out.
        state.deadline = now + self.retransmit_timeout
        # Duplicate ACK (e.g. two copies of the end SDU after a full
        # retransmit): the same pending set answered moments ago does not
        # deserve another retransmission round.
        if (
            pending == state.last_pending
            and now - state.last_selective_at < self.retransmit_timeout / 2
        ):
            self.duplicate_acks += 1
            return Effects(timer_at=self._next_deadline())
        state.ack_rounds += 1
        if state.ack_rounds > max(32, 4 * self.max_retries):
            del self._outgoing[pdu.msg_id]
            return Effects(failed=[pdu.msg_id], timer_at=self._next_deadline())
        # Selective retransmission of exactly the SDUs marked in error.
        retransmits = [state.sdus[seqno] for seqno in pending]
        self.retransmitted_sdus += len(retransmits)
        self.last_retransmit_at = now
        state.last_pending = pending
        state.last_selective_at = now
        return Effects(transmits=retransmits, timer_at=self._next_deadline())

    def on_timer(self, now: float) -> Effects:
        effects = Effects()
        for msg_id in list(self._outgoing):
            state = self._outgoing[msg_id]
            if state.deadline > now:
                continue
            state.timeouts += 1
            if state.timeouts > self.max_retries:
                del self._outgoing[msg_id]
                effects.failed.append(msg_id)
                continue
            # Paper: no ACK within the interval => retransmit the whole
            # message ("it retransmits the whole packets").
            self.full_retransmits += 1
            self.retransmitted_sdus += len(state.sdus)
            self.last_retransmit_at = now
            state.deadline = now + self.retransmit_timeout
            state.last_pending = None
            effects.transmits.extend(state.sdus)
        effects.timer_at = self._next_deadline()
        return effects

    def defer(self, now: float) -> None:
        for state in self._outgoing.values():
            state.deadline = max(state.deadline, now + self.retransmit_timeout)

    def inflight_count(self) -> int:
        return len(self._outgoing)

    def pending(self) -> list:
        """Unacknowledged messages, reassembled from the window state."""
        return [
            (msg_id, b"".join(sdu.payload for sdu in state.sdus))
            for msg_id, state in sorted(self._outgoing.items())
        ]

    def _next_deadline(self) -> Optional[float]:
        if not self._outgoing:
            return None
        return min(state.deadline for state in self._outgoing.values())

    def metrics(self) -> dict:
        return {
            "inflight": len(self._outgoing),
            "retransmitted_sdus": self.retransmitted_sdus,
            "full_retransmits": self.full_retransmits,
            "duplicate_acks": self.duplicate_acks,
            "last_retransmit_at": self.last_retransmit_at,
        }


class SelectiveRepeatReceiver(ReceiverErrorControl):
    """Receiver half of the selective-repeat engine."""

    name = "selective_repeat"

    def __init__(self, connection_id: int, delivery_gap_timeout: float = 2.0):
        self.connection_id = connection_id
        self._reassembler = Reassembler()
        #: msg_id -> total_sdus for messages whose end bit we have seen
        #: but which are still incomplete (retransmissions expected).
        self._awaiting_retransmit: Dict[int, int] = {}
        #: Restores send order across messages: a retransmission-delayed
        #: message must not be overtaken by its successors.
        self._ordering = OrderedDelivery(gap_timeout=delivery_gap_timeout)
        self.acks_sent = 0
        #: Sum over all ACKs of bits still pending in the bitmap — divide
        #: by acks_sent for mean bitmap occupancy (Fig. 6 retransmission
        #: pressure; 0 everywhere on a clean wire).
        self.bitmap_pending_total = 0

    @property
    def corrupted_count(self) -> int:
        return self._reassembler.corrupted_count

    @property
    def duplicate_count(self) -> int:
        return self._reassembler.duplicate_count

    def on_sdu(self, sdu: Sdu, now: float) -> Effects:
        header = sdu.header
        if header.connection_id != self.connection_id:
            return Effects()
        message = self._reassembler.add(sdu, now)
        effects = Effects()
        if message is not None:
            self._awaiting_retransmit.pop(header.msg_id, None)
            effects.deliveries.extend(
                self._ordering.push(header.msg_id, message, now)
            )
            effects.timer_at = self._ordering.next_deadline(now)
            # Completion always triggers an (all-clear) ACK so the sender
            # can retire the message — including the duplicate-end-SDU
            # case where our previous ACK was lost.
            effects.controls.append(self._ack(header.msg_id, header.total_sdus))
            return effects
        if header.end_bit:
            # Paper Fig. 5 step 5: the end-of-message bit triggers an
            # Acknowledgment carrying the current bitmap.  Selective
            # retransmissions acknowledge via the completion path; a lost
            # retransmission is recovered by the sender's timeout (which
            # resends the whole message, end bit included).
            self._awaiting_retransmit[header.msg_id] = header.total_sdus
            effects.controls.append(self._ack(header.msg_id, header.total_sdus))
        return effects

    def on_timer(self, now: float) -> Effects:
        """Release messages stuck behind an abandoned predecessor."""
        effects = Effects()
        effects.deliveries.extend(self._ordering.release_stale(now))
        effects.timer_at = self._ordering.next_deadline(now)
        return effects

    def held_deliveries(self) -> list:
        """Acked-but-held messages surrendered at connection teardown."""
        return self._ordering.flush()

    def buffered_bytes(self) -> int:
        """In-flight fragments plus reorder-held payloads."""
        return self._reassembler.buffered_bytes + self._ordering.held_bytes

    def _ack(self, msg_id: int, total_sdus: int) -> AckPdu:
        bitmap = self._reassembler.bitmap_for(msg_id, total_sdus)
        self.acks_sent += 1
        self.bitmap_pending_total += len(bitmap.pending())
        return AckPdu(self.connection_id, msg_id, bitmap)

    def metrics(self) -> dict:
        return {
            "acks_sent": self.acks_sent,
            "bitmap_pending_total": self.bitmap_pending_total,
            "corrupted": self._reassembler.corrupted_count,
            "duplicates": self._reassembler.duplicate_count,
        }
