"""Common interface for error control engines.

A *sender* engine owns segmentation, retransmission state and timers for
outgoing messages; a *receiver* engine owns reassembly and
acknowledgment generation for incoming SDUs.  Both are pure state
machines: every entry point takes the current time and returns
:class:`~repro.protocol.effects.Effects`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.protocol.effects import Effects
from repro.protocol.headers import Sdu
from repro.protocol.pdus import ControlPdu


class TransmissionFailed(Exception):
    """A message exhausted its retransmission budget."""

    def __init__(self, msg_id: int, attempts: int):
        super().__init__(
            f"message {msg_id} abandoned after {attempts} transmission attempts"
        )
        self.msg_id = msg_id
        self.attempts = attempts


class SenderErrorControl(ABC):
    """Sender-side error control engine for one connection."""

    name: str

    @abstractmethod
    def send(
        self, msg_id: int, payload: bytes, now: float, trace_id: int = 0,
        span_id=None,
    ) -> Effects:
        """Segment ``payload`` and request its (initial) transmission.

        A non-zero ``trace_id`` stamps the cross-node trace envelope on
        every SDU of the message; since engines retransmit the stored
        SDUs, retransmissions inherit the envelope automatically.  An
        explicit ``span_id`` overrides the envelope's default msg_id
        span — the latency X-ray uses its top bit to mark sampled
        messages (see :data:`repro.obs.xray.XRAY_SPAN_MARK`).
        """

    @abstractmethod
    def on_control(self, pdu: ControlPdu, now: float) -> Effects:
        """Process an ACK (or other control PDU addressed to the sender)."""

    @abstractmethod
    def on_timer(self, now: float) -> Effects:
        """Fire any expired retransmission timers."""

    def defer(self, now: float) -> None:
        """Push every retransmission deadline out by one timeout.

        The runtime calls this instead of ``on_timer`` while the flow
        controller still holds queued SDUs: the paper's timer starts
        after the last packet is handed to the Send Thread, so a message
        whose tail is still gated by credits cannot be "timed out" — an
        ACK was never possible yet.
        """

    @abstractmethod
    def inflight_count(self) -> int:
        """Messages handed to ``send`` but not yet completed or failed."""

    def pending(self) -> list:
        """Unacknowledged in-flight messages as ``(msg_id, payload)``.

        The recovery layer replays these after a reconnect — the window
        state *is* the replay buffer, no shadow copy needed.  Engines
        that keep no retransmission state (``none``) return nothing:
        with no delivery guarantee there is nothing to replay.
        """
        return []

    def idle(self) -> bool:
        return self.inflight_count() == 0

    def metrics(self) -> dict:
        """Observable counters for the metrics collector (subclasses
        extend; values must be plain numbers)."""
        return {"inflight": self.inflight_count()}


class ReceiverErrorControl(ABC):
    """Receiver-side error control engine for one connection."""

    name: str

    @abstractmethod
    def on_sdu(self, sdu: Sdu, now: float) -> Effects:
        """Process one arriving SDU: reassemble, acknowledge, deliver."""

    def on_timer(self, now: float) -> Effects:
        """Periodic housekeeping (unreliable engines GC stale state)."""
        return Effects()

    def held_deliveries(self) -> list:
        """Fully reassembled messages held back (e.g. for ordering).

        These have been acknowledged — the sender considers them
        delivered and will never retransmit them — so a dying connection
        must hand them to the application rather than discard them.
        Engines that deliver strictly in order with no reorder buffer
        have nothing to surrender.
        """
        return []

    def buffered_bytes(self) -> int:
        """Payload bytes currently parked in reassembly/reorder buffers.

        The node's MemoryBudget charges this as the "reassembly" site.
        Engines that buffer nothing report 0.
        """
        return 0

    def metrics(self) -> dict:
        """Observable counters for the metrics collector."""
        return {"acks_sent": getattr(self, "acks_sent", 0)}
