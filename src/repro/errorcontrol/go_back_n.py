"""Go-back-N error control — the paper's alternative reliable algorithm.

Classic go-back-N over the SDUs of each message: the sender keeps a
window of unacknowledged SDUs; the receiver accepts only the next
in-order sequence number and answers every arrival with a cumulative
acknowledgment (next expected seqno); a timeout rewinds transmission to
the window base.  Compared with selective repeat this wastes
retransmission bandwidth under loss — which is exactly why the paper
makes the algorithm selectable per connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errorcontrol.base import ReceiverErrorControl, SenderErrorControl
from repro.errorcontrol.ordered import OrderedDelivery
from repro.protocol.effects import Effects
from repro.protocol.headers import Sdu
from repro.protocol.pdus import ControlPdu, CumAckPdu
from repro.protocol.segmentation import segment_message

DEFAULT_WINDOW = 16
DEFAULT_RETRANSMIT_TIMEOUT = 0.2
DEFAULT_MAX_RETRIES = 8


@dataclass
class _GbnMessage:
    msg_id: int
    sdus: list
    base: int = 0  # lowest unacknowledged seqno
    next_seq: int = 0  # next seqno never yet sent
    deadline: float = 0.0
    attempts: int = 1


class GoBackNSender(SenderErrorControl):
    """Sender half of go-back-N."""

    name = "go_back_n"

    def __init__(
        self,
        connection_id: int,
        sdu_size: int,
        window: int = DEFAULT_WINDOW,
        retransmit_timeout: float = DEFAULT_RETRANSMIT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.connection_id = connection_id
        self.sdu_size = sdu_size
        self.window = window
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self._outgoing: Dict[int, _GbnMessage] = {}
        self.retransmitted_sdus = 0
        self.rewinds = 0
        self.duplicate_acks = 0
        #: Engine time of the most recent rewind (storm recency for the
        #: health watchdog); negative = never.
        self.last_retransmit_at = -1.0

    def send(
        self, msg_id: int, payload: bytes, now: float, trace_id: int = 0,
        span_id=None,
    ) -> Effects:
        if msg_id in self._outgoing:
            raise ValueError(f"msg_id {msg_id} already in flight")
        sdus = segment_message(
            self.connection_id, msg_id, payload, self.sdu_size,
            trace_id=trace_id, span_id=span_id,
        )
        state = _GbnMessage(msg_id=msg_id, sdus=sdus)
        self._outgoing[msg_id] = state
        return self._fill_window(state, now)

    def _fill_window(self, state: _GbnMessage, now: float) -> Effects:
        effects = Effects()
        while (
            state.next_seq < len(state.sdus)
            and state.next_seq - state.base < self.window
        ):
            effects.transmits.append(state.sdus[state.next_seq])
            state.next_seq += 1
        state.deadline = now + self.retransmit_timeout
        effects.timer_at = self._next_deadline()
        return effects

    def on_control(self, pdu: ControlPdu, now: float) -> Effects:
        if not isinstance(pdu, CumAckPdu) or pdu.connection_id != self.connection_id:
            return Effects(timer_at=self._next_deadline())
        state = self._outgoing.get(pdu.msg_id)
        if state is None:
            self.duplicate_acks += 1
            return Effects(timer_at=self._next_deadline())
        if pdu.next_expected > state.base:
            state.base = pdu.next_expected
            state.attempts = 1  # forward progress resets the retry budget
        else:
            # Cumulative ACK with no new progress (lost or reordered SDU
            # at the receiver): the classic go-back-N dup-ACK signal.
            self.duplicate_acks += 1
        if state.base >= len(state.sdus):
            del self._outgoing[pdu.msg_id]
            return Effects(completed=[pdu.msg_id], timer_at=self._next_deadline())
        return self._fill_window(state, now)

    def on_timer(self, now: float) -> Effects:
        effects = Effects()
        for msg_id in list(self._outgoing):
            state = self._outgoing[msg_id]
            if state.deadline > now:
                continue
            state.attempts += 1
            if state.attempts > self.max_retries:
                del self._outgoing[msg_id]
                effects.failed.append(msg_id)
                continue
            # Rewind: retransmit everything from the base.
            resend = state.sdus[state.base : state.next_seq]
            self.rewinds += 1
            self.retransmitted_sdus += len(resend)
            self.last_retransmit_at = now
            effects.transmits.extend(resend)
            state.deadline = now + self.retransmit_timeout
        effects.timer_at = self._next_deadline()
        return effects

    def defer(self, now: float) -> None:
        for state in self._outgoing.values():
            state.deadline = max(state.deadline, now + self.retransmit_timeout)

    def inflight_count(self) -> int:
        return len(self._outgoing)

    def pending(self) -> list:
        """Unacknowledged messages, reassembled from the window state."""
        return [
            (msg_id, b"".join(sdu.payload for sdu in state.sdus))
            for msg_id, state in sorted(self._outgoing.items())
        ]

    def _next_deadline(self) -> Optional[float]:
        if not self._outgoing:
            return None
        return min(state.deadline for state in self._outgoing.values())

    def metrics(self) -> dict:
        return {
            "inflight": len(self._outgoing),
            "retransmitted_sdus": self.retransmitted_sdus,
            "rewinds": self.rewinds,
            "duplicate_acks": self.duplicate_acks,
            "last_retransmit_at": self.last_retransmit_at,
        }


class GoBackNReceiver(ReceiverErrorControl):
    """Receiver half of go-back-N: in-order acceptance, cumulative ACKs."""

    name = "go_back_n"

    def __init__(self, connection_id: int, delivery_gap_timeout: float = 2.0):
        self.connection_id = connection_id
        #: msg_id -> (next expected seqno, ordered fragments)
        self._incoming: Dict[int, tuple[int, list]] = {}
        self._completed: "dict[int, None]" = {}
        self._ordering = OrderedDelivery(gap_timeout=delivery_gap_timeout)
        self.acks_sent = 0
        self.discarded_out_of_order = 0

    COMPLETED_MEMORY = 1024

    def on_sdu(self, sdu: Sdu, now: float) -> Effects:
        header = sdu.header
        if header.connection_id != self.connection_id:
            return Effects()
        effects = Effects()
        if header.msg_id in self._completed:
            # Late retransmission of a finished message: re-ACK completion.
            effects.controls.append(self._ack(header.msg_id, header.total_sdus))
            return effects
        next_expected, fragments = self._incoming.get(header.msg_id, (0, []))
        if header.seqno == next_expected and sdu.payload_intact():
            fragments.append(sdu.payload)
            next_expected += 1
        else:
            self.discarded_out_of_order += 1
        if next_expected >= header.total_sdus:
            self._incoming.pop(header.msg_id, None)
            self._completed[header.msg_id] = None
            while len(self._completed) > self.COMPLETED_MEMORY:
                self._completed.pop(next(iter(self._completed)))
            effects.deliveries.extend(
                self._ordering.push(header.msg_id, b"".join(fragments), now)
            )
            effects.timer_at = self._ordering.next_deadline(now)
        else:
            self._incoming[header.msg_id] = (next_expected, fragments)
        effects.controls.append(self._ack_value(header.msg_id, next_expected))
        return effects

    def on_timer(self, now: float) -> Effects:
        """Release messages stuck behind an abandoned predecessor."""
        effects = Effects()
        effects.deliveries.extend(self._ordering.release_stale(now))
        effects.timer_at = self._ordering.next_deadline(now)
        return effects

    def held_deliveries(self) -> list:
        """Acked-but-held messages surrendered at connection teardown."""
        return self._ordering.flush()

    def buffered_bytes(self) -> int:
        """Partial in-order fragments plus reorder-held payloads."""
        partial = sum(
            len(fragment)
            for _next, fragments in self._incoming.values()
            for fragment in fragments
        )
        return partial + self._ordering.held_bytes

    def _ack(self, msg_id: int, total_sdus: int) -> CumAckPdu:
        return self._ack_value(msg_id, total_sdus)

    def _ack_value(self, msg_id: int, next_expected: int) -> CumAckPdu:
        self.acks_sent += 1
        return CumAckPdu(self.connection_id, msg_id, next_expected)

    def metrics(self) -> dict:
        return {
            "acks_sent": self.acks_sent,
            "discarded_out_of_order": self.discarded_out_of_order,
        }
