"""In-order message delivery for reliable connections.

Message ids on a connection direction are assigned from a contiguous
counter, so the receiver can restore send order even when selective
retransmission lets a later message finish reassembly first.  Completed
messages are held until every earlier id has been delivered.

The one hazard is head-of-line blocking behind a message the *sender
abandoned* (retry budget exhausted): the receiver cannot distinguish
"slow" from "gone", so a held message older than ``gap_timeout`` forces
the gap closed and delivery resumes from the next available id.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class OrderedDelivery:
    """Reorder buffer keyed by per-connection message id."""

    def __init__(self, gap_timeout: float = 2.0, first_msg_id: int = 1):
        self.gap_timeout = gap_timeout
        self._next_id = first_msg_id
        #: msg_id -> (payload, completion time)
        self._held: Dict[int, Tuple[bytes, float]] = {}
        self.gaps_forced = 0

    @property
    def next_expected(self) -> int:
        return self._next_id

    @property
    def held_count(self) -> int:
        return len(self._held)

    @property
    def held_bytes(self) -> int:
        """Payload bytes parked behind ordering gaps."""
        return sum(len(payload) for payload, _when in self._held.values())

    def push(self, msg_id: int, payload: bytes, now: float) -> List[bytes]:
        """Accept a completed message; return whatever is now deliverable."""
        if msg_id < self._next_id:
            return []  # stale duplicate of an already-delivered message
        self._held[msg_id] = (payload, now)
        return self._drain()

    def _drain(self) -> List[bytes]:
        ready: List[bytes] = []
        while self._next_id in self._held:
            payload, _when = self._held.pop(self._next_id)
            ready.append(payload)
            self._next_id += 1
        return ready

    def release_stale(self, now: float) -> List[bytes]:
        """Force past a gap whose successor has waited ``gap_timeout``."""
        if not self._held:
            return []
        oldest = min(when for _payload, when in self._held.values())
        # Epsilon: a timer firing "exactly" at the deadline must count.
        if now - oldest < self.gap_timeout - 1e-9:
            return []
        # The sender abandoned everything below the smallest held id.
        self._next_id = min(self._held)
        self.gaps_forced += 1
        return self._drain()

    def flush(self) -> List[bytes]:
        """Surrender everything held, in id order, gaps notwithstanding.

        Used at connection teardown: a held message has already been
        acknowledged, so the sender will never replay it — discarding it
        here would be silent loss.  The recovery layer's session dedup
        tolerates the resulting reordering.
        """
        ready: List[bytes] = []
        for msg_id in sorted(self._held):
            payload, _when = self._held.pop(msg_id)
            ready.append(payload)
            self._next_id = msg_id + 1
        return ready

    def next_deadline(self, now: float) -> Optional[float]:
        """When ``release_stale`` next needs a look (None if empty)."""
        if not self._held:
            return None
        oldest = min(when for _payload, when in self._held.values())
        return oldest + self.gap_timeout
