"""The selector loop: one thread multiplexing a node's event-mode data.

Structure (classic readiness loop with a self-pipe):

* ``selectors.DefaultSelector`` (epoll on Linux) holds every socket
  endpoint, read-interest always, write-interest only while its
  interface has a transmit backlog.
* A non-blocking ``socketpair`` self-pipe lets other threads interrupt
  ``select()``: registrations, unregistrations, flush requests and
  queue-pair data-ready marks all enqueue an op and write one wake byte.
* Queue endpoints (loopback/HPI — no fd) live in a ready-set fed by the
  pair's data-ready callback; the loop drains them batch-by-batch
  between selector rounds, re-queueing any endpoint that still has
  frames so one chatty pair cannot starve the rest.

Everything the loop calls on a connection (`event_rx`) takes that
connection's receive lock, so the loop thread and the node timer's
reassembly GC can't race; sender-side engines stay behind the engine
lock and are never touched from the loop.
"""

from __future__ import annotations

import selectors
import socket
import threading
from collections import deque

from repro.eventplane.endpoint import EventEndpoint

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


class EventLoop:
    """A node's event data plane: selector + self-pipe + loop thread."""

    #: Safety-net select timeout; every state change also writes the
    #: wake pipe, so this only bounds recovery from a lost wakeup.
    select_timeout = 0.25

    def __init__(self, name: str = "node"):
        self.name = name
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, _READ, None)
        self._lock = threading.Lock()
        self._ops: deque = deque()
        self._queue_ready: deque = deque()
        self._queue_ready_set: set = set()
        #: Socket endpoints currently registered, keyed by endpoint.
        self._masks: dict = {}
        #: Queue endpoints currently attached.
        self._queue_endpoints: set = set()
        self._stopped = False
        self._thread: threading.Thread | None = None
        # Stats (loop thread writes, anyone reads).
        self.loops = 0
        self.wakeups = 0
        self.read_dispatches = 0
        self.write_dispatches = 0
        self.queue_dispatches = 0

    # -- public API (any thread) -------------------------------------------

    def attach(self, connection) -> EventEndpoint:
        """Create and register an endpoint for ``connection``."""
        endpoint = EventEndpoint(connection, connection.interface, self)
        self.start()
        if endpoint.kind == "queue":
            # Queue registration is a lock-protected set insertion (no
            # selector mutation), so apply it inline: if it rode the op
            # queue, a loop iteration running between the op submission
            # and the ready mark below would see the endpoint as
            # unregistered and silently drop the mark — and a burst
            # that entirely pre-dates attach would never re-raise it.
            self._apply_register(endpoint)
            endpoint.attach_ready_callback()
            self.mark_queue_ready(endpoint)  # catch frames that pre-date it
        else:
            self._submit_op(("register", endpoint, None))
        return endpoint

    def unregister(self, endpoint, timeout: float = 2.0) -> None:
        """Remove ``endpoint``; returns once the loop forgot it."""
        if self._on_loop_thread():
            self._apply_unregister(endpoint)
            return
        done = threading.Event()
        self._submit_op(("unregister", endpoint, done))
        if not self._stopped:
            done.wait(timeout)

    def request_flush(self, endpoint) -> None:
        """An endpoint's interface has backlogged tx bytes: arm write
        interest (no-op if the backlog drains before the loop looks)."""
        self._submit_op(("flush", endpoint, None))

    def mark_queue_ready(self, endpoint) -> None:
        """A queue pair landed frames for ``endpoint`` (sender thread)."""
        with self._lock:
            if endpoint in self._queue_ready_set:
                return
            self._queue_ready_set.add(endpoint)
            self._queue_ready.append(endpoint)
        self._wake()

    def retire(self, endpoint) -> None:
        """Loop-thread-only: drop an endpoint whose transport died."""
        self._apply_unregister(endpoint)

    def start(self) -> None:
        with self._lock:
            if self._thread is not None or self._stopped:
                return
            self._thread = threading.Thread(
                target=self._run, name=f"eventloop-{self.name}", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        thread = self._thread
        self._stopped = True
        self._wake()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        try:
            self._selector.close()
        except Exception:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    # -- introspection -------------------------------------------------------

    def selector_key_count(self) -> int:
        """Registered selector keys, excluding the wake pipe."""
        return max(0, len(self._selector.get_map()) - 1)

    def endpoint_count(self) -> int:
        """Endpoints of either kind the loop currently serves."""
        with self._lock:
            return len(self._masks) + len(self._queue_endpoints)

    def stats(self) -> dict:
        return {
            "loops": self.loops,
            "wakeups": self.wakeups,
            "read_dispatches": self.read_dispatches,
            "write_dispatches": self.write_dispatches,
            "queue_dispatches": self.queue_dispatches,
            "selector_keys": self.selector_key_count(),
            "endpoints": self.endpoint_count(),
        }

    # -- internals -----------------------------------------------------------

    def _on_loop_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def _submit_op(self, op) -> None:
        with self._lock:
            self._ops.append(op)
        self._wake()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full or closed: a wakeup is already pending / moot

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                self.wakeups += 1
        except (BlockingIOError, OSError):
            pass

    def _set_mask(self, endpoint, mask: int) -> None:
        current = self._masks.get(endpoint)
        if current is None or current == mask:
            return
        try:
            self._selector.modify(endpoint.fileno(), mask, endpoint)
            self._masks[endpoint] = mask
        except (KeyError, ValueError, OSError):
            self._forget_socket(endpoint)

    def _forget_socket(self, endpoint) -> None:
        if self._masks.pop(endpoint, None) is not None:
            try:
                self._selector.unregister(endpoint.fileno())
            except (KeyError, ValueError, OSError):
                pass

    def _apply_register(self, endpoint) -> None:
        if self._stopped:
            return
        if endpoint.kind == "socket":
            try:
                self._selector.register(endpoint.fileno(), _READ, endpoint)
                self._masks[endpoint] = _READ
            except (ValueError, OSError):
                endpoint.connection.event_transport_lost("register")
        else:
            with self._lock:
                self._queue_endpoints.add(endpoint)

    def _apply_unregister(self, endpoint) -> None:
        self._forget_socket(endpoint)
        with self._lock:
            self._queue_endpoints.discard(endpoint)
            if endpoint in self._queue_ready_set:
                self._queue_ready_set.discard(endpoint)
                try:
                    self._queue_ready.remove(endpoint)
                except ValueError:
                    pass

    def _apply_ops(self) -> None:
        while True:
            with self._lock:
                if not self._ops:
                    return
                op, endpoint, done = self._ops.popleft()
            if op == "register":
                self._apply_register(endpoint)
            elif op == "unregister":
                self._apply_unregister(endpoint)
                if done is not None:
                    done.set()
            elif op == "flush":
                if endpoint in self._masks and endpoint.has_backlog():
                    self._set_mask(endpoint, _READ | _WRITE)

    def _process_queue_ready(self) -> None:
        """One fairness round over queue endpoints with pending frames."""
        with self._lock:
            batch = list(self._queue_ready)
            self._queue_ready.clear()
            self._queue_ready_set.clear()
        for endpoint in batch:
            with self._lock:
                if endpoint not in self._queue_endpoints:
                    continue
            self.queue_dispatches += 1
            if endpoint.on_readable():
                self.mark_queue_ready(endpoint)

    def _run(self) -> None:
        while not self._stopped:
            self._apply_ops()
            with self._lock:
                pending_queues = bool(self._queue_ready)
            timeout = 0.0 if pending_queues else self.select_timeout
            try:
                events = self._selector.select(timeout)
            except OSError:
                continue  # fd torn down mid-select; ops will clean up
            self.loops += 1
            for key, mask in events:
                endpoint = key.data
                if endpoint is None:
                    self._drain_wake()
                    continue
                if mask & _READ:
                    self.read_dispatches += 1
                    endpoint.on_readable()
                if mask & _WRITE and endpoint in self._masks:
                    self.write_dispatches += 1
                    if endpoint.on_writable():
                        self._set_mask(endpoint, _READ)
            self._process_queue_ready()
