"""Per-connection adapter between the selector loop and an interface.

Two endpoint kinds cover the data interfaces the event plane serves:

* **socket** — the interface (or the one inside a fault wrapper) has a
  file descriptor (:class:`~repro.interfaces.sci.SciInterface`).  Reads
  are selector-driven; writes append to the interface's explicit tx
  backlog and the loop flushes on writability, so no thread ever blocks
  in a socket write.
* **queue** — an in-process queue pair (loopback / HPI) with no fd.
  Writes go straight into the peer's queue from the submitting thread;
  reads are driven by the pair's data-ready callback, which wakes the
  peer node's loop.

The connection's engines never move: ``submit`` is called by whatever
thread pumped flow control (application, control reader, timer), and
``on_readable`` hands complete frames to the connection under its
receive lock on the loop thread.
"""

from __future__ import annotations

from repro.interfaces.base import InterfaceClosed


def _unwrap(interface):
    """Peel fault-injection wrappers down to the transport interface."""
    inner = interface
    while hasattr(inner, "_inner"):
        inner = inner._inner
    return inner


class EventEndpoint:
    """One event-mode connection's seat on the selector loop."""

    __slots__ = (
        "connection",
        "interface",
        "loop",
        "kind",
        "batch_max",
        "_inner",
        "_fileno",
        "_nonblocking_tx",
        "_detached",
    )

    def __init__(self, connection, interface, loop):
        self.connection = connection
        self.interface = interface
        self.loop = loop
        self.batch_max = connection.config.batch_max
        self._inner = _unwrap(interface)
        self._detached = False
        if hasattr(self._inner, "fileno"):
            self.kind = "socket"
            self._fileno = self._inner.fileno()
            # The zero-syscall enqueue path only exists when no fault
            # wrapper sits between us and the socket; wrapped interfaces
            # fall back to per-frame sends from the submitting thread
            # (bounded by the interface's own send stall deadline).
            self._nonblocking_tx = interface is self._inner and hasattr(
                interface, "queue_frames"
            )
        elif hasattr(self._inner, "set_ready_callback"):
            self.kind = "queue"
            self._fileno = None
            self._nonblocking_tx = False
        else:
            raise ValueError(
                f"event data plane cannot drive interface "
                f"{type(self._inner).__name__}: it has neither a file "
                f"descriptor nor a data-ready callback"
            )

    def fileno(self) -> int:
        return self._fileno

    # -- transmit (any thread) ---------------------------------------------

    def submit(self, sdus) -> None:
        """Hand flow-released SDUs to the data plane.

        Socket kind: encode onto the interface backlog and try one
        non-blocking flush; leftover bytes arm EVENT_WRITE interest on
        the loop.  Queue kind (and fault-wrapped transports): a direct
        in-memory ``send_many`` — the peer's ready callback takes it
        from there.
        """
        if self._nonblocking_tx:
            if not self.interface.queue_frames(sdus):
                self.loop.request_flush(self)
        else:
            self.interface.send_many(sdus)

    # -- loop-thread callbacks ---------------------------------------------

    def on_readable(self) -> bool:
        """Drain one batch of ready frames; True if more may be queued."""
        try:
            frames = self.interface.recv_many(self.batch_max, timeout=0.0)
        except InterfaceClosed:
            self.connection.event_transport_lost("recv")
            self.loop.retire(self)
            return False
        if frames:
            self.connection.event_rx(frames)
        if self.kind == "queue":
            depth = getattr(self._inner, "rx_queue_depth", None)
            return depth is not None and depth() > 0
        return False

    def on_writable(self) -> bool:
        """Flush backlog on writability; True once fully drained."""
        try:
            return self.interface.flush_backlog()
        except InterfaceClosed:
            self.connection.event_transport_lost("send")
            self.loop.retire(self)
            return True

    def has_backlog(self) -> bool:
        return getattr(self.interface, "backlog_bytes", 0) > 0

    # -- lifecycle ----------------------------------------------------------

    def attach_ready_callback(self) -> None:
        """Queue kind: route the pair's data-ready signal to our loop."""
        if self.kind == "queue":
            self._inner.set_ready_callback(
                lambda: self.loop.mark_queue_ready(self)
            )

    def detach(self) -> None:
        """Remove this endpoint from its loop (idempotent, blocking)."""
        if self._detached:
            return
        self._detached = True
        if self.kind == "queue":
            try:
                self._inner.set_ready_callback(None)
            except Exception:
                pass
        self.loop.unregister(self)
