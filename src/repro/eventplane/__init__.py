"""Event-driven data plane: one selector loop, thousands of connections.

The paper's data plane is thread-per-connection (a Send/Receive thread
pair each, §4), which tops out at a few hundred connections per node.
This package generalizes the §4.2 bypass variant — engines as inline
procedures — into a selector-based plane: a single loop thread per node
multiplexes every event-mode connection's data interface through
``selectors.DefaultSelector``, with non-blocking adapters that track
explicit partial-write backlogs and short-read buffers.

The split follows the control/data decoupling argument (Wang,
"Decoupling Control From Data for TCP Congestion Control"): only the
*data* path moves onto the loop.  Control links, heartbeats, telemetry,
the recovery Supervisor, and the node timer keep their own threads and
interact with event-mode connections exactly as they do with bypass
ones — under the connection's engine lock, transmitting through the
endpoint's non-blocking submit path.

Select with ``NodeConfig(data_plane="event")`` or ``NCS_DATA_PLANE=event``;
the threaded plane remains the default.
"""

from repro.eventplane.endpoint import EventEndpoint
from repro.eventplane.loop import EventLoop

__all__ = ["EventEndpoint", "EventLoop"]
