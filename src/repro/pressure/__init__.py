"""Node-wide overload protection: budgets, admission, circuit breaking.

The paper's credit scheme (§3.2) bounds what a *sender* may put on the
wire; nothing in the original design bounds what a *node* may buffer.
This package closes that gap:

* :class:`MemoryBudget` accounts bytes across the three buffering sites
  of the runtime (per-connection send channel, reassembler, delivery
  queue) against a node ceiling and a per-connection ceiling;
* ``NCS_send`` consults the budget through an admission gate whose
  policy — ``block``, ``fail-fast``, or ``shed-oldest`` — is chosen per
  connection (see :class:`PressureConfig` and
  :attr:`repro.core.config.ConnectionConfig.admission`);
* :class:`CircuitBreaker` keeps the recovery layer's reconnect loop
  from turning a dead peer under load into a dial storm.

Control-plane PDUs (credits, ACKs, heartbeats, recovery signaling)
travel the control links and are *never* accounted, gated, or shed —
the priority lane that lets the protocol drain itself out of overload.
"""

from repro.pressure.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.pressure.budget import (
    ADMISSION_POLICIES,
    SITES,
    MemoryBudget,
    PressureConfig,
    pressure_from_env,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "MemoryBudget",
    "PressureConfig",
    "SITES",
    "pressure_from_env",
]
