"""Circuit breaker for the recovery layer's reconnect loop.

A dead peer under load turns every supervised send into a dial attempt;
without a breaker the node burns CPU and file descriptors redialing a
host that is not coming back this millisecond.  The breaker converts
that storm into a bounded probe schedule:

* **CLOSED** — dials flow freely; failures within a sliding window are
  counted.
* **OPEN** — after ``failure_threshold`` failures inside ``window``
  seconds, dials are rejected until the probe deadline.  Each
  consecutive OPEN doubles the hold time (capped at ``open_max``) with
  seeded jitter so restarting fleets don't probe in lockstep.
* **HALF_OPEN** — the probe deadline passed; exactly the dials the
  caller makes next are allowed through.  A success snaps back to
  CLOSED and resets history; a failure re-opens with a longer hold.

All methods take ``now`` explicitly so the recovery layer's injected
clock (live or simnet virtual time) drives the state machine and tests
stay deterministic.
"""

import random
from collections import deque
from typing import Deque, Dict, Optional

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window failure breaker with exponential OPEN holds.

    ``failure_threshold=0`` disables the breaker: ``allow`` always
    returns True and every other method is a cheap no-op.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        window: float = 2.0,
        open_base: float = 0.5,
        open_max: float = 4.0,
        jitter: float = 0.2,
        seed: int = 0,
    ) -> None:
        if failure_threshold < 0:
            raise ValueError("failure_threshold must be >= 0")
        if window <= 0 or open_base <= 0 or open_max <= 0:
            raise ValueError("window and open durations must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.failure_threshold = failure_threshold
        self.window = window
        self.open_base = open_base
        self.open_max = open_max
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._state = BREAKER_CLOSED
        self._failures: Deque[float] = deque()
        self._probe_at: Optional[float] = None
        self._consecutive_opens = 0
        self.trips = 0
        self.rejected = 0
        self.probes = 0

    @property
    def state(self) -> str:
        return self._state

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        while self._failures and self._failures[0] <= horizon:
            self._failures.popleft()

    def _open(self, now: float) -> None:
        self._consecutive_opens += 1
        hold = min(
            self.open_base * (2.0 ** (self._consecutive_opens - 1)),
            self.open_max,
        )
        if self.jitter:
            hold *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        self._state = BREAKER_OPEN
        self._probe_at = now + hold
        self._failures.clear()
        self.trips += 1

    def allow(self, now: float) -> bool:
        """May the caller attempt a dial right now?"""
        if self.failure_threshold == 0:
            return True
        if self._state == BREAKER_OPEN:
            if self._probe_at is not None and now >= self._probe_at:
                self._state = BREAKER_HALF_OPEN
                self.probes += 1
                return True
            self.rejected += 1
            return False
        return True

    def record_failure(self, now: float) -> None:
        if self.failure_threshold == 0:
            return
        if self._state == BREAKER_HALF_OPEN:
            # The probe failed: re-open with a longer hold.
            self._open(now)
            return
        if self._state == BREAKER_OPEN:
            return
        self._failures.append(now)
        self._prune(now)
        if len(self._failures) >= self.failure_threshold:
            self._open(now)

    def record_success(self, now: float) -> None:
        if self.failure_threshold == 0:
            return
        self._state = BREAKER_CLOSED
        self._failures.clear()
        self._probe_at = None
        self._consecutive_opens = 0

    def probe_eta(self, now: float) -> float:
        """Seconds until the next probe is allowed (0 when not OPEN)."""
        if self._state != BREAKER_OPEN or self._probe_at is None:
            return 0.0
        return max(0.0, self._probe_at - now)

    def status(self) -> Dict[str, object]:
        return {
            "state": self._state,
            "failure_threshold": self.failure_threshold,
            "window": self.window,
            "recent_failures": len(self._failures),
            "consecutive_opens": self._consecutive_opens,
            "trips": self.trips,
            "rejected": self.rejected,
            "probes": self.probes,
        }
