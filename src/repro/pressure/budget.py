"""Byte budgets for the three buffering sites of an NCS node.

Every byte of application payload that sits inside the runtime lives at
one of three sites:

``send``
    queued in a connection's send channel, admitted by ``NCS_send`` but
    not yet completed (acked, or transmitted for unreliable modes);
``reassembly``
    fragment and reorder state held by the receive-side error control
    until a message is complete and in order;
``delivery``
    complete messages parked in the delivery queue waiting for the
    application to call ``NCS_recv``.

:class:`MemoryBudget` charges each site against two ceilings — a
node-wide one and a per-connection one — under a single condition
variable so blocked senders wake as soon as any release frees room.
Control-plane PDUs are never charged: they are the priority lane.

Accounting rules:

* ``try_reserve`` / ``reserve_blocking`` are the *admission* edge, used
  by the send path.  A reservation larger than a ceiling is still
  admitted when the relevant usage is zero ("oversize exemption") so a
  single message bigger than the ceiling degrades to serialized sends
  instead of deadlocking.
* ``force_reserve`` is the *overdraft* edge, used for inbound data the
  protocol has already acknowledged — refusing it would break the
  exactly-once contract, so it is charged unconditionally and surfaced
  via ``forced_bytes`` / slow-consumer credit withholding instead.
* ``set_level`` is the *sync* edge for reassembly state, whose size is
  computed by the error-control engine rather than tracked per event.
"""

import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

SITES: Tuple[str, ...] = ("send", "reassembly", "delivery")

ADMISSION_POLICIES: Tuple[str, ...] = ("block", "fail-fast", "shed-oldest")

_WAIT_SLICE = 0.05


def _parse_bytes(text: str) -> int:
    """Parse ``"64m"``-style sizes (k/m/g suffixes, case-insensitive)."""
    text = text.strip().lower()
    factor = 1
    if text and text[-1] in "kmg":
        factor = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[text[-1]]
        text = text[:-1]
    value = int(float(text) * factor)
    if value <= 0:
        raise ValueError(f"byte size must be positive, got {value}")
    return value


@dataclass(frozen=True)
class PressureConfig:
    """Knobs for the overload-protection subsystem.

    Defaults are generous on purpose: a node that never approaches
    256 MiB of buffered payload behaves exactly as it did before this
    subsystem existed.
    """

    enabled: bool = True
    #: node-wide ceiling across all sites and connections
    node_bytes: int = 256 * 1024 * 1024
    #: per-connection ceiling across all sites
    conn_bytes: int = 64 * 1024 * 1024
    #: per-connection delivery-queue quota; beyond it the receiver is a
    #: slow consumer and credit grants are withheld
    delivery_quota_bytes: int = 16 * 1024 * 1024
    #: reopen the credit gate once delivery usage falls below
    #: quota * resume_fraction (hysteresis against flapping)
    resume_fraction: float = 0.5
    #: default admission policy for connections that don't override it
    policy: str = "block"

    def __post_init__(self) -> None:
        if self.node_bytes < 1:
            raise ValueError("node_bytes must be >= 1")
        if self.conn_bytes < 1:
            raise ValueError("conn_bytes must be >= 1")
        if self.delivery_quota_bytes < 1:
            raise ValueError("delivery_quota_bytes must be >= 1")
        if not 0.0 <= self.resume_fraction <= 1.0:
            raise ValueError("resume_fraction must be in [0, 1]")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"policy must be one of {ADMISSION_POLICIES}, got {self.policy!r}"
            )


def pressure_from_env() -> PressureConfig:
    """Build a :class:`PressureConfig` from ``NCS_PRESSURE_*`` knobs.

    ``NCS_PRESSURE=off|0|false`` disables accounting entirely;
    ``NCS_PRESSURE_NODE_BYTES`` / ``NCS_PRESSURE_CONN_BYTES`` /
    ``NCS_PRESSURE_DELIVERY_BYTES`` accept k/m/g suffixes;
    ``NCS_PRESSURE_POLICY`` picks the default admission policy.
    """
    kwargs: Dict[str, object] = {}
    master = os.environ.get("NCS_PRESSURE", "").strip().lower()
    if master in ("off", "0", "false", "no"):
        kwargs["enabled"] = False
    node_bytes = os.environ.get("NCS_PRESSURE_NODE_BYTES")
    if node_bytes:
        kwargs["node_bytes"] = _parse_bytes(node_bytes)
    conn_bytes = os.environ.get("NCS_PRESSURE_CONN_BYTES")
    if conn_bytes:
        kwargs["conn_bytes"] = _parse_bytes(conn_bytes)
    delivery = os.environ.get("NCS_PRESSURE_DELIVERY_BYTES")
    if delivery:
        kwargs["delivery_quota_bytes"] = _parse_bytes(delivery)
    policy = os.environ.get("NCS_PRESSURE_POLICY")
    if policy:
        kwargs["policy"] = policy.strip().lower()
    return PressureConfig(**kwargs)  # type: ignore[arg-type]


class MemoryBudget:
    """Thread-safe byte accounting against node + per-connection ceilings."""

    def __init__(self, node_bytes: int, conn_bytes: int) -> None:
        if node_bytes < 1 or conn_bytes < 1:
            raise ValueError("budget ceilings must be >= 1 byte")
        self.node_bytes = node_bytes
        self.conn_bytes = conn_bytes
        self._cond = threading.Condition()
        # site -> total bytes at that site (all connections)
        self._site_used: Dict[str, int] = {site: 0 for site in SITES}
        # conn_id -> site -> bytes
        self._conns: Dict[int, Dict[str, int]] = {}
        self._used = 0
        # telemetry (all guarded by _cond's lock)
        self.peak_used = 0
        self._site_peaks: Dict[str, int] = {site: 0 for site in SITES}
        self.admission_rejections = 0
        self.admission_waits = 0
        self.admission_wait_seconds = 0.0
        self.deliveries_shed = 0
        self.shed_bytes = 0
        self.forced_bytes = 0
        # control PDUs are structurally exempt from shedding; the counter
        # exists so "zero shed control-plane PDUs" is observable, not
        # merely asserted in prose.
        self.shed_control_pdus = 0
        # Telemetry rides the control plane and is never charged to the
        # data-plane sites above; every exempt byte is counted here so
        # "zero telemetry bytes charged" is observable the same way.
        self.telemetry_exempt_bytes = 0
        # Telemetry snapshots dropped (not exported) because the node was
        # under pressure — sheddable is the *inverse* of the control
        # plane's never-shed invariant, and sheds must not vanish
        # silently.
        self.telemetry_sheds = 0

    # -- internal helpers (call with self._cond held) ------------------

    def _conn_slots(self, conn_id: int) -> Dict[str, int]:
        slots = self._conns.get(conn_id)
        if slots is None:
            slots = {site: 0 for site in SITES}
            self._conns[conn_id] = slots
        return slots

    def _conn_total(self, conn_id: int) -> int:
        slots = self._conns.get(conn_id)
        return sum(slots.values()) if slots else 0

    def _fits(self, conn_id: int, nbytes: int) -> bool:
        conn_total = self._conn_total(conn_id)
        if self._used + nbytes <= self.node_bytes:
            if conn_total + nbytes <= self.conn_bytes:
                return True
        # Oversize exemption: a message larger than a ceiling is
        # admitted when the constrained scope is empty, so it can only
        # ever be in flight alone — serialized, not deadlocked.
        if self._used + nbytes > self.node_bytes and self._used != 0:
            return False
        if conn_total + nbytes > self.conn_bytes and conn_total != 0:
            return False
        return True

    def _charge(self, site: str, conn_id: int, nbytes: int) -> None:
        self._site_used[site] += nbytes
        self._conn_slots(conn_id)[site] += nbytes
        self._used += nbytes
        if self._used > self.peak_used:
            self.peak_used = self._used
        if self._site_used[site] > self._site_peaks[site]:
            self._site_peaks[site] = self._site_used[site]

    def _credit(self, site: str, conn_id: int, nbytes: int) -> None:
        slots = self._conns.get(conn_id)
        held = slots[site] if slots else 0
        nbytes = min(nbytes, held)
        if nbytes <= 0:
            return
        self._site_used[site] -= nbytes
        slots[site] -= nbytes  # type: ignore[index]
        self._used -= nbytes
        self._cond.notify_all()

    # -- admission edge -------------------------------------------------

    def try_reserve(self, site: str, conn_id: int, nbytes: int) -> bool:
        """Admit ``nbytes`` at ``site`` if both ceilings allow it."""
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._cond:
            if not self._fits(conn_id, nbytes):
                return False
            self._charge(site, conn_id, nbytes)
            return True

    def reserve_blocking(
        self,
        site: str,
        conn_id: int,
        nbytes: int,
        deadline: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
        clock: Callable[[], float] = None,  # type: ignore[assignment]
    ) -> str:
        """Block until the reservation fits; returns ``"ok"``,
        ``"timeout"``, or ``"aborted"``.

        Waits in short slices so ``should_abort`` (connection closed,
        node stopping) is honored promptly even without a deadline.
        """
        if clock is None:
            import time as _time

            clock = _time.monotonic
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
        waited = False
        start = clock()
        with self._cond:
            while True:
                if self._fits(conn_id, nbytes):
                    self._charge(site, conn_id, nbytes)
                    if waited:
                        self.admission_wait_seconds += clock() - start
                    return "ok"
                if should_abort is not None and should_abort():
                    if waited:
                        self.admission_wait_seconds += clock() - start
                    return "aborted"
                now = clock()
                if deadline is not None and now >= deadline:
                    if waited:
                        self.admission_wait_seconds += clock() - start
                    return "timeout"
                if not waited:
                    waited = True
                    self.admission_waits += 1
                slice_ = _WAIT_SLICE
                if deadline is not None:
                    slice_ = min(slice_, max(0.0, deadline - now))
                self._cond.wait(timeout=slice_)

    def force_reserve(self, site: str, conn_id: int, nbytes: int) -> None:
        """Charge unconditionally (inbound data already acked to the peer)."""
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
        if nbytes <= 0:
            return
        with self._cond:
            over = max(0, (self._used + nbytes) - self.node_bytes)
            if over:
                self.forced_bytes += min(nbytes, over)
            self._charge(site, conn_id, nbytes)

    def release(self, site: str, conn_id: int, nbytes: int) -> None:
        """Return ``nbytes`` at ``site`` to the pool, waking blocked senders."""
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
        if nbytes <= 0:
            return
        with self._cond:
            self._credit(site, conn_id, nbytes)

    def set_level(self, site: str, conn_id: int, nbytes: int) -> None:
        """Sync ``site`` for ``conn_id`` to an absolute level (reassembly)."""
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._cond:
            current = self._conn_slots(conn_id)[site]
            if nbytes > current:
                self._charge(site, conn_id, nbytes - current)
            elif nbytes < current:
                self._credit(site, conn_id, current - nbytes)

    def forget_connection(self, conn_id: int) -> None:
        """Drop all accounting for a closed connection."""
        with self._cond:
            slots = self._conns.pop(conn_id, None)
            if not slots:
                return
            for site, held in slots.items():
                if held:
                    self._site_used[site] -= held
                    self._used -= held
            self._cond.notify_all()

    # -- telemetry edge -------------------------------------------------

    def count_rejection(self) -> None:
        with self._cond:
            self.admission_rejections += 1

    def record_shed(self, nbytes: int) -> None:
        with self._cond:
            self.deliveries_shed += 1
            self.shed_bytes += nbytes

    def count_telemetry_exempt(self, nbytes: int) -> None:
        """Record telemetry traffic that bypassed data-plane accounting."""
        with self._cond:
            self.telemetry_exempt_bytes += nbytes

    def count_telemetry_shed(self) -> None:
        """Record one telemetry snapshot dropped under pressure."""
        with self._cond:
            self.telemetry_sheds += 1

    def occupancy(self) -> float:
        """Node-wide budget occupancy in [0, 1+] (1.0 = at the ceiling)."""
        with self._cond:
            return self._used / self.node_bytes

    def used(self, conn_id: Optional[int] = None) -> int:
        with self._cond:
            if conn_id is None:
                return self._used
            return self._conn_total(conn_id)

    def site_used(self, site: str, conn_id: Optional[int] = None) -> int:
        with self._cond:
            if conn_id is None:
                return self._site_used[site]
            slots = self._conns.get(conn_id)
            return slots[site] if slots else 0

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view for health reports and ``ncs_stat pressure``."""
        with self._cond:
            return {
                "node_bytes": self.node_bytes,
                "conn_bytes": self.conn_bytes,
                "used": self._used,
                "peak_used": self.peak_used,
                "sites": dict(self._site_used),
                "site_peaks": dict(self._site_peaks),
                "connections": {
                    conn_id: dict(slots)
                    for conn_id, slots in self._conns.items()
                    if any(slots.values())
                },
                "admission_rejections": self.admission_rejections,
                "admission_waits": self.admission_waits,
                "admission_wait_seconds": self.admission_wait_seconds,
                "deliveries_shed": self.deliveries_shed,
                "shed_bytes": self.shed_bytes,
                "forced_bytes": self.forced_bytes,
                "shed_control_pdus": self.shed_control_pdus,
                "telemetry_exempt_bytes": self.telemetry_exempt_bytes,
                "telemetry_sheds": self.telemetry_sheds,
            }
