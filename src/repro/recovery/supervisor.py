"""Per-connection recovery supervision.

:class:`Supervisor` owns the dialing end of a supervised session; its
monitor thread watches the live :class:`~repro.core.connection.Connection`
(and, optionally, the heartbeat failure detector) and reacts to an
outage with the full recovery ladder:

1. capture the unacknowledged window from the error-control engine's
   ``pending()`` view, plus anything the application sent while the
   link was down;
2. reconnect with exponential backoff + seeded jitter under a retry
   budget, advancing through the interface **failover ladder** (e.g.
   ACI → SCI) after repeated failures on one path;
3. **replay** the captured messages over the fresh incarnation, tagged
   ``FLAG_REPLAY``; the peer's :class:`DedupFilter` drops duplicates,
   so the application sees each message exactly once;
4. past the budget, **degrade gracefully**: the session enters
   UNAVAILABLE and ``send``/``recv`` raise
   :class:`~repro.core.errors.NCSUnavailable` instead of hanging.

:class:`Responder` is the accepting half: it claims re-dialed
incarnations off the node's accept-router chain (requests whose
``dst_node`` is ``#recover:<session>``), adopts each one, and replays
its own unacknowledged sends.

Both ends record every step under the flight recorder's ``recovery``
category; ``ncs_stat recovery`` renders the counters.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ConnectionConfig
from repro.core.errors import (
    ConnectionClosedError,
    NcsError,
    NCSTimeout,
    NCSUnavailable,
)
from repro.core.handles import SendStatus
from repro.recovery.envelope import (
    FLAG_REPLAY,
    decode_envelope,
    encode_envelope,
)

CONNECTED = "CONNECTED"
RECONNECTING = "RECONNECTING"
UNAVAILABLE = "UNAVAILABLE"
CLOSED = "CLOSED"

#: dst_node prefix by which the Responder claims supervised dials.
RECOVER_PREFIX = "#recover:"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the reconnect loop."""

    #: First backoff delay (seconds); doubles (``backoff_factor``) per
    #: failed attempt up to ``backoff_max``.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: ± fraction of the delay drawn from a seeded RNG, so a fleet of
    #: supervisors does not thunder in lockstep (yet tests replay).
    jitter: float = 0.2
    #: Retry budget per outage; exhaustion ⇒ UNAVAILABLE.
    max_attempts: int = 8
    #: Consecutive failures on one interface before advancing the ladder.
    failover_after: int = 3
    #: Interface preference order; None = native interface, then "sci"
    #: (the TCP path — the most conservative fallback).
    ladder: Optional[Sequence[str]] = None
    #: Deadline for each connection-establishment attempt.
    connect_timeout: float = 2.0
    seed: int = 0
    #: Circuit breaker: this many dial failures inside ``breaker_window``
    #: seconds OPEN the breaker (0 disables it).  While OPEN, dials are
    #: withheld until a half-open probe is due; the probe's outcome
    #: either closes the breaker or re-opens it with a doubled hold
    #: (capped at ``breaker_open_max``, jittered from ``seed``).
    breaker_failures: int = 5
    breaker_window: float = 2.0
    breaker_open_secs: float = 0.5
    breaker_open_max: float = 4.0

    def ladder_for(self, interface: str) -> Tuple[str, ...]:
        if self.ladder is not None:
            return tuple(self.ladder)
        if interface == "sci":
            return ("sci",)
        return (interface, "sci")


class DedupFilter:
    """Exactly-once admission of session msg_ids.

    Contiguous-high-watermark + sparse-set: O(1) memory under ordered
    arrival, correct under the bounded reordering a replay can cause.
    """

    def __init__(self):
        self._high = 0
        self._seen = set()
        self.accepted = 0
        self.rejected = 0

    def accept(self, msg_id: int) -> bool:
        if msg_id <= self._high or msg_id in self._seen:
            self.rejected += 1
            return False
        self._seen.add(msg_id)
        while self._high + 1 in self._seen:
            self._high += 1
            self._seen.discard(self._high)
        self.accepted += 1
        return True


@dataclass
class _LedgerEntry:
    """One message the session still owes the peer."""

    msg_id: int
    payload: bytes
    #: SendHandle on the current incarnation (None while the link is
    #: down — the entry is then awaiting replay).
    handle: object = None
    replays: int = 0


class _SupervisedEndpoint:
    """Machinery shared by the dialing and accepting ends."""

    def __init__(self, node, session: str):
        self.node = node
        self.session = session
        self._recorder = node.recorder
        self._conn = None
        self._state = RECONNECTING
        self._state_lock = threading.RLock()
        self._next_id = 0
        self._ledger: Dict[int, _LedgerEntry] = {}
        self._ledger_lock = threading.Lock()
        self._dedup = DedupFilter()
        self._delivery = node.pkg.channel()
        self._wake = threading.Event()
        self._running = True
        self._unavailable_reason = ""
        # Counters (status()).
        self.incarnations = 0
        self.outages = 0
        self.reconnect_attempts = 0
        self.replayed_messages = 0
        self.replayed_from_window = 0
        self.failovers = 0
        self.last_downtime = 0.0

    # -- public API ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    @property
    def connection(self):
        """The current incarnation (None while down)."""
        with self._state_lock:
            return self._conn

    def send(self, payload: bytes) -> int:
        """Queue ``payload`` for exactly-once delivery; returns its
        session msg_id.

        While the link is down the message is ledgered and replayed
        after reconnect; only a CLOSED session or an exhausted recovery
        budget raises.
        """
        self._check_usable()
        with self._ledger_lock:
            self._next_id += 1
            msg_id = self._next_id
            entry = _LedgerEntry(msg_id, payload)
            self._ledger[msg_id] = entry
        with self._state_lock:
            conn, state = self._conn, self._state
        if state == CONNECTED and conn is not None:
            self._transmit(conn, entry, flags=0)
        return msg_id

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Next message from the peer, or None on timeout."""
        try:
            return self._delivery.get(timeout=timeout)
        except TimeoutError:
            self._check_usable()
            return None

    def flush(self, timeout: float = 10.0) -> None:
        """Block until every ledgered message is confirmed delivered."""
        deadline = self.node.clock.now() + timeout
        while True:
            self._check_usable()
            with self._ledger_lock:
                outstanding = len(self._ledger)
            if outstanding == 0:
                return
            if self.node.clock.now() >= deadline:
                raise NCSTimeout(
                    f"session {self.session}: {outstanding} messages "
                    f"unconfirmed after {timeout}s"
                )
            self._wake.set()  # nudge the monitor's ledger sweep
            self.node.pkg.sleep(0.02)

    def status(self) -> dict:
        with self._state_lock:
            state = self._state
            conn = self._conn
        with self._ledger_lock:
            outstanding = len(self._ledger)
        return {
            "session": self.session,
            "state": state,
            "interface": conn.config.interface if conn is not None else None,
            "incarnations": self.incarnations,
            "outages": self.outages,
            "reconnect_attempts": self.reconnect_attempts,
            "replayed_messages": self.replayed_messages,
            "replayed_from_window": self.replayed_from_window,
            "failovers": self.failovers,
            "outstanding": outstanding,
            "dedup_accepted": self._dedup.accepted,
            "dedup_rejected": self._dedup.rejected,
            "last_downtime": round(self.last_downtime, 4),
            "unavailable_reason": self._unavailable_reason,
        }

    def close(self) -> None:
        with self._state_lock:
            if self._state == CLOSED:
                return
            self._state = CLOSED
            conn = self._conn
            self._conn = None
        self._running = False
        self._wake.set()
        if conn is not None:
            conn.close()

    # -- internals -----------------------------------------------------

    def _check_usable(self) -> None:
        with self._state_lock:
            state = self._state
        if state == CLOSED:
            raise ConnectionClosedError(f"session {self.session} is closed")
        if state == UNAVAILABLE:
            raise NCSUnavailable(
                self._peer_label(), self.reconnect_attempts,
                self._unavailable_reason,
            )

    def _peer_label(self) -> str:
        return self.session

    def _transmit(self, conn, entry: _LedgerEntry, flags: int) -> None:
        env = encode_envelope(entry.msg_id, entry.payload, flags)
        try:
            entry.handle = conn.send(env)
        except Exception:
            # Any send failure here means the incarnation just died under
            # us; the entry stays ledgered and the monitor reconnects and
            # replays it.
            entry.handle = None
            self._wake.set()

    def _adopt(self, conn) -> None:
        """Install a fresh incarnation: pump it, replay the ledger."""
        with self._state_lock:
            self._conn = conn
            self.incarnations += 1
        self.node.pkg.spawn(
            self._pump, conn, name=f"{self.session}-pump{self.incarnations}"
        )
        self._replay(conn)
        with self._state_lock:
            if self._state != CLOSED:
                self._state = CONNECTED
        # A send() that ledgered after the replay snapshot but read the
        # state before the flip above skipped its own transmission; one
        # more pass picks up those stragglers (entries ledgered after
        # the flip transmit themselves, so the window is closed).
        self._replay(conn)

    def _replay(self, conn) -> None:
        with self._ledger_lock:
            entries = [
                self._ledger[k] for k in sorted(self._ledger)
                if self._ledger[k].handle is None
            ]
        for entry in entries:
            entry.replays += 1
            self.replayed_messages += 1
            self._transmit(conn, entry, flags=FLAG_REPLAY)
        if entries:
            self._recorder.record(
                "recovery", "replay",
                session=self.session, messages=len(entries),
                incarnation=self.incarnations,
            )

    def _capture_window(self, conn) -> None:
        """Detach in-flight messages from a dying incarnation.

        The EC engine's ``pending()`` view *is* the replay buffer: any
        ledger entry whose envelope id appears there (or whose handle
        never resolved) is marked for replay by clearing its handle.
        """
        window_ids = set()
        if conn is not None:
            try:
                for _ec_id, frame in conn.pending_sends():
                    decoded = decode_envelope(frame)
                    if decoded is not None:
                        window_ids.add(decoded[0])
            except Exception:  # engine state may be torn down already
                pass
        with self._ledger_lock:
            for entry in self._ledger.values():
                if entry.msg_id in window_ids:
                    self.replayed_from_window += 1
                if entry.handle is None or not (
                    entry.handle.done()
                    and entry.handle.status is SendStatus.COMPLETED
                ):
                    entry.handle = None  # schedule for replay

    def _sweep_ledger(self) -> None:
        """Retire confirmed entries; a FAILED handle signals an outage."""
        failed = False
        with self._ledger_lock:
            for msg_id in list(self._ledger):
                handle = self._ledger[msg_id].handle
                if handle is None or not handle.done():
                    continue
                if handle.status is SendStatus.COMPLETED:
                    del self._ledger[msg_id]
                else:
                    self._ledger[msg_id].handle = None
                    failed = True
        if failed:
            # Retransmission budget exhausted without transport closure
            # (persistent loss): treat it as an outage.
            self._force_outage("send retries exhausted")

    def _force_outage(self, reason: str) -> None:
        self._wake.set()

    def _deliver_frame(self, data: bytes) -> None:
        """De-envelope, dedup, deliver one inbound frame."""
        decoded = decode_envelope(data)
        if decoded is None:
            self._delivery.put(data)  # un-enveloped passthrough
            return
        msg_id, flags, payload = decoded
        if self._dedup.accept(msg_id):
            self._delivery.put(payload)
        else:
            self._recorder.record(
                "recovery", "dedup_drop",
                session=self.session, msg=msg_id,
                replay=bool(flags & FLAG_REPLAY),
            )

    def _drain(self, conn) -> None:
        """Deliver messages still queued on a dying incarnation.

        A message the EC engine has acknowledged is *delivered* as far
        as the peer is concerned — it will never be replayed — so the
        reassembled copies parked in the connection's receive queue must
        reach the application before the incarnation is discarded.
        """
        while True:
            try:
                data = conn.try_recv()
            except NcsError:
                break
            if data is None:
                break
            self._deliver_frame(data)
        # Acked messages parked in the receiver's reorder buffer (held
        # for in-order delivery behind a gap) die with the engine unless
        # surrendered here — the sender saw the ACK and won't replay.
        try:
            for data in conn.held_deliveries():
                self._deliver_frame(data)
        except Exception:  # engine state may be torn down already
            pass

    def _retire(self, conn) -> None:
        """Tear down a dying incarnation without losing anything: drain
        its receive queue, capture its unacknowledged send window, then
        close it quietly."""
        self._drain(conn)
        self._capture_window(conn)
        conn.close(notify_peer=False)

    def _pump(self, conn) -> None:
        """Per-incarnation receive loop: de-envelope, dedup, deliver."""
        while self._running and conn is self.connection and not conn.closed:
            try:
                data = conn.recv(timeout=0.1)
            except ConnectionClosedError:
                break
            if data is None:
                continue
            self._deliver_frame(data)
        self._wake.set()  # incarnation over; monitor decides what's next


class Supervisor(_SupervisedEndpoint):
    """The dialing end of a supervised session.

    Establishes the initial connection in the constructor (raising
    :class:`~repro.core.errors.NCSUnavailable` if even the initial
    budget fails) and keeps it alive until :meth:`close`.
    """

    def __init__(
        self,
        node,
        peer: Tuple[str, int],
        config: Optional[ConnectionConfig] = None,
        session: str = "session",
        policy: Optional[RecoveryPolicy] = None,
        detector=None,
    ):
        super().__init__(node, session)
        self.peer = peer
        self.config = config or ConnectionConfig()
        self.policy = policy or RecoveryPolicy()
        self._ladder = self.policy.ladder_for(self.config.interface)
        self._ladder_index = 0
        self._rng = random.Random(self.policy.seed)
        self._outage_flag = threading.Event()
        # Reconnect circuit breaker: a dead peer under load must produce
        # a bounded probe schedule, not a dial storm.
        from repro.pressure import CircuitBreaker

        self.breaker = CircuitBreaker(
            failure_threshold=self.policy.breaker_failures,
            window=self.policy.breaker_window,
            open_base=self.policy.breaker_open_secs,
            open_max=self.policy.breaker_open_max,
            jitter=self.policy.jitter,
            seed=self.policy.seed,
        )
        if detector is not None:
            detector.add_listener(on_failure=self._on_peer_suspected)
            detector.monitor(peer)
        # Initial connect runs the same machinery as recovery, so a peer
        # that is slow to start gets the same backoff + budget.
        self._reconnect(initial=True)
        self._monitor_handle = node.pkg.spawn(
            self._monitor, name=f"{session}-supervisor"
        )

    def _peer_label(self) -> str:
        return f"{self.peer[0]}:{self.peer[1]}"

    def _on_peer_suspected(self, address) -> None:
        if tuple(address) == tuple(self.peer):
            self._outage_flag.set()
            self._wake.set()

    def _force_outage(self, reason: str) -> None:
        self._outage_flag.set()
        self._wake.set()

    # -- monitor -------------------------------------------------------

    def _monitor(self) -> None:
        while self._running:
            self._wake.wait(timeout=0.05)
            self._wake.clear()
            if not self._running:
                return
            with self._state_lock:
                conn, state = self._conn, self._state
            if state == CONNECTED:
                dead = conn is None or conn.closed or conn.peer_gone
                if dead or self._outage_flag.is_set():
                    self._outage_flag.clear()
                    self._reconnect(initial=False)
                else:
                    self._sweep_ledger()

    def _reconnect(self, initial: bool) -> None:
        started = self.node.clock.now()
        with self._state_lock:
            if self._state == CLOSED:
                return
            self._state = RECONNECTING
            old, self._conn = self._conn, None
        if not initial:
            self.outages += 1
            self._recorder.record(
                "recovery", "outage",
                session=self.session, peer=self._peer_label(),
                incarnation=self.incarnations,
            )
        if old is not None:
            self._retire(old)

        consecutive = 0
        for attempt in range(1, self.policy.max_attempts + 1):
            if not self._running:
                return
            self._await_breaker()
            if not self._running:
                return
            interface = self._ladder[self._ladder_index]
            self.reconnect_attempts += 1
            self._recorder.record(
                "recovery", "reconnect_attempt",
                session=self.session, attempt=attempt, interface=interface,
            )
            try:
                conn = self.node.connect(
                    self.peer,
                    config=self._config_for(interface),
                    timeout=self.policy.connect_timeout,
                    peer_name=RECOVER_PREFIX + self.session,
                )
            except (NcsError, OSError) as exc:
                was_open = self.breaker.state
                self.breaker.record_failure(self.node.clock.now())
                if self.breaker.state == "open" and was_open != "open":
                    self._recorder.record(
                        "recovery", "breaker_open",
                        session=self.session, peer=self._peer_label(),
                        trips=self.breaker.trips,
                    )
                consecutive += 1
                if (
                    consecutive >= self.policy.failover_after
                    and self._ladder_index < len(self._ladder) - 1
                ):
                    self._ladder_index += 1
                    consecutive = 0
                    self.failovers += 1
                    self._recorder.record(
                        "recovery", "failover",
                        session=self.session,
                        interface=self._ladder[self._ladder_index],
                    )
                if attempt < self.policy.max_attempts:
                    self._backoff_sleep(attempt)
                last_error = exc
                continue
            self._adopt(conn)
            self.breaker.record_success(self.node.clock.now())
            self.last_downtime = self.node.clock.now() - started
            self._recorder.record(
                "recovery", "reconnected",
                session=self.session, attempts=attempt,
                interface=interface,
                downtime=round(self.last_downtime, 4),
            )
            return

        self._unavailable_reason = f"last error: {last_error}"
        with self._state_lock:
            if self._state != CLOSED:
                self._state = UNAVAILABLE
        self._recorder.record(
            "recovery", "unavailable",
            session=self.session, peer=self._peer_label(),
            attempts=self.reconnect_attempts,
        )
        self._recorder.auto_dump(
            f"session {self.session} unavailable: "
            f"budget of {self.policy.max_attempts} attempts exhausted"
        )
        if initial:
            raise NCSUnavailable(
                self._peer_label(), self.policy.max_attempts,
                self._unavailable_reason,
            )

    def _await_breaker(self) -> None:
        """Hold the reconnect loop while the breaker is OPEN.

        The half-open probe *is* the next dial attempt: allow() flips
        OPEN → HALF_OPEN when the hold expires, and the attempt's
        outcome closes or re-opens the breaker.
        """
        waited = False
        while self._running and not self.breaker.allow(self.node.clock.now()):
            if not waited:
                waited = True
                self._recorder.record(
                    "recovery", "breaker_wait",
                    session=self.session,
                    eta=round(
                        self.breaker.probe_eta(self.node.clock.now()), 4
                    ),
                )
            self.node.pkg.sleep(0.01)
        if waited and self.breaker.state == "half-open":
            self._recorder.record(
                "recovery", "breaker_probe",
                session=self.session, probes=self.breaker.probes,
            )

    def status(self) -> dict:
        status = super().status()
        status["breaker"] = self.breaker.status()
        return status

    def _config_for(self, interface: str) -> ConnectionConfig:
        if interface == self.config.interface:
            return self.config
        return self.config.with_overrides(interface=interface)

    def _backoff_sleep(self, attempt: int) -> None:
        delay = min(
            self.policy.backoff_base * self.policy.backoff_factor ** (attempt - 1),
            self.policy.backoff_max,
        )
        if self.policy.jitter:
            delay *= 1.0 + self.policy.jitter * self._rng.uniform(-1.0, 1.0)
        deadline = self.node.clock.now() + max(0.0, delay)
        while self._running and self.node.clock.now() < deadline:
            self.node.pkg.sleep(0.01)


class Responder(_SupervisedEndpoint):
    """The accepting end: claims and adopts supervised incarnations.

    Registers on the node's accept-router chain for connect requests
    whose ``dst_node`` is ``#recover:<session>``.  It never dials — a
    down link is repaired by the remote Supervisor re-dialing — but it
    does replay its own unacknowledged sends over each new incarnation.
    """

    def __init__(self, node, session: str = "session"):
        super().__init__(node, session)
        self._adoption = node.pkg.channel()
        self._router = self._route_accepted
        node.add_accept_router(self._router)
        self._monitor_handle = node.pkg.spawn(
            self._monitor, name=f"{session}-responder"
        )

    def _route_accepted(self, request, connection) -> bool:
        if request.dst_node != RECOVER_PREFIX + self.session:
            return False
        # Claim fast (this runs on the Master Thread); the monitor does
        # the adoption work.
        self._adoption.put(connection)
        self._wake.set()
        return True

    def _monitor(self) -> None:
        while self._running:
            try:
                incoming = self._adoption.get(timeout=0.05)
            except TimeoutError:
                incoming = None
            if not self._running:
                return
            if incoming is not None:
                self._adopt_incarnation(incoming)
                continue
            with self._state_lock:
                conn, state = self._conn, self._state
            if state == CONNECTED:
                if conn is None or conn.closed or conn.peer_gone:
                    self._note_outage(conn)
                else:
                    self._sweep_ledger()

    def _adopt_incarnation(self, conn) -> None:
        with self._state_lock:
            old = self._conn
        if old is not None and old is not conn:
            self._retire(old)
        self._recorder.record(
            "recovery", "adopted",
            session=self.session, conn=conn.conn_id,
            incarnation=self.incarnations + 1,
        )
        self._adopt(conn)

    def _note_outage(self, conn) -> None:
        self.outages += 1
        self._recorder.record(
            "recovery", "outage",
            session=self.session, incarnation=self.incarnations,
        )
        with self._state_lock:
            self._conn = None
            if self._state != CLOSED:
                self._state = RECONNECTING
        if conn is not None:
            self._retire(conn)

    def close(self) -> None:
        self.node.remove_accept_router(self._router)
        super().close()
