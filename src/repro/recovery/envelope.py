"""Session envelope: the tiny header that makes replay idempotent.

A connection's error-control msg_ids restart at 1 for every incarnation,
so they cannot identify a message *across* a reconnect.  The recovery
layer therefore prefixes each payload with a session-scoped header —
magic, flags, and a monotonically increasing 64-bit message id owned by
the supervisor, not the connection.  Replayed messages keep their id, so
the receiving end's :class:`~repro.recovery.supervisor.DedupFilter`
drops the copies and the application sees each message exactly once.

Because the envelope travels *inside* the ordinary payload, the EC
engines segment/reassemble it like any other message — which is exactly
what lets ``pending()`` frames be replayed verbatim: the id rides along.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

#: 4-byte magic; the leading 0xAB makes an accidental match with ASCII
#: application payloads unlikely.
ENVELOPE_MAGIC = b"\xabNSE"
#: Set on messages retransmitted over a fresh incarnation.
FLAG_REPLAY = 0x01

_HEADER_FMT = "!4sBQ"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


def encode_envelope(msg_id: int, payload: bytes, flags: int = 0) -> bytes:
    """Wrap ``payload`` with the session header."""
    return struct.pack(_HEADER_FMT, ENVELOPE_MAGIC, flags, msg_id) + payload


def decode_envelope(data: bytes) -> Optional[Tuple[int, int, bytes]]:
    """``(msg_id, flags, payload)``, or None if ``data`` is not enveloped.

    None (rather than an exception) because a supervised endpoint may
    coexist with plain senders on the same node; un-enveloped messages
    pass through the recovery layer untouched.
    """
    if len(data) < _HEADER_SIZE or not data.startswith(ENVELOPE_MAGIC):
        return None
    _magic, flags, msg_id = struct.unpack_from(_HEADER_FMT, data)
    return msg_id, flags, data[_HEADER_SIZE:]
