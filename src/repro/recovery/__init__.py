"""Automatic connection recovery: reconnect, replay, failover, degrade.

PR 2 gave the runtime *detection* — heartbeat suspicion, health
classification, the flight recorder.  This package adds the *reaction*:

* :class:`~repro.recovery.supervisor.Supervisor` wraps the dialing end
  of a connection.  Driven by transport loss and heartbeat signals, it
  reconnects with exponential backoff + seeded jitter under a retry
  budget, walks an interface **failover ladder** (e.g. ACI → SCI) when
  the native path keeps failing, and **replays** every unacknowledged
  message — sourced from the error-control engine's ``pending()``
  window view — over the fresh incarnation.
* :class:`~repro.recovery.supervisor.Responder` is the accepting end:
  it claims re-dialed incarnations off the node's accept-router chain,
  adopts them, and replays its own unacknowledged side of the
  conversation.
* Replay is made idempotent by a tiny session envelope
  (:mod:`repro.recovery.envelope`) carrying a per-session message id;
  the receiving end deduplicates, so the application sees each message
  exactly once across any number of reconnects.
* When the budget is exhausted the supervisor **degrades gracefully**:
  ``send``/``recv`` raise the typed
  :class:`~repro.core.errors.NCSUnavailable` instead of hanging.

Every recovery step is recorded under the flight recorder's
``recovery`` category; ``ncs_stat recovery`` renders the counters.
"""

from repro.recovery.envelope import (
    ENVELOPE_MAGIC,
    FLAG_REPLAY,
    decode_envelope,
    encode_envelope,
)
from repro.recovery.supervisor import (
    CONNECTED,
    RECONNECTING,
    UNAVAILABLE,
    CLOSED,
    DedupFilter,
    RecoveryPolicy,
    Responder,
    Supervisor,
)

__all__ = [
    "CLOSED",
    "CONNECTED",
    "DedupFilter",
    "ENVELOPE_MAGIC",
    "FLAG_REPLAY",
    "RECONNECTING",
    "RecoveryPolicy",
    "Responder",
    "Supervisor",
    "UNAVAILABLE",
    "decode_envelope",
    "encode_envelope",
]
