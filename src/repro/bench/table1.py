"""Table I: cost decomposition of a 1-byte ``NCS_send`` via the Send Thread.

The paper instruments the transmit path on QuickThreads and reports
(in microseconds): NCS_send entry/exit 10, header attach 4, queueing a
request 15, context switch into the Send Thread 27, dequeueing 17,
freeing the request buffer 10, context switch back 25 — 108 µs of
*session overhead* (28 %) against 274 µs of data transfer (72 %).

Here the live runtime's instrumented send path produces the same
decomposition from real timestamps.  Stage mapping:

    entry→queued        = NCS_send function work + header/queue cost
    queued→dequeued     = context switch into the protocol thread
    dequeued→segmented  = header attach (segmentation)
    segmented→flow      = flow-control release (queueing to Send Thread)
    flow→send_dequeued  = context switch into the Send Thread
    send_dequeued→transmitted = data transfer (interface send)
    transmitted→exit    = return path back to the caller

Absolute numbers are a 2020s CPython process, not a 1996 SPARC — what
reproduces is the *structure*: a constant session overhead that
dominates 1-byte sends and washes out for large messages (Figure 11).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from repro.bench.runner import format_table
from repro.core import ConnectionConfig, Node, NodeConfig

#: The paper's published microsecond figures, for side-by-side output.
PAPER_TABLE1_US = {
    "NCS_send entry/exit": 10,
    "Attaching a message header": 4,
    "Queuing a message request": 15,
    "Context switch to Send Thread": 27,
    "Dequeuing a message request": 17,
    "Free a message request buffer": 10,
    "Context switch back": 25,
    "Session overhead total": 108,
    "Data transfer (1-byte send)": 274,
    "Total": 383,
}

#: Ordered stage boundaries recorded by the instrumented send path.
_STAGES = [
    ("queue a message request", "entry", "queued"),
    ("context switch to protocol thread", "queued", "dequeued"),
    ("attach headers (segmentation)", "dequeued", "segmented"),
    ("flow-control release", "segmented", "flow_released"),
    ("context switch to Send Thread", "flow_released", "send_thread_dequeued"),
    ("data transfer (interface send)", "send_thread_dequeued", "transmitted"),
]


def run(
    iterations: int = 200,
    thread_package: str = "kernel",
    interface: str = "sci",
) -> Dict[str, float]:
    """Measure the per-stage costs of a 1-byte threaded send.

    Returns median microseconds per stage plus session/data totals.
    SCI (BSD sockets) is the default interface, matching the paper's
    measurement; pass ``interface="hpi"`` to isolate pure threading
    costs with a near-free data transfer.
    """
    node_a = Node(NodeConfig(name="t1-a", thread_package=thread_package))
    node_b = Node(NodeConfig(name="t1-b", thread_package=thread_package))
    try:
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(interface=interface, flow_control="none",
                             error_control="none"),
            peer_name="t1-b",
        )
        peer = node_b.accept(timeout=5.0)
        samples: List[Dict[str, int]] = []
        for _ in range(iterations):
            stamps: Dict[str, int] = {}
            conn.send(b"x", instrument=stamps)
            # Wait for the transmit to finish so every stamp exists.
            deadline_ok = peer.recv(timeout=5.0)
            if deadline_ok is not None and "transmitted" in stamps:
                samples.append(stamps)
        results: Dict[str, float] = {}
        for label, start, end in _STAGES:
            deltas = [
                (s[end] - s[start]) / 1000.0
                for s in samples
                if start in s and end in s and s[end] >= s[start]
            ]
            results[label] = statistics.median(deltas) if deltas else 0.0
        entry_to_exit = [
            (s["exit"] - s["entry"]) / 1000.0 for s in samples if "exit" in s
        ]
        results["NCS_send entry/exit (caller visible)"] = (
            statistics.median(entry_to_exit) if entry_to_exit else 0.0
        )
        data = results["data transfer (interface send)"]
        session = sum(
            results[label] for label, _s, _e in _STAGES[:-1]
        )
        results["session overhead total"] = session
        results["data transfer total"] = data
        results["total"] = session + data
        results["session fraction"] = (
            session / (session + data) if (session + data) > 0 else 0.0
        )
        return results
    finally:
        node_a.close()
        node_b.close()


def format_results(results: Dict[str, float]) -> str:
    rows = []
    for label, _s, _e in _STAGES:
        rows.append((label, results[label]))
    rows.append(("session overhead total", results["session overhead total"]))
    rows.append(("data transfer total", results["data transfer total"]))
    rows.append(("total", results["total"]))
    rows.append(("session fraction", results["session fraction"]))
    table = format_table(
        "Table I reproduction: 1-byte NCS_send cost decomposition (us, median)",
        ("stage", "measured"),
        rows,
        col_width=14,
    )
    paper = format_table(
        "Paper's Table I (QuickThreads, us)",
        ("activity", "us"),
        list(PAPER_TABLE1_US.items()),
        col_width=10,
    )
    return table + "\n\n" + paper


def main() -> None:
    print(format_results(run()))


if __name__ == "__main__":
    main()
