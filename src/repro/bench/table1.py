"""Table I: cost decomposition of a 1-byte ``NCS_send`` via the Send Thread.

The paper instruments the transmit path on QuickThreads and reports
(in microseconds): NCS_send entry/exit 10, header attach 4, queueing a
request 15, context switch into the Send Thread 27, dequeueing 17,
freeing the request buffer 10, context switch back 25 — 108 µs of
*session overhead* (28 %) against 274 µs of data transfer (72 %).

Here the live runtime's instrumented send path produces the same
decomposition from real timestamps.  Stage mapping:

    entry→queued        = NCS_send function work + header/queue cost
    queued→dequeued     = context switch into the protocol thread
    dequeued→segmented  = header attach (segmentation)
    segmented→flow      = flow-control release (queueing to Send Thread)
    flow→send_dequeued  = context switch into the Send Thread
    send_dequeued→transmitted = data transfer (interface send)
    transmitted→exit    = return path back to the caller

Absolute numbers are a 2020s CPython process, not a 1996 SPARC — what
reproduces is the *structure*: a constant session overhead that
dominates 1-byte sends and washes out for large messages (Figure 11).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

from repro.bench.runner import (
    dump_metrics_if_requested,
    format_table,
    persist_run,
)
from repro.core import ConnectionConfig, Node, NodeConfig
from repro.obs.profiler import SEND_STAGES, OverheadProfiler

#: The paper's published microsecond figures, for side-by-side output.
PAPER_TABLE1_US = {
    "NCS_send entry/exit": 10,
    "Attaching a message header": 4,
    "Queuing a message request": 15,
    "Context switch to Send Thread": 27,
    "Dequeuing a message request": 17,
    "Free a message request buffer": 10,
    "Context switch back": 25,
    "Session overhead total": 108,
    "Data transfer (1-byte send)": 274,
    "Total": 383,
}

#: Ordered stage boundaries recorded by the instrumented send path
#: (shared with the generalized profiler in :mod:`repro.obs.profiler`).
_STAGES = SEND_STAGES


def run_profiled(
    iterations: int = 200,
    thread_package: str = "kernel",
    interface: str = "sci",
    mode: str = "threaded",
) -> Tuple[Dict[str, float], OverheadProfiler]:
    """Measure the per-stage costs of a 1-byte send.

    Returns ``(results, profiler)``: median microseconds per stage plus
    session/data totals, and the filled :class:`OverheadProfiler` (with
    receive-side stages recorded at the consuming node) for consistency
    checks and the recv breakdown.  SCI (BSD sockets) is the default
    interface, matching the paper's measurement; pass
    ``interface="hpi"`` to isolate pure threading costs with a near-free
    data transfer, or ``mode="bypass"`` for the §4.2 procedure variant.
    """
    profiler = OverheadProfiler(mode=mode)
    node_a = Node(NodeConfig(name="t1-a", thread_package=thread_package))
    node_b = Node(NodeConfig(name="t1-b", thread_package=thread_package))
    try:
        node_b.accept_mode = mode
        conn = node_a.connect(
            node_b.address,
            ConnectionConfig(interface=interface, flow_control="none",
                             error_control="none", mode=mode),
            peer_name="t1-b",
        )
        peer = node_b.accept(timeout=5.0)
        peer.profiler = profiler
        entry_to_exit: List[float] = []
        for _ in range(iterations):
            stamps: Dict[str, int] = {}
            conn.send(b"x", instrument=stamps)
            # Wait for the transmit to finish so every stamp exists.
            deadline_ok = peer.recv(timeout=5.0)
            if deadline_ok is not None and "transmitted" in stamps:
                profiler.record_send(stamps)
                if "exit" in stamps:
                    entry_to_exit.append(
                        (stamps["exit"] - stamps["entry"]) / 1000.0
                    )
        results = profiler.send_breakdown()
        results["NCS_send entry/exit (caller visible)"] = (
            statistics.median(entry_to_exit) if entry_to_exit else 0.0
        )
        return results, profiler
    finally:
        node_a.close()
        node_b.close()


def run(
    iterations: int = 200,
    thread_package: str = "kernel",
    interface: str = "sci",
) -> Dict[str, float]:
    """Historical entry point: the threaded-mode results dict alone."""
    results, _profiler = run_profiled(
        iterations=iterations, thread_package=thread_package, interface=interface
    )
    return results


def format_results(results: Dict[str, float]) -> str:
    rows = []
    for label, _s, _e in _STAGES:
        rows.append((label, results[label]))
    rows.append(("session overhead total", results["session overhead total"]))
    rows.append(("data transfer total", results["data transfer total"]))
    rows.append(("total", results["total"]))
    rows.append(("session fraction", results["session fraction"]))
    table = format_table(
        "Table I reproduction: 1-byte NCS_send cost decomposition (us, median)",
        ("stage", "measured"),
        rows,
        col_width=14,
    )
    paper = format_table(
        "Paper's Table I (QuickThreads, us)",
        ("activity", "us"),
        list(PAPER_TABLE1_US.items()),
        col_width=10,
    )
    return table + "\n\n" + paper


def main() -> None:
    results, profiler = run_profiled()
    print(format_results(results))
    stage_sum, total_mean = profiler.consistency("send")
    print(
        f"\nconsistency: send stage means sum to {stage_sum:.1f} us "
        f"vs measured total {total_mean:.1f} us"
    )
    bypass_results, bypass_profiler = run_profiled(mode="bypass")
    print()
    print(bypass_profiler.format_table())
    persist_run(
        "table1",
        {"threaded": results, "bypass": bypass_results},
        config={"iterations": 200, "interface": "sci"},
    )
    dump_metrics_if_requested()


if __name__ == "__main__":
    main()
