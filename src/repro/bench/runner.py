"""Shared benchmark plumbing: the paper's size ladder, table printing,
and result persistence (re-exported from :mod:`repro.bench.persist`)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.persist import (  # noqa: F401  (re-exports)
    BenchResultError,
    load_run,
    persist_run,
)

#: The x-axis of Figures 10-12: 1 byte to 64 KB.
MESSAGE_SIZES = [1, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]

#: The coarser ladder of Figures 12/13 ("1 1K 4K 8K 16K 32K 64K").
ECHO_SIZES = [1, 1024, 4096, 8192, 16384, 32768, 65536]


def size_label(size: int) -> str:
    """Render a message size the way the paper's axes do (1K, 64K...)."""
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}K"
    return str(size)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
    col_width: int = 10,
) -> str:
    """Plain-text table matching the repo's bench output style."""
    rows = [tuple(row) for row in rows]
    label_width = max(
        [len(str(columns[0]))] + [len(str(row[0])) for row in rows], default=8
    ) + 2
    lines = [title, "-" * len(title)]
    header = str(columns[0]).ljust(label_width) + "".join(
        str(c).rjust(col_width) for c in columns[1:]
    )
    lines.append(header)
    for row in rows:
        rendered = str(row[0]).ljust(label_width)
        for cell in row[1:]:
            if isinstance(cell, float):
                rendered += f"{cell:{col_width}.3f}"
            else:
                rendered += str(cell).rjust(col_width)
        lines.append(rendered)
    return "\n".join(lines)


def series_ordering(series: Dict[str, float]) -> List[str]:
    """Names sorted fastest-first — the 'who wins' shape check."""
    return sorted(series, key=series.get)


def dump_metrics_if_requested() -> str:
    """Write the process metrics registry to ``$NCS_METRICS_DUMP``.

    Benchmark mains call this on exit so a run launched with both
    ``NCS_METRICS=1`` and ``NCS_METRICS_DUMP=path.json`` leaves a JSON
    snapshot that ``repro.tools.ncs_stat --load`` can render offline.
    Returns the path written, or "" when the variable is unset.
    """
    import os

    path = os.environ.get("NCS_METRICS_DUMP", "").strip()
    if not path:
        return ""
    from repro.obs.registry import get_registry

    get_registry().dump(path)
    return path
