"""X-ray overhead: what per-message latency attribution costs.

Runs the same message stream three times — X-ray off, sampling 1 in 64
(the always-on production default), and sampling every message — and
reports the throughput tax of each mode against the off baseline.  The
acceptance bars come straight from the subsystem's design budget: the
default 1/64 sampler must cost ≤5%, and the disabled path (one ``is
None`` branch per send) must be free to within measurement noise.

The full-sampling rig doubles as a live telescoping check: every
sampled journey's stage sums must reproduce the measured end-to-end
latency (modulo the inline-delivery overlap ``join_spans`` accounts
explicitly), so the numbers the waterfalls render are self-consistent
on every bench run, not just under the unit-test workload.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, Optional

from repro.core import ConnectionConfig, Node, NodeConfig

#: Small-message regime: per-send costs (the sampler branch, the stamp
#: dict) are visible against a 16 KB transfer where the 1 MB batching
#: regime would bury them under memcpy time.
DEFAULT_MESSAGES = 160
DEFAULT_MESSAGE_BYTES = 16 * 1024
#: Interleaved best-of-N, same rationale as repro.bench.obs_overhead:
#: host noise taxes every mode instead of whichever ran last.  Five reps
#: because this regime's per-rep window (~60 ms) is short enough that a
#: single scheduler hiccup swings a rep by more than the 5% bar.
DEFAULT_REPEATS = 5
#: The production-default sampling period under test.
SAMPLED_PERIOD = 64


class _XrayRig:
    """A live node pair with one X-ray sampling mode."""

    def __init__(
        self,
        period: Optional[int],
        message_bytes: int = DEFAULT_MESSAGE_BYTES,
    ):
        from repro.obs.xray import XrayConfig

        self.period = period
        self.payload = b"\xcd" * message_bytes
        label = "off" if period is None else str(period)
        xray = False if period is None else XrayConfig(
            period=period, ring_capacity=4096
        )
        self.node_a = Node(NodeConfig(name=f"xray-tx-{label}", xray=xray))
        self.node_b = Node(NodeConfig(name=f"xray-rx-{label}", xray=xray))
        self.conn = self.node_a.connect(
            self.node_b.address,
            ConnectionConfig(
                interface="hpi",
                flow_control="credit",
                error_control="selective_repeat",
                initial_credits=4,
                max_credits=64,
            ),
            peer_name=self.node_b.name,
        )
        self.peer = self.node_b.accept(timeout=5.0)
        assert self.peer is not None
        self.conn.send(self.payload, wait=True, timeout=60.0)  # warmup
        assert self.peer.recv(timeout=60.0) is not None

    def run_once(self, messages: int) -> float:
        start = time.perf_counter()
        for _ in range(messages):
            self.conn.send(self.payload, wait=True, timeout=120.0)
            assert self.peer.recv(timeout=120.0) is not None
        return time.perf_counter() - start

    def spans(self) -> list:
        if self.node_a.xray is None:
            return []
        return self.node_a.xray.spans() + self.node_b.xray.spans()

    def sampled_counts(self) -> Dict[str, int]:
        if self.node_a.xray is None:
            return {"sampled_sends": 0, "sampled_recvs": 0}
        return {
            "sampled_sends": self.node_a.xray.sampled_sends,
            "sampled_recvs": self.node_b.xray.sampled_recvs,
        }

    def close(self) -> None:
        self.node_a.close()
        self.node_b.close()


def _telescope_stats(spans: list) -> Dict[str, object]:
    """Stage-sum vs end-to-end agreement across joined spans."""
    from repro.obs.xray import dominance_report, join_spans

    joined = join_spans(spans)
    if not joined:
        return {"joined_spans": 0}
    ratios = [
        (sum(span["stages"].values()) - span["overlap_ns"]) / span["e2e_ns"]
        for span in joined
        if span["e2e_ns"] > 0
    ]
    report = dominance_report(joined)
    return {
        "joined_spans": len(joined),
        "telescope_ratio_median": round(statistics.median(ratios), 4),
        "telescope_ratio_worst": round(
            max(ratios, key=lambda r: abs(r - 1.0)), 4
        ),
        "e2e_p50_us": round(
            statistics.median(s["e2e_ns"] for s in joined) / 1e3, 1
        ),
        "dominant_stage": report["dominant"],
        "tail_dominant_stage": report["tail_dominant"],
    }


def run_xray_bench(
    messages: int = DEFAULT_MESSAGES,
    message_bytes: int = DEFAULT_MESSAGE_BYTES,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    rigs = {
        "off": _XrayRig(None, message_bytes),
        "sampled": _XrayRig(SAMPLED_PERIOD, message_bytes),
        "full": _XrayRig(1, message_bytes),
    }
    try:
        elapsed = {mode: float("inf") for mode in rigs}
        for _ in range(repeats):
            for mode, rig in rigs.items():
                elapsed[mode] = min(elapsed[mode], rig.run_once(messages))
        volume = messages * message_bytes
        results: dict = {}
        for mode, rig in rigs.items():
            results[mode] = {
                "throughput_mbps": round(volume / elapsed[mode] / 1e6, 2),
                "elapsed_s": round(elapsed[mode], 4),
                **rig.sampled_counts(),
            }
        time.sleep(0.05)  # let trailing recv spans finalize
        results["telescope"] = _telescope_stats(rigs["full"].spans())
    finally:
        for rig in rigs.values():
            rig.close()
    base = results["off"]["throughput_mbps"]

    def overhead(mode: str) -> float:
        if not base:
            return 0.0
        return round(
            (base - results[mode]["throughput_mbps"]) / base * 100.0, 2
        )

    results["overhead_sampled_pct"] = overhead("sampled")
    results["overhead_full_pct"] = overhead("full")
    return results


def format_results(results: dict) -> str:
    tele = results["telescope"]
    lines = [
        f"X-ray overhead ({DEFAULT_MESSAGES} x "
        f"{DEFAULT_MESSAGE_BYTES // 1024} KB over HPI loopback)",
        f"  xray off        {results['off']['throughput_mbps']:8.1f} MB/s",
        f"  xray 1/{SAMPLED_PERIOD:<3}      "
        f"{results['sampled']['throughput_mbps']:8.1f} MB/s   "
        f"({results['overhead_sampled_pct']:+.1f}%, "
        f"{results['sampled']['sampled_sends']} spans)",
        f"  xray 1/1        {results['full']['throughput_mbps']:8.1f} MB/s   "
        f"({results['overhead_full_pct']:+.1f}%, "
        f"{results['full']['sampled_sends']} spans)",
    ]
    if tele.get("joined_spans"):
        lines.append(
            f"  telescoping: {tele['joined_spans']} joined spans, "
            f"median stage-sum/e2e {tele['telescope_ratio_median']:.3f} "
            f"(worst {tele['telescope_ratio_worst']:.3f}); "
            f"e2e p50 {tele['e2e_p50_us']} us, "
            f"tail dominated by {tele['tail_dominant_stage']}"
        )
    return "\n".join(lines)


def main() -> None:
    from repro.bench.persist import persist_run

    results = run_xray_bench()
    print(format_results(results))
    persist_run(
        "xray",
        results,
        config={
            "messages": DEFAULT_MESSAGES,
            "message_bytes": DEFAULT_MESSAGE_BYTES,
            "repeats": DEFAULT_REPEATS,
            "sampled_period": SAMPLED_PERIOD,
        },
    )


if __name__ == "__main__":
    main()
