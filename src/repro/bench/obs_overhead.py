"""Observability overhead: the telemetry plane's price on the hot path.

Runs the batched single-stream transfer (the ``BENCH_batching`` regime:
1 MB messages over the HPI in-process interface) twice — once with every
observability subsystem off, once with cross-node tracing, the flight
recorder, and in-band telemetry export all enabled — and reports the
throughput delta.  The acceptance bar is ≤5% regression: a telemetry
plane that taxes the data path more than that would be measuring the
slowdown it causes.

A separate overload leg drives a paced producer at 2x the consumer's
service rate with tight memory budgets while telemetry keeps exporting,
and proves the never-charged invariant the exporter is built on: under
the worst pressure, telemetry bytes ride the control plane *exempt* —
the budget's data-plane sites (send/reassembly/delivery) never account
a single telemetry byte, observable via ``telemetry_exempt_bytes``
growing while no extra site appears in the budget breakdown.
"""

from __future__ import annotations

import struct
import threading
import time
from typing import Dict, Optional

from repro.core import ConnectionConfig, Node, NodeConfig
from repro.pressure import PressureConfig

DEFAULT_MESSAGES = 12
DEFAULT_MESSAGE_BYTES = 1 << 20  # 1 MB, the batching-bench regime
#: Timed repetitions per mode; the best rep is reported.  Single-stream
#: throughput on a shared runner swings ±10% from scheduler noise alone,
#: far above the ≤5% overhead bar this benchmark polices — best-of-N
#: measures each configuration's capability, not the host's mood.
DEFAULT_REPEATS = 3

#: Telemetry export cadence during the observed run: fast enough that
#: several snapshots land inside the timed window.
TELEMETRY_INTERVAL_S = 0.05

#: Overload leg: 2 ms service time -> ~500 msg/s consumer capacity.
CONSUMER_DELAY_S = 0.002
CAPACITY_MSGS = 1.0 / CONSUMER_DELAY_S
OVERLOAD_PAYLOAD_BYTES = 4096
OVERLOAD_TX_BYTES = 128 * 1024

_STAMP = struct.Struct("<Id")


class _TransferRig:
    """A live node pair, observability fully off or fully on."""

    def __init__(
        self, observed: bool, message_bytes: int = DEFAULT_MESSAGE_BYTES
    ):
        self.observed = observed
        self.payload = b"\xab" * message_bytes
        label = "on" if observed else "off"
        self.hub: Optional[Node] = None
        self.collector = None
        target = None
        if observed:
            from repro.obs.telemetry import Collector

            self.hub = Node(NodeConfig(name=f"obs-hub-{label}"))
            self.collector = Collector(self.hub)
            target = f"{self.hub.address[0]}:{self.hub.address[1]}"
        self.node_a = Node(NodeConfig(
            name=f"obs-tx-{label}",
            trace=observed,
            flight_recorder=observed,
            telemetry=target,
            telemetry_interval=TELEMETRY_INTERVAL_S,
        ))
        self.node_b = Node(NodeConfig(
            name=f"obs-rx-{label}",
            trace=observed,
            flight_recorder=observed,
            telemetry=target,
            telemetry_interval=TELEMETRY_INTERVAL_S,
        ))
        self.conn = self.node_a.connect(
            self.node_b.address,
            ConnectionConfig(
                interface="hpi",
                flow_control="credit",
                error_control="selective_repeat",
                initial_credits=4,
                max_credits=64,
            ),
            peer_name=self.node_b.name,
        )
        self.peer = self.node_b.accept(timeout=5.0)
        assert self.peer is not None
        # Warmup: credits ramp, threads settle, first telemetry lands.
        self.conn.send(self.payload, wait=True, timeout=60.0)
        assert self.peer.recv(timeout=60.0) is not None

    def run_once(self, messages: int) -> float:
        """One timed burst; returns elapsed seconds."""
        start = time.perf_counter()
        for _ in range(messages):
            self.conn.send(self.payload, wait=True, timeout=120.0)
            assert self.peer.recv(timeout=120.0) is not None
        return time.perf_counter() - start

    def obs_stats(self) -> Dict[str, object]:
        exporter_stats = self.node_a.telemetry_exporter.stats()
        return {
            "trace_events": len(self.node_a.tracer) + len(self.node_b.tracer),
            "recorder_events": (
                self.node_a.recorder.recorded + self.node_b.recorder.recorded
            ),
            "telemetry_snapshots": exporter_stats["snapshots_sent"],
            "telemetry_bytes": exporter_stats["bytes_sent"],
            "collector_nodes": len(self.collector.nodes()),
        }

    def close(self) -> None:
        self.node_a.close()
        self.node_b.close()
        if self.hub is not None:
            self.hub.close()


def bench_transfer(
    observed: bool,
    messages: int = DEFAULT_MESSAGES,
    message_bytes: int = DEFAULT_MESSAGE_BYTES,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, object]:
    """One mode in isolation (tests, ad-hoc runs); best-of-``repeats``."""
    rig = _TransferRig(observed, message_bytes)
    try:
        elapsed = min(rig.run_once(messages) for _ in range(repeats))
        result: Dict[str, object] = {
            "throughput_mbps": round(
                messages * message_bytes / elapsed / 1e6, 2
            ),
            "elapsed_s": round(elapsed, 4),
        }
        if observed:
            result.update(rig.obs_stats())
        return result
    finally:
        rig.close()


class _PacedConsumer(threading.Thread):
    """Drains a connection at a fixed service rate (overload leg)."""

    def __init__(self, conn, delay_s: float):
        super().__init__(name="obs-overload-consumer", daemon=True)
        self.conn = conn
        self.delay_s = delay_s
        self.received = 0
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            message = self.conn.recv(timeout=0.2)
            if message is None:
                continue
            self.received += 1
            time.sleep(self.delay_s)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def bench_overload_exemption(duration_s: float = 1.2) -> Dict[str, object]:
    """2x overload with telemetry live: exempt bytes grow, sites don't."""
    from repro.obs.telemetry import Collector

    hub = Node(NodeConfig(name="obs-ovl-hub"))
    collector = Collector(hub)
    target = f"{hub.address[0]}:{hub.address[1]}"
    tx_cfg = PressureConfig(
        node_bytes=OVERLOAD_TX_BYTES,
        conn_bytes=OVERLOAD_TX_BYTES,
        policy="block",
    )
    producer = Node(NodeConfig(
        name="obs-ovl-tx",
        pressure=tx_cfg,
        telemetry=target,
        telemetry_interval=TELEMETRY_INTERVAL_S,
    ))
    consumer_node = Node(NodeConfig(name="obs-ovl-rx"))
    try:
        conn = producer.connect(
            consumer_node.address,
            ConnectionConfig(interface="hpi"),
            peer_name="obs-ovl-rx",
        )
        peer = consumer_node.accept(timeout=5.0)
        consumer = _PacedConsumer(peer, CONSUMER_DELAY_S)
        consumer.start()

        # Paced open-loop producer at 2x the consumer's capacity.
        rate = CAPACITY_MSGS * 2.0
        interval = 1.0 / rate
        padding = b"\0" * (OVERLOAD_PAYLOAD_BYTES - _STAMP.size)
        sent = 0
        start = time.perf_counter()
        next_at = start
        end = start + duration_s
        while time.perf_counter() < end:
            now = time.perf_counter()
            if now < next_at:
                time.sleep(min(next_at - now, 0.005))
                continue
            conn.send(_STAMP.pack(sent, time.perf_counter()) + padding)
            sent += 1
            next_at += interval
            if next_at < time.perf_counter() - 0.25:
                next_at = time.perf_counter()

        deadline = time.monotonic() + 30.0
        while consumer.received < sent and time.monotonic() < deadline:
            time.sleep(0.01)
        consumer.stop()
        producer.telemetry_exporter.export_once()  # final flush
        snap = producer.pressure.snapshot()
        exporter_stats = producer.telemetry_exporter.stats()
        return {
            "offered_rate_msgs": rate,
            "sent": sent,
            "received": consumer.received,
            "peak_occupancy": round(
                snap["peak_used"] / snap["node_bytes"], 4
            ),
            "budget_sites": sorted(snap["site_peaks"]),
            "telemetry_exempt_bytes": snap["telemetry_exempt_bytes"],
            "telemetry_bytes_charged": sum(
                peak
                for site, peak in snap["site_peaks"].items()
                if site not in ("send", "reassembly", "delivery")
            ),
            "telemetry_sheds": snap["telemetry_sheds"],
            "telemetry_snapshots": exporter_stats["snapshots_sent"],
            "shed_control_pdus": snap["shed_control_pdus"],
            "collector_snapshots": collector.snapshots_received,
        }
    finally:
        producer.close()
        consumer_node.close()
        hub.close()


def run_obs_overhead_bench(
    messages: int = DEFAULT_MESSAGES,
    message_bytes: int = DEFAULT_MESSAGE_BYTES,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    # Both rigs live at once and the timed reps alternate between them,
    # so a slow-host window (CPU frequency dips, noisy neighbours on a
    # CI runner) taxes both modes instead of whichever ran second.
    rig_off = _TransferRig(False, message_bytes)
    rig_on = _TransferRig(True, message_bytes)
    try:
        off_elapsed = float("inf")
        on_elapsed = float("inf")
        for _ in range(repeats):
            off_elapsed = min(off_elapsed, rig_off.run_once(messages))
            on_elapsed = min(on_elapsed, rig_on.run_once(messages))
        volume = messages * message_bytes
        off: Dict[str, object] = {
            "throughput_mbps": round(volume / off_elapsed / 1e6, 2),
            "elapsed_s": round(off_elapsed, 4),
        }
        on: Dict[str, object] = {
            "throughput_mbps": round(volume / on_elapsed / 1e6, 2),
            "elapsed_s": round(on_elapsed, 4),
        }
        on.update(rig_on.obs_stats())
    finally:
        rig_off.close()
        rig_on.close()
    base = off["throughput_mbps"]
    overhead_pct = (
        round((base - on["throughput_mbps"]) / base * 100.0, 2)
        if base
        else 0.0
    )
    return {
        "obs_off": off,
        "obs_on": on,
        "overhead_pct": overhead_pct,
        "overload": bench_overload_exemption(),
    }


def format_results(results: dict) -> str:
    off = results["obs_off"]
    on = results["obs_on"]
    ovl = results["overload"]
    return "\n".join([
        "Observability overhead (1 MB messages over HPI loopback)",
        f"  obs off                  {off['throughput_mbps']:8.1f} MB/s",
        f"  trace+recorder+telemetry {on['throughput_mbps']:8.1f} MB/s   "
        f"({results['overhead_pct']:+.1f}% overhead)",
        f"  observed run: {on['trace_events']} trace events, "
        f"{on['telemetry_snapshots']} telemetry snapshots "
        f"({on['telemetry_bytes']} B in-band)",
        f"  2x overload: peak occupancy {ovl['peak_occupancy']:.0%}, "
        f"{ovl['telemetry_exempt_bytes']} telemetry B exempt, "
        f"{ovl['telemetry_bytes_charged']} B charged to data sites, "
        f"{ovl['telemetry_sheds']} sheds, "
        f"{ovl['shed_control_pdus']} control PDUs shed",
    ])


def main() -> None:
    from repro.bench.persist import persist_run

    results = run_obs_overhead_bench()
    print(format_results(results))
    persist_run(
        "obs_overhead",
        results,
        config={
            "messages": DEFAULT_MESSAGES,
            "message_bytes": DEFAULT_MESSAGE_BYTES,
            "telemetry_interval_s": TELEMETRY_INTERVAL_S,
            "overload_duration_s": 1.2,
        },
    )


if __name__ == "__main__":
    main()
